//! Intra-episode parallelism determinism (DESIGN.md §5.2): the chunked
//! client phase must leave every metric **byte-identical** at any pool
//! width. These episodes use N ≥ 100k so the population is far above
//! `PAR_MIN_DEVICES` and the parallel path genuinely runs; the comparison
//! serializes the clock-zeroed metrics to JSON and compares the bytes, not
//! just structural equality.
//!
//! The sweep pool is pinned to one worker on both sides so the only
//! variable is the *intra-episode* client pool (`SimConfig::client_threads`
//! — the same knob `MKNN_THREADS` resolves into when unset, pinned here so
//! the test cannot be perturbed by the environment it runs under).

use moving_knn::prelude::*;

const N: usize = 100_000;

fn big_config(fault: FaultPlan, shards: u32) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: N,
            space_side: 10_000.0,
            seed: 4242,
            ..WorkloadSpec::default()
        },
        n_queries: 4,
        k: 8,
        ticks: 6,
        geo_cells: 32,
        // Oracle checks are orthogonal to the client phase and dominate
        // debug-build wall time at this population.
        verify: VerifyMode::Off,
        fault,
        shards,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// Runs the same plan with the client pool pinned to `t` workers and
/// returns one serialized (clock-zeroed) metrics document per episode.
fn run_at(points: &[(String, SimConfig)], t: usize) -> Vec<String> {
    use mknn_util::json::ToJson;
    let pinned: Vec<(String, SimConfig)> = points
        .iter()
        .map(|(label, cfg)| {
            let mut c = cfg.clone();
            c.client_threads = Some(t);
            (label.clone(), c)
        })
        .collect();
    let params = points[0].1.dknn_params();
    Sweep::over(pinned)
        .methods([
            Method::DknnSet(params),
            Method::Centralized { res: 64 },
            Method::Periodic { period: 3, res: 64 },
        ])
        .threads(1)
        .run()
        .into_iter()
        .map(|run| {
            let doc = run.metrics.clone().with_clock_zeroed().to_json();
            format!(
                "{}/{}: {}",
                run.label,
                run.metrics.method,
                doc.render_pretty()
            )
        })
        .collect()
}

#[test]
fn client_pool_width_never_changes_a_byte_at_100k_objects() {
    let points = vec![
        ("plain".to_string(), big_config(FaultPlan::none(), 1)),
        ("chaos".to_string(), big_config(FaultPlan::chaos(), 1)),
        ("g4".to_string(), big_config(FaultPlan::none(), 4)),
    ];
    let one = run_at(&points, 1);
    let eight = run_at(&points, 8);
    assert_eq!(one.len(), eight.len());
    for (a, b) in one.iter().zip(&eight) {
        assert_eq!(a, b, "metrics diverged between 1 and 8 client workers");
    }
}
