//! Property-based end-to-end verification: random small worlds, random
//! protocol parameters, every tick oracle-checked (the harness panics on
//! the first inexact answer of an exactness-guaranteeing method).

use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

/// Cases per property (matches the former proptest config of 24).
const CASES: u64 = 24;

#[derive(Debug, Clone)]
struct Scenario {
    n_objects: usize,
    n_queries: usize,
    k: usize,
    ticks: u64,
    seed: u64,
    motion: Motion,
    v_max: f64,
    move_prob: f64,
    alpha: f64,
    heartbeat: u64,
    drift_mult: f64,
    buffer: usize,
}

fn scenario(rng: &mut Rng) -> Scenario {
    Scenario {
        n_objects: rng.gen_range(10usize..120),
        n_queries: rng.gen_range(1usize..5),
        k: rng.gen_range(1usize..8),
        ticks: rng.gen_range(15u64..40),
        seed: rng.next_u64(),
        motion: match rng.gen_range(0u32..3) {
            0 => Motion::RandomWaypoint,
            1 => Motion::RandomWalk,
            _ => Motion::Stationary,
        },
        v_max: rng.gen_range(1.0..40.0),
        move_prob: rng.gen_range(0.0..=1.0),
        alpha: rng.gen_range(0.1..0.9),
        heartbeat: rng.gen_range(1u64..12),
        drift_mult: rng.gen_range(0.5..6.0),
        buffer: rng.gen_range(2usize..8),
    }
}

fn config_of(s: &Scenario) -> (SimConfig, DknnParams) {
    let cfg = SimConfig {
        workload: WorkloadSpec {
            n_objects: s.n_objects,
            space_side: 800.0,
            speeds: SpeedDist::Uniform {
                min: s.v_max * 0.2,
                max: s.v_max,
            },
            motion: s.motion,
            move_prob: s.move_prob,
            seed: s.seed,
            ..WorkloadSpec::default()
        },
        n_queries: s.n_queries,
        k: s.k,
        ticks: s.ticks,
        geo_cells: 8,
        verify: VerifyMode::Assert,
        fault: FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    };
    let params = DknnParams {
        alpha: s.alpha,
        heartbeat: s.heartbeat,
        query_drift: s.drift_mult * s.v_max,
        v_max_obj: s.v_max,
        v_max_q: s.v_max,
        ..DknnParams::default()
    };
    (cfg, params)
}

#[test]
fn dknn_set_exact_on_random_worlds() {
    forall(CASES, |rng| {
        let (cfg, params) = config_of(&scenario(rng));
        let m = Sweep::episode(&cfg, Method::DknnSet(params));
        assert_eq!(m.exactness(), 1.0);
    });
}

#[test]
fn dknn_ordered_exact_on_random_worlds() {
    forall(CASES, |rng| {
        let (cfg, params) = config_of(&scenario(rng));
        let m = Sweep::episode(&cfg, Method::DknnOrder(params));
        assert_eq!(m.exactness(), 1.0);
    });
}

#[test]
fn dknn_buffered_exact_on_random_worlds() {
    forall(CASES, |rng| {
        let s = scenario(rng);
        let (cfg, params) = config_of(&s);
        let m = Sweep::episode(
            &cfg,
            Method::DknnBuffer {
                params,
                buffer: s.buffer,
            },
        );
        assert_eq!(m.exactness(), 1.0);
    });
}

#[test]
fn centralized_and_naive_exact_on_random_worlds() {
    forall(CASES, |rng| {
        let (cfg, _) = config_of(&scenario(rng));
        for method in [
            Method::Centralized { res: 8 },
            Method::Naive { headroom: 1.3 },
        ] {
            let m = Sweep::episode(&cfg, method);
            assert_eq!(m.exactness(), 1.0, "{}", method.name());
        }
    });
}

#[test]
fn periodic_recall_recorded_not_asserted() {
    forall(CASES, |rng| {
        let (mut cfg, _) = config_of(&scenario(rng));
        cfg.verify = VerifyMode::Record;
        let m = Sweep::episode(&cfg, Method::Periodic { period: 7, res: 8 });
        // Recall is a proper fraction and is recorded for every check.
        assert!(m.exact_checks > 0);
        assert!((0.0..=1.0).contains(&m.recall()));
    });
}
