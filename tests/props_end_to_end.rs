//! Property-based end-to-end verification: random small worlds, random
//! protocol parameters, every tick oracle-checked (the harness panics on
//! the first inexact answer of an exactness-guaranteeing method).

use moving_knn::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    n_objects: usize,
    n_queries: usize,
    k: usize,
    ticks: u64,
    seed: u64,
    motion: Motion,
    v_max: f64,
    move_prob: f64,
    alpha: f64,
    heartbeat: u64,
    drift_mult: f64,
    buffer: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (10usize..120),
        (1usize..5),
        (1usize..8),
        (15u64..40),
        any::<u64>(),
        prop_oneof![
            Just(Motion::RandomWaypoint),
            Just(Motion::RandomWalk),
            Just(Motion::Stationary),
        ],
        (1.0..40.0f64),
        (0.0..=1.0f64),
        (0.1..0.9f64),
        (1u64..12),
        (0.5..6.0f64),
        (2usize..8),
    )
        .prop_map(
            |(n_objects, n_queries, k, ticks, seed, motion, v_max, move_prob, alpha, heartbeat, drift_mult, buffer)| {
                Scenario {
                    n_objects,
                    n_queries,
                    k,
                    ticks,
                    seed,
                    motion,
                    v_max,
                    move_prob,
                    alpha,
                    heartbeat,
                    drift_mult,
                    buffer,
                }
            },
        )
}

fn config_of(s: &Scenario) -> (SimConfig, DknnParams) {
    let cfg = SimConfig {
        workload: WorkloadSpec {
            n_objects: s.n_objects,
            space_side: 800.0,
            speeds: SpeedDist::Uniform { min: s.v_max * 0.2, max: s.v_max },
            motion: s.motion,
            move_prob: s.move_prob,
            seed: s.seed,
            ..WorkloadSpec::default()
        },
        n_queries: s.n_queries,
        k: s.k,
        ticks: s.ticks,
        geo_cells: 8,
        verify: VerifyMode::Assert,
    };
    let params = DknnParams {
        alpha: s.alpha,
        heartbeat: s.heartbeat,
        query_drift: s.drift_mult * s.v_max,
        v_max_obj: s.v_max,
        v_max_q: s.v_max,
        ..DknnParams::default()
    };
    (cfg, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dknn_set_exact_on_random_worlds(s in scenario()) {
        let (cfg, params) = config_of(&s);
        let m = run_episode(&cfg, Method::DknnSet(params));
        prop_assert_eq!(m.exactness(), 1.0);
    }

    #[test]
    fn dknn_ordered_exact_on_random_worlds(s in scenario()) {
        let (cfg, params) = config_of(&s);
        let m = run_episode(&cfg, Method::DknnOrder(params));
        prop_assert_eq!(m.exactness(), 1.0);
    }

    #[test]
    fn dknn_buffered_exact_on_random_worlds(s in scenario()) {
        let (cfg, params) = config_of(&s);
        let m = run_episode(&cfg, Method::DknnBuffer { params, buffer: s.buffer });
        prop_assert_eq!(m.exactness(), 1.0);
    }

    #[test]
    fn centralized_and_naive_exact_on_random_worlds(s in scenario()) {
        let (cfg, _) = config_of(&s);
        for method in [Method::Centralized { res: 8 }, Method::Naive { headroom: 1.3 }] {
            let m = run_episode(&cfg, method);
            prop_assert_eq!(m.exactness(), 1.0, "{}", method.name());
        }
    }

    #[test]
    fn periodic_recall_recorded_not_asserted(s in scenario()) {
        let (mut cfg, _) = config_of(&s);
        cfg.verify = VerifyMode::Record;
        let m = run_episode(&cfg, Method::Periodic { period: 7, res: 8 });
        // Recall is a proper fraction and is recorded for every check.
        prop_assert!(m.exact_checks > 0);
        prop_assert!((0.0..=1.0).contains(&m.recall()));
    }
}
