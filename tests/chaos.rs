//! Chaos property suite: random bounded fault bursts, then a clean tail.
//!
//! Each case draws a random fault plan (loss ≤ 20% per direction, light
//! duplication, short delays, brief device churn), runs an episode under
//! that plan for a burst of ticks, then lets the link go perfect (the
//! plan's `horizon` ends at the burst) and steps a clean tail. At the end
//! every method that claims exact answers must have reconverged to the
//! oracle: `Simulation::inexact_queries() == 0`.
//!
//! This is the acceptance gate for the protocol hardening: acks and
//! retransmissions recover lost critical events, leases detect silently
//! departed members, and announce/resync heals devices returning from an
//! offline window — all within a bounded number of clean ticks.

use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

/// Fault bursts last this many ticks; the plan's horizon ends here.
const BURST: u64 = 15;

/// Clean ticks after the burst. Must cover the longest offline window that
/// may straddle the horizon, plus a lease timeout (2·heartbeat + 3) and a
/// recovery refresh round-trip.
const CLEAN_TAIL: u64 = 40;

/// A random fault plan inside the hardening envelope the protocols are
/// specified to survive: loss ≤ 20% per direction with churn.
fn bounded_burst(rng: &mut Rng) -> FaultPlan {
    let mut b = FaultPlan::builder()
        .up_loss(rng.gen_range(0.0..0.20))
        .down_loss(rng.gen_range(0.0..0.20))
        .duplication(rng.gen_range(0.0..0.05))
        .horizon(BURST);
    if rng.gen_bool(0.5) {
        b = b.delay(rng.gen_range(0.0..0.3), rng.gen_range(1u64..=2));
    }
    if rng.gen_bool(0.5) {
        let min = rng.gen_range(1u64..=2);
        b = b.churn(rng.gen_range(0.0..0.01), min, min + rng.gen_range(0u64..=2));
    }
    b.build()
        .expect("burst knobs are inside the builder's ranges")
}

fn chaos_config(rng: &mut Rng) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: rng.gen_range(150usize..200),
            space_side: 800.0,
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        },
        n_queries: 3,
        k: 3,
        ticks: BURST + CLEAN_TAIL,
        geo_cells: 16,
        verify: VerifyMode::Off,
        fault: FaultPlan::none(), // replaced per case
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// Runs one episode of `method` under `cfg` and asserts every query's
/// maintained answer is exact once the clean tail has elapsed.
fn assert_reconverges(cfg: &SimConfig, method: Method) {
    let mut sim = Simulation::new(cfg, method.build());
    for _ in 0..cfg.ticks {
        sim.step();
    }
    assert_eq!(
        sim.inexact_queries(),
        0,
        "{} did not reconverge within {CLEAN_TAIL} clean ticks of plan {} (workload seed {})",
        method.name(),
        mknn_util::to_string(&cfg.fault),
        cfg.workload.seed,
    );
}

#[test]
fn exact_methods_reconverge_after_random_fault_bursts() {
    forall(10, |rng| {
        let mut cfg = chaos_config(rng);
        cfg.fault = bounded_burst(rng);
        let p = cfg.dknn_params();
        for method in [
            Method::DknnSet(p),
            Method::DknnOrder(p),
            Method::DknnBuffer {
                params: p,
                buffer: 3,
            },
            Method::Centralized { res: 16 },
        ] {
            assert_reconverges(&cfg, method);
        }
    });
}

#[test]
fn exact_methods_reconverge_after_chaos_with_a_crash_burst() {
    // Server amnesia on top of transport chaos: the same bounded burst,
    // plus 1–2 shard-crash windows whose rebirths land inside the burst,
    // over a sharded tier. The clean tail must still absorb both failure
    // domains at once (tests/shard_recovery.rs isolates the crash-only
    // bound; this is the combined worst case).
    forall(6, |rng| {
        let mut cfg = chaos_config(rng);
        cfg.shards = 4;
        cfg.ticks = BURST + CLEAN_TAIL + 40;
        let mut plan = bounded_burst(rng);
        plan.crash_count = rng.gen_range(1u64..=2) as u32;
        plan.crash_min = rng.gen_range(2u64..=3);
        plan.crash_max = plan.crash_min + rng.gen_range(0u64..=3);
        plan.validate().expect("crash knobs are in range");
        cfg.fault = plan;
        let p = cfg.dknn_params();
        for method in [
            Method::DknnSet(p),
            Method::DknnOrder(p),
            Method::DknnBuffer {
                params: p,
                buffer: 3,
            },
            Method::Centralized { res: 16 },
        ] {
            // Crash windows are placed over the whole episode, not just the
            // burst — step far enough past the last rebirth that the tail
            // contract applies to both failure kinds.
            let mut sim = Simulation::new(&cfg, method.build());
            let last_rebirth = sim
                .crash_windows()
                .iter()
                .map(|w| w.until)
                .max()
                .expect("plan schedules crashes");
            for _ in 0..last_rebirth.max(BURST) + CLEAN_TAIL {
                sim.step();
            }
            assert_eq!(
                sim.inexact_queries(),
                0,
                "{} did not absorb chaos + crash burst (windows {:?}, seed {})",
                method.name(),
                sim.crash_windows(),
                cfg.workload.seed,
            );
        }
    });
}

#[test]
fn reconvergence_survives_the_chaos_preset_bounded_to_a_burst() {
    // The named preset used by `expt --fault chaos` and the verify script,
    // cut off at the burst horizon so the clean-tail contract applies.
    forall(4, |rng| {
        let mut cfg = chaos_config(rng);
        let mut plan = FaultPlan::chaos();
        plan.horizon = BURST;
        plan.validate().expect("chaos preset is valid");
        cfg.fault = plan;
        let p = cfg.dknn_params();
        for method in [
            Method::DknnSet(p),
            Method::DknnOrder(p),
            Method::DknnBuffer {
                params: p,
                buffer: 3,
            },
        ] {
            assert_reconverges(&cfg, method);
        }
    });
}
