//! End-to-end exactness: every protocol that claims exact answers is
//! oracle-verified at every tick (`VerifyMode::Assert` panics inside the
//! harness on the first violation) across the workload grid — motion
//! models, speed regimes, skew, k extremes, and population edge cases.

use moving_knn::prelude::*;

fn base() -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: 300,
            space_side: 1_000.0,
            ..WorkloadSpec::default()
        },
        n_queries: 4,
        k: 5,
        ticks: 50,
        geo_cells: 16,
        verify: VerifyMode::Assert,
        fault: FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

fn exact_methods(cfg: &SimConfig) -> Vec<Method> {
    let p = cfg.dknn_params();
    vec![
        Method::DknnSet(p),
        Method::DknnOrder(p),
        Method::DknnBuffer {
            params: p,
            buffer: 4,
        },
        Method::Centralized { res: 16 },
        Method::Naive { headroom: 1.5 },
    ]
}

fn assert_all_exact(cfg: &SimConfig) {
    for method in exact_methods(cfg) {
        let m = Sweep::episode(cfg, method);
        assert_eq!(
            m.exactness(),
            1.0,
            "{} inexact under {:?}",
            method.name(),
            cfg.workload
        );
    }
}

#[test]
fn exact_under_random_waypoint() {
    assert_all_exact(&base());
}

#[test]
fn exact_under_random_walk() {
    let mut cfg = base();
    cfg.workload.motion = Motion::RandomWalk;
    assert_all_exact(&cfg);
}

#[test]
fn exact_on_road_network() {
    let mut cfg = base();
    cfg.workload.motion = Motion::RoadNetwork {
        nx: 6,
        ny: 6,
        drop_prob: 0.2,
    };
    assert_all_exact(&cfg);
}

#[test]
fn exact_under_gaussian_skew() {
    let mut cfg = base();
    cfg.workload.placement = Placement::Gaussian {
        clusters: 3,
        sigma: 60.0,
    };
    assert_all_exact(&cfg);
}

#[test]
fn exact_at_high_speed() {
    let mut cfg = base();
    // 8% of the space side per tick — brutal churn.
    cfg.workload.speeds = SpeedDist::Uniform {
        min: 40.0,
        max: 80.0,
    };
    cfg.ticks = 30;
    assert_all_exact(&cfg);
}

#[test]
fn exact_when_almost_nothing_moves() {
    let mut cfg = base();
    cfg.workload.move_prob = 0.05;
    assert_all_exact(&cfg);
}

#[test]
fn exact_in_frozen_world() {
    let mut cfg = base();
    cfg.workload.motion = Motion::Stationary;
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_k_equals_one() {
    let mut cfg = base();
    cfg.k = 1;
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_k_exceeding_population() {
    let mut cfg = base();
    cfg.workload.n_objects = 12;
    cfg.n_queries = 2;
    cfg.k = 30; // more than the 11 possible neighbors
    cfg.ticks = 25;
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_tiny_population() {
    let mut cfg = base();
    cfg.workload.n_objects = 5;
    cfg.n_queries = 1;
    cfg.k = 2;
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_many_overlapping_queries() {
    let mut cfg = base();
    cfg.n_queries = 25; // dense: every 12th object is a focal
    cfg.ticks = 30;
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_mixed_speed_classes() {
    let mut cfg = base();
    cfg.workload.speeds = SpeedDist::Classes {
        slow: 2.0,
        medium: 10.0,
        fast: 25.0,
    };
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_slow_queries_fast_objects() {
    let mut cfg = base();
    cfg.workload.speeds = SpeedDist::Fixed(20.0);
    cfg.workload.speed_overrides = cfg.focal_ids().iter().map(|&id| (id, 1.0)).collect();
    assert_all_exact(&cfg);
}

#[test]
fn exact_with_fast_queries_slow_objects() {
    let mut cfg = base();
    cfg.workload.speeds = SpeedDist::Fixed(4.0);
    cfg.workload.speed_overrides = cfg.focal_ids().iter().map(|&id| (id, 40.0)).collect();
    // The protocol's soundness inputs must cover the fastest device.
    let mut p = cfg.dknn_params();
    p.v_max_q = 40.0;
    p.v_max_obj = 40.0;
    for method in [
        Method::DknnSet(p),
        Method::DknnOrder(p),
        Method::DknnBuffer {
            params: p,
            buffer: 4,
        },
    ] {
        let m = Sweep::episode(&cfg, method);
        assert_eq!(m.exactness(), 1.0, "{}", method.name());
    }
}

#[test]
fn exact_under_tight_heartbeat_and_drift() {
    let cfg = base();
    let mut p = cfg.dknn_params();
    p.heartbeat = 1;
    p.query_drift = 5.0;
    for method in [Method::DknnSet(p), Method::DknnOrder(p)] {
        let m = Sweep::episode(&cfg, method);
        assert_eq!(m.exactness(), 1.0, "{}", method.name());
    }
}

#[test]
fn exact_under_loose_heartbeat() {
    let mut cfg = base();
    cfg.ticks = 60;
    let mut p = cfg.dknn_params();
    p.heartbeat = 30; // huge margin, rare heartbeats
    for method in [
        Method::DknnSet(p),
        Method::DknnBuffer {
            params: p,
            buffer: 4,
        },
    ] {
        let m = Sweep::episode(&cfg, method);
        assert_eq!(m.exactness(), 1.0, "{}", method.name());
    }
}

#[test]
fn exact_with_extreme_alpha_placements() {
    let cfg = base();
    for alpha in [0.05, 0.95] {
        let mut p = cfg.dknn_params();
        p.alpha = alpha;
        for method in [Method::DknnSet(p), Method::DknnOrder(p)] {
            let m = Sweep::episode(&cfg, method);
            assert_eq!(m.exactness(), 1.0, "{} at alpha {alpha}", method.name());
        }
    }
}

#[test]
fn exact_on_coarse_and_fine_paging_grids() {
    for cells in [4u32, 128] {
        let mut cfg = base();
        cfg.geo_cells = cells;
        assert_all_exact(&cfg);
    }
}

#[test]
fn periodic_is_measurably_inexact_but_degrades_gracefully() {
    let mut cfg = base();
    cfg.verify = VerifyMode::Record;
    let fast = Sweep::episode(&cfg, Method::Periodic { period: 2, res: 16 });
    let slow = Sweep::episode(
        &cfg,
        Method::Periodic {
            period: 25,
            res: 16,
        },
    );
    assert!(
        fast.recall() > slow.recall(),
        "shorter period must be more accurate"
    );
    assert!(
        fast.recall() > 0.5,
        "a 2-tick period should stay close to the truth"
    );
    assert!((0.0..=1.0).contains(&slow.recall()));
    assert!(fast.net.uplink_msgs > slow.net.uplink_msgs);
}
