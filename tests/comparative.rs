//! Cross-method comparative properties: the qualitative claims the
//! evaluation section rests on, asserted as tests so a regression in any
//! protocol's efficiency (not just its correctness) fails CI.

use moving_knn::prelude::*;

fn cfg(n: usize) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: n,
            space_side: 2_000.0,
            ..WorkloadSpec::default()
        },
        n_queries: 5,
        k: 5,
        ticks: 60,
        geo_cells: 16,
        verify: VerifyMode::Off,
        fault: FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

#[test]
fn distributed_uplink_undercuts_centralized_at_scale() {
    let cfg = cfg(2_000);
    let p = cfg.dknn_params();
    let central = Sweep::episode(&cfg, Method::Centralized { res: 16 });
    for method in [
        Method::DknnSet(p),
        Method::DknnOrder(p),
        Method::DknnBuffer {
            params: p,
            buffer: 6,
        },
    ] {
        let m = Sweep::episode(&cfg, method);
        assert!(
            m.net.uplink_msgs * 4 < central.net.uplink_msgs,
            "{}: uplink {} not ≪ centralized {}",
            method.name(),
            m.net.uplink_msgs,
            central.net.uplink_msgs
        );
    }
}

#[test]
fn distributed_cost_is_population_insensitive() {
    // Centralized scales ~linearly with N; the distributed protocol's
    // traffic must grow far slower than N.
    let small = cfg(500);
    let large = cfg(4_000);
    let m_small = Sweep::episode(&small, Method::DknnSet(small.dknn_params()));
    let m_large = Sweep::episode(&large, Method::DknnSet(large.dknn_params()));
    let growth = m_large.msgs_per_tick() / m_small.msgs_per_tick().max(1e-9);
    assert!(
        growth < 4.0,
        "8× the objects grew traffic {growth:.1}×; expected ≪ 8×"
    );

    let c_small = Sweep::episode(&small, Method::Centralized { res: 16 });
    let c_large = Sweep::episode(&large, Method::Centralized { res: 16 });
    let c_growth = c_large.msgs_per_tick() / c_small.msgs_per_tick().max(1e-9);
    assert!(
        c_growth > 6.0,
        "centralized must track N; grew only {c_growth:.1}×"
    );
}

#[test]
fn ordered_semantics_cost_more_than_set_semantics() {
    let cfg = cfg(2_000);
    let p = cfg.dknn_params();
    let set = Sweep::episode(&cfg, Method::DknnSet(p));
    let ord = Sweep::episode(&cfg, Method::DknnOrder(p));
    assert!(
        ord.net.total_msgs() >= set.net.total_msgs(),
        "order maintenance cannot be cheaper than set maintenance"
    );
}

#[test]
fn buffered_variant_wins_under_churn() {
    // A small candidate buffer absorbs boundary churn with unicast patches
    // where the basic ordered protocol pays a probe + re-broadcast; the
    // advantage is largest in the geocast budget.
    let mut c = cfg(2_000);
    c.workload.speeds = SpeedDist::Uniform { min: 2.0, max: 8.0 };
    let p = c.dknn_params();
    let basic = Sweep::episode(&c, Method::DknnOrder(p));
    let buffered = Sweep::episode(
        &c,
        Method::DknnBuffer {
            params: p,
            buffer: 2,
        },
    );
    assert!(
        buffered.net.total_msgs() < basic.net.total_msgs(),
        "buffered {} should undercut basic ordered {}",
        buffered.net.total_msgs(),
        basic.net.total_msgs()
    );
    assert!(
        buffered.net.downlink_geocast_msgs * 2 < basic.net.downlink_geocast_msgs,
        "the buffered variant's point is to trade geocasts for unicasts: {} vs {}",
        buffered.net.downlink_geocast_msgs,
        basic.net.downlink_geocast_msgs
    );
}

#[test]
fn periodic_traffic_matches_its_period() {
    let c = cfg(2_000);
    let p10 = Sweep::episode(
        &c,
        Method::Periodic {
            period: 10,
            res: 16,
        },
    );
    // Staggered reporting: ~N/period uplinks per tick (objects always move
    // under random waypoint with move_prob 1).
    let expected = c.workload.n_objects as f64 / 10.0;
    let got = p10.uplink_per_tick();
    assert!(
        (got - expected).abs() < expected * 0.25,
        "expected ≈{expected} uplinks/tick, got {got}"
    );
}

#[test]
fn centralized_skips_reports_for_parked_objects() {
    let mut c = cfg(1_000);
    c.workload.move_prob = 0.5;
    let m = Sweep::episode(&c, Method::Centralized { res: 16 });
    let per_tick = m.uplink_per_tick();
    assert!(
        per_tick > 400.0 && per_tick < 600.0,
        "half the fleet parked ⇒ ≈500 reports/tick, got {per_tick}"
    );
}

#[test]
fn same_seed_same_bill_across_all_methods() {
    let c = cfg(800);
    for method in Method::standard_suite(c.dknn_params()) {
        let a = Sweep::episode(&c, method);
        let b = Sweep::episode(&c, method);
        assert_eq!(a.net, b.net, "{} is nondeterministic", method.name());
        assert_eq!(
            a.ops,
            b.ops,
            "{} op counts are nondeterministic",
            method.name()
        );
    }
}

#[test]
fn different_seeds_change_the_workload_not_the_conclusions() {
    let mut totals = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut c = cfg(1_500);
        c.workload.seed = seed;
        let p = c.dknn_params();
        let d = Sweep::episode(&c, Method::DknnSet(p));
        let cen = Sweep::episode(&c, Method::Centralized { res: 16 });
        assert!(d.net.uplink_msgs < cen.net.uplink_msgs, "seed {seed}");
        totals.push(d.net.total_msgs());
    }
    // The three seeds should not produce identical traffic (workloads differ).
    assert!(totals.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn dknn_quiescent_world_costs_only_heartbeats() {
    let mut c = cfg(1_000);
    c.workload.motion = Motion::Stationary;
    let p = c.dknn_params();
    let m = Sweep::episode(&c, Method::DknnSet(p));
    // No movement ⇒ no uplink after init (focal objects don't move either).
    assert_eq!(m.net.uplink_msgs, 0, "{:?}", m.net);
    // Downlink is pure heartbeat: bounded by queries × ticks / heartbeat ×
    // zone cells (loose bound: a small multiple of query-ticks).
    let bound = (c.n_queries as u64 * c.ticks / p.heartbeat) * 60;
    assert!(m.net.downlink_geocast_msgs < bound);
}

#[test]
fn safe_periods_cut_client_work_in_calm_worlds() {
    // The closed-form safe period lets a device skip whole ticks of
    // geometry while trajectories stay linear: slow worlds (long straight
    // legs, distant boundaries) must evaluate far less often than fast
    // ones, even though the same regions are installed.
    let mut calm = cfg(2_000);
    calm.workload.speeds = SpeedDist::Uniform { min: 0.5, max: 2.0 };
    let mut frantic = cfg(2_000);
    frantic.workload.speeds = SpeedDist::Uniform {
        min: 10.0,
        max: 40.0,
    };
    let m_calm = Sweep::episode(&calm, Method::DknnSet(calm.dknn_params()));
    let m_frantic = Sweep::episode(&frantic, Method::DknnSet(frantic.dknn_params()));
    assert!(
        m_calm.client_ops_per_object_tick() * 2.0 < m_frantic.client_ops_per_object_tick(),
        "calm {} should be ≪ frantic {}",
        m_calm.client_ops_per_object_tick(),
        m_frantic.client_ops_per_object_tick()
    );
}
