//! Sharding is an accounting overlay: for any shard count G the protocols
//! must produce answers, device traffic, and verification results that are
//! byte-identical to the single-server run — the only things allowed to
//! differ are the overlay's own counters (`net.shard`, `shard_load`). These
//! properties pin that invariant on random worlds, under the chaos fault
//! preset, and across worker-thread counts.

use mknn_net::ShardStats;
use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

/// Cases per property. Each case runs a full episode per method per G, so
/// these stay smaller than the end-to-end exactness suite.
const CASES: u64 = 8;

/// Removes everything the overlay is *allowed* to change: wall-clock,
/// the cross-shard counters, and the per-shard load vector.
fn strip(m: &EpisodeMetrics) -> EpisodeMetrics {
    let mut m = m.clone().with_clock_zeroed();
    m.net.shard = ShardStats::default();
    m.shard_load = Vec::new();
    m
}

fn random_config(rng: &mut Rng, fault: FaultPlan) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: rng.gen_range(30usize..150),
            space_side: 800.0,
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        },
        n_queries: rng.gen_range(1usize..4),
        k: rng.gen_range(1usize..6),
        ticks: rng.gen_range(10u64..30),
        geo_cells: 8,
        verify: VerifyMode::Record,
        fault,
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// Runs every standard method once per shard count and demands the stripped
/// metrics match the single-server baseline exactly.
fn assert_equivalent_across_shards(cfg: &SimConfig, shard_counts: &[u32]) {
    for method in Method::standard_suite(cfg.dknn_params()) {
        let single = Sweep::episode(cfg, method);
        let baseline = strip(&single);
        for &g in shard_counts {
            let mut sharded_cfg = cfg.clone();
            sharded_cfg.shards = g;
            let sharded = Sweep::episode(&sharded_cfg, method);
            assert_eq!(
                sharded.shard_load.len(),
                g as usize,
                "{}: shard_load must have one slot per shard",
                method.name()
            );
            assert_eq!(
                strip(&sharded),
                baseline,
                "{} diverges from single-server at G={g}",
                method.name()
            );
        }
    }
}

#[test]
fn sharded_runs_match_single_server_on_random_worlds() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::none());
        let shards: Vec<u32> = (2..=8).collect();
        assert_equivalent_across_shards(&cfg, &shards);
    });
}

#[test]
fn sharded_runs_match_single_server_under_chaos() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::chaos());
        // Chaos episodes are slower (retransmission machinery is live), so
        // probe the interesting shard counts rather than the full range.
        assert_equivalent_across_shards(&cfg, &[2, 5, 8]);
    });
}

#[test]
fn single_shard_runs_leave_the_overlay_silent() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::none());
        for method in Method::standard_suite(cfg.dknn_params()) {
            let m = Sweep::episode(&cfg, method);
            assert!(m.net.shard.is_empty(), "G=1 must not charge shard traffic");
            assert!(m.shard_load.len() <= 1);
        }
    });
}

#[test]
fn server_phase_is_thread_count_invariant_at_g4_under_chaos() {
    // The server phase dispatches one real protocol task per shard over the
    // worker pool. Everything except wall-clock — answers, device traffic,
    // the overlay counters, shard loads — must be byte-identical whether
    // those tasks run on 1 worker or 8.
    forall(4, |rng| {
        let mut cfg = random_config(rng, FaultPlan::chaos());
        cfg.shards = 4;
        for method in Method::standard_suite(cfg.dknn_params()) {
            let mut seq_cfg = cfg.clone();
            seq_cfg.client_threads = Some(1);
            let mut par_cfg = cfg.clone();
            par_cfg.client_threads = Some(8);
            let seq = Sweep::episode(&seq_cfg, method);
            let par = Sweep::episode(&par_cfg, method);
            assert_eq!(
                seq.clone().with_clock_zeroed(),
                par.clone().with_clock_zeroed(),
                "{} server phase diverges between 1 and 8 pool workers at G=4",
                method.name()
            );
        }
    });
}

#[test]
fn phase_timings_partition_proto_seconds() {
    // The monolithic protocol clock is split into client/server/route
    // phases; the parts must sum back to the whole (fp accumulation order
    // aside) and the per-shard clocks must cover every shard.
    forall(2, |rng| {
        let mut cfg = random_config(rng, FaultPlan::none());
        cfg.shards = 4;
        for method in Method::standard_suite(cfg.dknn_params()) {
            let m = Sweep::episode(&cfg, method);
            let sum = m.client_seconds + m.server_seconds + m.route_seconds;
            let tol = 1e-9 + m.proto_seconds.abs() * 1e-6;
            assert!(
                (m.proto_seconds - sum).abs() <= tol,
                "{}: proto_seconds {} != client {} + server {} + route {}",
                method.name(),
                m.proto_seconds,
                m.client_seconds,
                m.server_seconds,
                m.route_seconds,
            );
            assert_eq!(
                m.shard_seconds.len(),
                4,
                "{}: one shard clock per shard",
                method.name()
            );
            assert!(
                m.shard_seconds.iter().all(|s| s.is_finite() && *s >= 0.0),
                "{}: shard clocks must be finite and non-negative",
                method.name()
            );
        }
    });
}

#[test]
fn sharded_sweeps_are_thread_count_deterministic() {
    forall(4, |rng| {
        let mut cfg = random_config(rng, FaultPlan::chaos());
        cfg.shards = 4;
        let sweep = Sweep::over([("sharded", cfg)]).seeds(2);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // Full metrics — including the overlay counters and the
            // per-shard load vector — must agree across worker counts.
            assert_eq!(
                s.metrics.clone().with_clock_zeroed(),
                p.metrics.clone().with_clock_zeroed(),
                "{} differs across thread counts",
                s.metrics.method
            );
        }
    });
}
