//! Sharding is an accounting overlay: for any shard count G the protocols
//! must produce answers, device traffic, and verification results that are
//! byte-identical to the single-server run — the only things allowed to
//! differ are the overlay's own counters (`net.shard`, `shard_load`). These
//! properties pin that invariant on random worlds, under the chaos fault
//! preset, and across worker-thread counts.

use mknn_net::ShardStats;
use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

/// Cases per property. Each case runs a full episode per method per G, so
/// these stay smaller than the end-to-end exactness suite.
const CASES: u64 = 8;

/// Removes everything the overlay is *allowed* to change: wall-clock,
/// the cross-shard counters, and the per-shard load vector.
fn strip(m: &EpisodeMetrics) -> EpisodeMetrics {
    let mut m = m.clone().with_clock_zeroed();
    m.net.shard = ShardStats::default();
    m.shard_load = Vec::new();
    m
}

fn random_config(rng: &mut Rng, fault: FaultPlan) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: rng.gen_range(30usize..150),
            space_side: 800.0,
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        },
        n_queries: rng.gen_range(1usize..4),
        k: rng.gen_range(1usize..6),
        ticks: rng.gen_range(10u64..30),
        geo_cells: 8,
        verify: VerifyMode::Record,
        fault,
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// Runs every standard method once per shard count and demands the stripped
/// metrics match the single-server baseline exactly.
fn assert_equivalent_across_shards(cfg: &SimConfig, shard_counts: &[u32]) {
    for method in Method::standard_suite(cfg.dknn_params()) {
        let single = Sweep::episode(cfg, method);
        let baseline = strip(&single);
        for &g in shard_counts {
            let mut sharded_cfg = cfg.clone();
            sharded_cfg.shards = g;
            let sharded = Sweep::episode(&sharded_cfg, method);
            assert_eq!(
                sharded.shard_load.len(),
                g as usize,
                "{}: shard_load must have one slot per shard",
                method.name()
            );
            assert_eq!(
                strip(&sharded),
                baseline,
                "{} diverges from single-server at G={g}",
                method.name()
            );
        }
    }
}

#[test]
fn sharded_runs_match_single_server_on_random_worlds() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::none());
        let shards: Vec<u32> = (2..=8).collect();
        assert_equivalent_across_shards(&cfg, &shards);
    });
}

#[test]
fn sharded_runs_match_single_server_under_chaos() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::chaos());
        // Chaos episodes are slower (retransmission machinery is live), so
        // probe the interesting shard counts rather than the full range.
        assert_equivalent_across_shards(&cfg, &[2, 5, 8]);
    });
}

#[test]
fn single_shard_runs_leave_the_overlay_silent() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::none());
        for method in Method::standard_suite(cfg.dknn_params()) {
            let m = Sweep::episode(&cfg, method);
            assert!(m.net.shard.is_empty(), "G=1 must not charge shard traffic");
            assert!(m.shard_load.len() <= 1);
        }
    });
}

#[test]
fn sharded_sweeps_are_thread_count_deterministic() {
    forall(4, |rng| {
        let mut cfg = random_config(rng, FaultPlan::chaos());
        cfg.shards = 4;
        let sweep = Sweep::over([("sharded", cfg)]).seeds(2);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // Full metrics — including the overlay counters and the
            // per-shard load vector — must agree across worker counts.
            assert_eq!(
                s.metrics.clone().with_clock_zeroed(),
                p.metrics.clone().with_clock_zeroed(),
                "{} differs across thread counts",
                s.metrics.method
            );
        }
    });
}
