//! Shard crash/failover property suite (DESIGN.md §11).
//!
//! Each case schedules deterministic shard-crash windows — a shard loses
//! every object home, registered query, and per-query member/candidate
//! state at the window start, and the coordinator routes around it until
//! rebirth runs the counted `Recover` sweep. The suite proves the
//! robustness claims of the failure domain:
//!
//! * **bounded reconvergence** — every method that claims exact answers is
//!   exact again within `O(heartbeat + lease_ttl)` ticks of the last
//!   rebirth, at any shard count;
//! * **determinism** — a crash episode is byte-identical across reruns and
//!   across client thread counts (the schedule is a pure function of the
//!   plan, seed, shard count, and tick budget);
//! * **isolation** — crash-free plans charge no recovery traffic and keep
//!   their serialized metrics shape, so every pre-crash golden byte stays
//!   put.

use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

/// Clean ticks granted after the last rebirth before exactness is
/// asserted: the reconvergence bound. One refresh round-trip re-establishes
/// a wiped query the tick it is detected; a heartbeat re-announces regions
/// to devices that missed one; a lease timeout (2·heartbeat + 3) flushes
/// any member the wipe orphaned. The default heartbeat is 10, so this is
/// `heartbeat + lease_ttl + 2` = 35 ticks — O(heartbeat + lease_ttl), far
/// below the episode length.
fn reconvergence_bound(cfg: &SimConfig) -> u64 {
    let p = cfg.dknn_params();
    p.heartbeat + p.lease_ttl() + 2
}

/// A random crash-scheduling plan over a perfect device link: 1–3 outages
/// of 3–8 ticks each, isolating server amnesia from transport noise.
fn crash_plan(rng: &mut Rng) -> FaultPlan {
    let min = rng.gen_range(3u64..=5);
    FaultPlan::builder()
        .crashes(
            rng.gen_range(1u64..=3) as u32,
            min,
            min + rng.gen_range(0u64..=3),
        )
        .build()
        .expect("crash knobs are inside the builder's ranges")
}

fn recovery_config(rng: &mut Rng, shards: u32) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: rng.gen_range(120usize..180),
            space_side: 800.0,
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        },
        n_queries: 3,
        k: 3,
        ticks: 60,
        geo_cells: 16,
        verify: VerifyMode::Off,
        fault: FaultPlan::none(), // replaced per case
        shards,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// Steps `sim` until `bound` ticks past the last planned rebirth and
/// returns the tick stepped to.
fn step_past_last_rebirth(sim: &mut Simulation, bound: u64) -> u64 {
    let last_rebirth = sim
        .crash_windows()
        .iter()
        .map(|w| w.until)
        .max()
        .expect("crash plans schedule at least one window");
    let until = last_rebirth + bound;
    for _ in 0..until {
        sim.step();
    }
    until
}

#[test]
fn exact_methods_reconverge_within_the_bound_at_any_shard_count() {
    forall(6, |rng| {
        let shards = [2u32, 4, 8][rng.gen_range(0..3u64) as usize];
        let mut cfg = recovery_config(rng, shards);
        cfg.fault = crash_plan(rng);
        let bound = reconvergence_bound(&cfg);
        let p = cfg.dknn_params();
        for method in [
            Method::DknnSet(p),
            Method::DknnOrder(p),
            Method::DknnBuffer {
                params: p,
                buffer: 3,
            },
            Method::Centralized { res: 16 },
            Method::Naive { headroom: 1.5 },
        ] {
            let mut sim = Simulation::new(&cfg, method.build());
            assert!(
                !sim.crash_windows().is_empty(),
                "plan {} scheduled no crash windows",
                mknn_util::to_string(&cfg.fault)
            );
            let stepped = step_past_last_rebirth(&mut sim, bound);
            assert_eq!(
                sim.inexact_queries(),
                0,
                "{} not exact {bound} ticks after the last rebirth (G={shards}, \
                 windows {:?}, stepped {stepped}, workload seed {})",
                method.name(),
                sim.crash_windows(),
                cfg.workload.seed,
            );
            let m = sim.metrics();
            assert_eq!(m.shard_crashes, sim.crash_windows().len() as u64);
            assert!(m.crash_down_ticks > 0, "windows must cost down ticks");
        }
    });
}

#[test]
fn periodic_recovers_to_its_normal_staleness_envelope() {
    // `periodic` never claims exactness, so the bound instead asserts the
    // crash hole is healed: after the rebirth replay plus one full
    // reporting period, its answers are no worse than a crash-free run of
    // the same world (measured as inexact queries at the same tick).
    forall(4, |rng| {
        let mut cfg = recovery_config(rng, 4);
        cfg.fault = crash_plan(rng);
        let period = 10u64;
        let method = Method::Periodic { period, res: 16 };
        let mut crashed = Simulation::new(&cfg, method.build());
        let stepped = step_past_last_rebirth(&mut crashed, period + 1);
        let clean_cfg = SimConfig {
            fault: FaultPlan::none(),
            ..cfg.clone()
        };
        let mut clean = Simulation::new(&clean_cfg, method.build());
        for _ in 0..stepped {
            clean.step();
        }
        assert!(
            crashed.inexact_queries() <= clean.inexact_queries(),
            "crash hole persisted past the replay + one period (seed {})",
            cfg.workload.seed,
        );
    });
}

#[test]
fn crash_episodes_are_deterministic_across_reruns_and_thread_counts() {
    forall(4, |rng| {
        let mut cfg = recovery_config(rng, 4);
        cfg.fault = crash_plan(rng);
        cfg.verify = VerifyMode::Record;
        let p = cfg.dknn_params();
        for method in [
            Method::DknnSet(p),
            Method::DknnBuffer {
                params: p,
                buffer: 3,
            },
            Method::Centralized { res: 16 },
        ] {
            let one = Simulation::new(&cfg, method.build());
            let two = Simulation::new(&cfg, method.build());
            assert_eq!(
                one.crash_windows(),
                two.crash_windows(),
                "schedule must be a pure function of (plan, seed, G, ticks)"
            );
            let a = one.run().with_clock_zeroed();
            let b = two.run().with_clock_zeroed();
            assert_eq!(a, b, "{} rerun diverged", method.name());
            let seq_cfg = SimConfig {
                client_threads: Some(1),
                ..cfg.clone()
            };
            let par_cfg = SimConfig {
                client_threads: Some(4),
                ..cfg.clone()
            };
            let seq = Simulation::new(&seq_cfg, method.build())
                .run()
                .with_clock_zeroed();
            let par = Simulation::new(&par_cfg, method.build())
                .run()
                .with_clock_zeroed();
            assert_eq!(
                seq,
                par,
                "{} crash episode differs across thread counts",
                method.name()
            );
        }
    });
}

#[test]
fn recovery_sweep_charges_counted_legs_and_rebuilds_homes() {
    // A long single outage on a busy world: movers crossing into the dead
    // block are adopted by the fallback shard, so the rebirth sweep must
    // charge at least one Recover leg from a surviving source.
    forall(4, |rng| {
        let mut cfg = recovery_config(rng, 4);
        cfg.workload.n_objects = 200;
        cfg.fault = FaultPlan::builder()
            .crashes(2, 8, 12)
            .build()
            .expect("valid crash plan");
        let bound = reconvergence_bound(&cfg);
        let mut sim = Simulation::new(&cfg, Method::DknnSet(cfg.dknn_params()).build());
        step_past_last_rebirth(&mut sim, bound);
        let shard = &sim.metrics().net.shard;
        assert!(
            shard.recover_msgs > 0,
            "no Recover legs charged: {shard:?} (seed {})",
            cfg.workload.seed
        );
        assert!(
            shard.recover_bytes > 0,
            "Recover legs must carry bytes: {shard:?}"
        );
        assert_eq!(sim.inexact_queries(), 0);
    });
}

#[test]
fn single_shard_crash_recovers_device_side_only() {
    // G = 1 is the degenerate failure domain: the only shard is its own
    // fallback, so no backbone leg can flow — recovery is purely the
    // device-side machinery (probe re-establishment), and it still meets
    // the bound.
    forall(3, |rng| {
        let mut cfg = recovery_config(rng, 1);
        cfg.fault = crash_plan(rng);
        let bound = reconvergence_bound(&cfg);
        let mut sim = Simulation::new(&cfg, Method::DknnSet(cfg.dknn_params()).build());
        step_past_last_rebirth(&mut sim, bound);
        assert_eq!(sim.inexact_queries(), 0, "seed {}", cfg.workload.seed);
        assert_eq!(
            sim.metrics().net.shard.recover_msgs,
            0,
            "a lone shard has no surviving source to replay from"
        );
    });
}

#[test]
fn crash_free_plans_charge_no_recovery_traffic_and_keep_their_shape() {
    // The isolation regression: a crash-free plan — perfect link or device
    // chaos — at G > 1 must schedule nothing, charge nothing, and
    // serialize without any crash field: the shape gate that keeps every
    // pre-crash golden byte identical (the byte-level gate itself is
    // `scripts/verify.sh determinism`, against the committed golden).
    forall(3, |rng| {
        for fault in [FaultPlan::none(), FaultPlan::chaos()] {
            let mut cfg = recovery_config(rng, 4);
            cfg.fault = fault;
            cfg.verify = VerifyMode::Record;
            let sim = Simulation::new(&cfg, Method::DknnSet(cfg.dknn_params()).build());
            assert!(sim.crash_windows().is_empty());
            let m = sim.run();
            assert_eq!(m.shard_crashes, 0);
            assert_eq!(m.crash_down_ticks, 0);
            assert_eq!(m.net.shard.recover_msgs, 0);
            assert_eq!(m.net.shard.recover_bytes, 0);
            let doc = mknn_util::to_string(&m);
            for field in ["shard_crashes", "crash_down_ticks", "recover"] {
                assert!(!doc.contains(field), "{field} leaked into: {doc}");
            }
        }
    });
}
