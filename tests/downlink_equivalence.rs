//! The scoped downlink (DESIGN.md §10) is a *byte-accounting* overlay: the
//! interest scope pass, delta encoding, and per-device frame batching may
//! only change how server → device traffic is priced, never what arrives.
//! For any method, fault plan, shard count, or thread count, a scoped
//! episode must produce answers and logical message tallies byte-identical
//! to the legacy per-message model — the only counters allowed to differ
//! are `downlink_bytes` and the frame ledger (`frames`,
//! `frame_header_bytes`, `delta_full_fallbacks`, and the `ack_bytes`
//! share, which splits frame payload and exists only under the measured
//! wire model).

use mknn_net::ShardStats;
use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

/// Cases per property: each runs full episodes per method per mode.
const CASES: u64 = 6;

/// Removes exactly what the scoped model is allowed to change.
fn strip_bytes(m: &EpisodeMetrics) -> EpisodeMetrics {
    let mut m = m.clone().with_clock_zeroed();
    m.net.downlink_bytes = 0;
    m.net.frames = 0;
    m.net.frame_header_bytes = 0;
    m.net.delta_full_fallbacks = 0;
    m.net.ack_bytes = 0;
    m
}

/// Removes what the shard overlay is allowed to change on top.
fn strip_shards(mut m: EpisodeMetrics) -> EpisodeMetrics {
    m.net.shard = ShardStats::default();
    m.shard_load = Vec::new();
    m
}

fn random_config(rng: &mut Rng, fault: FaultPlan) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: rng.gen_range(30usize..150),
            space_side: 800.0,
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        },
        n_queries: rng.gen_range(1usize..4),
        k: rng.gen_range(1usize..6),
        ticks: rng.gen_range(10u64..30),
        geo_cells: 8,
        verify: VerifyMode::Record,
        fault,
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// A chaos preset with churn guaranteed on, so the ack-gap → full-snapshot
/// fallback path is actually exercised.
fn churny_chaos() -> FaultPlan {
    FaultPlan::builder()
        .up_loss(0.10)
        .down_loss(0.10)
        .duplication(0.02)
        .delay(0.2, 2)
        .churn(0.02, 1, 3)
        .build()
        .expect("preset inside builder ranges")
}

fn assert_modes_agree(cfg: &SimConfig) {
    for method in Method::standard_suite(cfg.dknn_params()) {
        let scoped = Sweep::episode(cfg, method);
        let legacy_cfg = SimConfig {
            downlink: DownlinkMode::Legacy,
            ..cfg.clone()
        };
        let legacy = Sweep::episode(&legacy_cfg, method);
        assert_eq!(
            strip_bytes(&scoped),
            strip_bytes(&legacy),
            "{} diverges between downlink modes (workload seed {})",
            method.name(),
            cfg.workload.seed,
        );
        // Frames exist only under the scoped model.
        assert_eq!(legacy.net.frames, 0, "{}", method.name());
        assert_eq!(legacy.net.frame_header_bytes, 0, "{}", method.name());
        assert_eq!(legacy.net.delta_full_fallbacks, 0, "{}", method.name());
        if scoped.net.downlink_unicast_msgs + scoped.net.downlink_geocast_msgs > 0 {
            assert!(
                scoped.net.frames > 0,
                "{}: scoped downlink traffic must be framed",
                method.name()
            );
        }
    }
}

#[test]
fn modes_agree_on_everything_but_bytes_on_random_worlds() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, FaultPlan::none());
        assert_modes_agree(&cfg);
    });
}

#[test]
fn modes_agree_under_chaos_churn() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, churny_chaos());
        assert_modes_agree(&cfg);
    });
}

#[test]
fn answers_are_identical_tick_by_tick_across_modes() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, churny_chaos());
        let legacy_cfg = SimConfig {
            downlink: DownlinkMode::Legacy,
            ..cfg.clone()
        };
        let p = cfg.dknn_params();
        for method in [
            Method::DknnSet(p),
            Method::DknnOrder(p),
            Method::Centralized { res: 16 },
            Method::Naive { headroom: 1.5 },
        ] {
            let mut a = Simulation::new(&cfg, method.build());
            let mut b = Simulation::new(&legacy_cfg, method.build());
            for tick in 0..cfg.ticks {
                a.step();
                b.step();
                for spec in a.specs().to_vec() {
                    assert_eq!(
                        a.answer(spec.id),
                        b.answer(spec.id),
                        "{} answers diverge at tick {tick} (seed {})",
                        method.name(),
                        cfg.workload.seed,
                    );
                }
            }
        }
    });
}

#[test]
fn scoped_mode_commutes_with_the_shard_overlay() {
    forall(CASES, |rng| {
        let cfg = random_config(rng, churny_chaos());
        for method in Method::standard_suite(cfg.dknn_params()) {
            let single = strip_shards(Sweep::episode(&cfg, method).with_clock_zeroed());
            for g in [3u32, 7] {
                let sharded_cfg = SimConfig {
                    shards: g,
                    ..cfg.clone()
                };
                let sharded =
                    strip_shards(Sweep::episode(&sharded_cfg, method).with_clock_zeroed());
                assert_eq!(
                    sharded,
                    single,
                    "{} scoped accounting changes under G={g}",
                    method.name()
                );
            }
        }
    });
}

#[test]
fn scoped_sweeps_are_thread_count_deterministic() {
    forall(3, |rng| {
        let cfg = random_config(rng, churny_chaos());
        let sweep = Sweep::over([("scoped", cfg)]).seeds(2);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(
                s.metrics.clone().with_clock_zeroed(),
                p.metrics.clone().with_clock_zeroed(),
                "{} differs across thread counts",
                s.metrics.method
            );
        }
    });
}

#[test]
fn churn_rejoins_fall_back_to_full_snapshots() {
    // Under sustained churn the distributed methods must hit the ack-gap →
    // full-snapshot path at least once across a handful of worlds; a zero
    // here would mean the fallback machinery is dead code.
    let fallbacks = std::cell::Cell::new(0u64);
    forall(4, |rng| {
        let mut cfg = random_config(rng, churny_chaos());
        cfg.ticks = 40;
        cfg.workload.n_objects = 150;
        cfg.n_queries = 3;
        let m = Sweep::episode(&cfg, Method::DknnSet(cfg.dknn_params()));
        fallbacks.set(fallbacks.get() + m.net.delta_full_fallbacks);
    });
    assert!(
        fallbacks.get() > 0,
        "churn never triggered a full-snapshot fallback"
    );
}
