//! Cross-thread-count determinism: a sweep executed on one worker must
//! produce episode-for-episode identical metrics to the same sweep on many
//! workers, because seeds are fixed at plan time and results are collected
//! in plan order. Only wall-clock fields may differ; the comparison zeroes
//! them via `EpisodeMetrics::with_clock_zeroed`.

use mknn_util::check::forall;
use mknn_util::Rng;
use moving_knn::prelude::*;

fn random_point(rng: &mut Rng, label: &str) -> (String, SimConfig) {
    let cfg = SimConfig {
        workload: WorkloadSpec {
            n_objects: rng.gen_range(40usize..200),
            space_side: 800.0,
            seed: rng.next_u64(),
            ..WorkloadSpec::default()
        },
        n_queries: rng.gen_range(1usize..4),
        k: rng.gen_range(1usize..6),
        ticks: rng.gen_range(10u64..25),
        geo_cells: 8,
        verify: VerifyMode::Record,
        fault: FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    };
    (label.to_string(), cfg)
}

fn assert_same_runs(seq: &[EpisodeRun], par: &[EpisodeRun]) {
    assert_eq!(seq.len(), par.len(), "plan sizes diverged");
    for (s, p) in seq.iter().zip(par) {
        assert_eq!(s.label, p.label, "plan order diverged");
        assert_eq!(s.method, p.method, "plan order diverged");
        assert_eq!(s.seed_index, p.seed_index, "plan order diverged");
        assert_eq!(
            s.metrics.clone().with_clock_zeroed(),
            p.metrics.clone().with_clock_zeroed(),
            "{} at point {} seed {} differs across thread counts",
            s.metrics.method,
            s.label,
            s.seed_index
        );
    }
}

#[test]
fn one_worker_and_eight_workers_agree_on_random_sweeps() {
    forall(6, |rng| {
        let points = vec![random_point(rng, "a"), random_point(rng, "b")];
        let sweep = Sweep::over(points).seeds(2);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(8).run();
        assert_same_runs(&seq, &par);
    });
}

#[test]
fn thread_count_does_not_leak_into_explicit_method_grids() {
    forall(6, |rng| {
        let (_, cfg) = random_point(rng, "grid");
        let p = cfg.dknn_params();
        let grid: Vec<(String, SimConfig, Method)> = vec![
            ("set".into(), cfg.clone(), Method::DknnSet(p)),
            (
                "buf".into(),
                cfg.clone(),
                Method::DknnBuffer {
                    params: p,
                    buffer: 3,
                },
            ),
            ("cen".into(), cfg, Method::Centralized { res: 8 }),
        ];
        let sweep = Sweep::grid(grid);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(8).run();
        assert_same_runs(&seq, &par);
    });
}
