//! Minimal JSON reading and writing.
//!
//! This replaces `serde`/`serde_json` for the workspace's config, workload,
//! and metrics structs. Types implement [`ToJson`]/[`FromJson`] (by hand, or
//! via the [`impl_json_struct!`](crate::impl_json_struct) macro for plain
//! structs) and convert through the dynamic [`Json`] value.
//!
//! Conventions match what the previous `serde` derives produced:
//!
//! * structs → objects with the field names as keys;
//! * unit enum variants → the variant name as a string;
//! * data-carrying enum variants → `{"Variant": payload}` (external tagging);
//! * newtype ids → the bare inner value.
//!
//! One deliberate extension: the writer emits — and the parser accepts — the
//! bare tokens `Infinity`, `-Infinity`, and `NaN`, because geometry types
//! legitimately hold `f64::INFINITY` (e.g. an unbounded annulus) and summary
//! rows hold NaN, and round-tripping must not lose them.

use std::fmt;

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, within `i64` range.
    Int(i64),
    /// Any other number (including the `Infinity`/`NaN` extension tokens).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved, so writing is deterministic.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }

    /// Prefixes the message with `context` (used to build field paths).
    pub fn context(self, context: &str) -> JsonError {
        JsonError {
            msg: format!("{context}: {}", self.msg),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialization into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Builds `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Parses `s` and converts it to `T`.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(s)?)
}

// ---------------------------------------------------------------------------
// Json value: constructors and typed accessors
// ---------------------------------------------------------------------------

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// Parses a required object field into `T`.
    pub fn parse_field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.field(key)?).map_err(|e| e.context(&format!("field `{key}`")))
    }

    /// Parses an optional object field, substituting `T::default()` when the
    /// key is absent or `null` (the `#[serde(default)]` convention).
    pub fn parse_field_or_default<T: FromJson + Default>(&self, key: &str) -> Result<T, JsonError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(T::default()),
            Some(v) => T::from_json(v).map_err(|e| e.context(&format!("field `{key}`"))),
        }
    }

    /// Numeric value as `f64` (accepts `Int` and `Float`).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(type_error("number", other)),
        }
    }

    /// Integer value as `i64` (accepts fraction-free `Float`s, e.g. `1.0`).
    pub fn as_i64(&self) -> Result<i64, JsonError> {
        match self {
            Json::Int(i) => Ok(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Ok(*f as i64),
            other => Err(type_error("integer", other)),
        }
    }

    /// Non-negative integer value as `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let i = self.as_i64()?;
        u64::try_from(i).map_err(|_| JsonError::new(format!("expected unsigned integer, got {i}")))
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }

    /// String value.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_error("array", other)),
        }
    }

    /// Object fields.
    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(type_error("object", other)),
        }
    }

    /// The name of this value's type, for error messages.
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn type_error(wanted: &str, got: &Json) -> JsonError {
    JsonError::new(format!("expected {wanted}, got {}", got.type_name()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

impl Json {
    /// Renders as compact JSON (no whitespace). Object fields keep their
    /// insertion order, so equal values render to byte-identical strings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders as indented JSON (2-space indent) for human consumption.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_float(*f, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{}` prints the shortest string that round-trips the exact f64.
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Nesting depth limit; prevents stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses a JSON document (one value plus surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Json::Null),
            Some(b'N') if self.eat_word("NaN") => Ok(Json::Float(f64::NAN)),
            Some(b'I') if self.eat_word("Infinity") => Ok(Json::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Json::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::new(format!("invalid number `{text}` at byte {start}")))
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson for primitives and containers
// ---------------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_i64()
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Counters in this workspace stay far below i64::MAX; saturate
        // rather than silently wrapping if one ever does not.
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i64)
    }
}

impl FromJson for u32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::try_from(v.as_i64()?).map_err(|_| JsonError::new("integer out of u32 range"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(i64::try_from(*self).unwrap_or(i64::MAX))
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        usize::try_from(v.as_i64()?).map_err(|_| JsonError::new("integer out of usize range"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.context(&format!("element {i}"))))
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr()?;
        if items.len() != 2 {
            return Err(JsonError::new(format!(
                "expected 2-element array, got {}",
                items.len()
            )));
        }
        Ok((
            A::from_json(&items[0]).map_err(|e| e.context("element 0"))?,
            B::from_json(&items[1]).map_err(|e| e.context("element 1"))?,
        ))
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a plain struct, mapping each listed
/// field to an object key of the same name. An optional `default { ... }`
/// block lists fields that fall back to `Default::default()` when the key is
/// missing (the `#[serde(default)]` convention).
///
/// ```
/// use mknn_util::impl_json_struct;
///
/// #[derive(Debug, PartialEq, Default)]
/// struct P { x: f64, y: f64, tag: String }
/// impl_json_struct!(P { x, y } default { tag });
///
/// let p = P { x: 1.0, y: 2.0, tag: String::new() };
/// let back: P = mknn_util::from_str(&mknn_util::to_string(&p)).unwrap();
/// assert_eq!(p, back);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        $crate::impl_json_struct!($ty { $($field),* } default {});
    };
    ($ty:ty { $($field:ident),* $(,)? } default { $($dfield:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field)),)*
                    $((stringify!($dfield), $crate::json::ToJson::to_json(&self.$dfield)),)*
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $($field: v.parse_field(stringify!($field))?,)*
                    $($dfield: v.parse_field_or_default(stringify!($dfield))?,)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.render()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(0.1),
            Json::Float(-1.5e-9),
            Json::Float(1e300),
            Json::Str("hello".into()),
            Json::Str("esc \" \\ \n \t \u{1} π 🚀".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn nonfinite_floats_round_trip() {
        assert_eq!(
            roundtrip(&Json::Float(f64::INFINITY)),
            Json::Float(f64::INFINITY)
        );
        assert_eq!(
            roundtrip(&Json::Float(f64::NEG_INFINITY)),
            Json::Float(f64::NEG_INFINITY)
        );
        match roundtrip(&Json::Float(f64::NAN)) {
            Json::Float(f) => assert!(f.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::object([
            ("name", Json::Str("grid".into())),
            ("dims", Json::Arr(vec![Json::Int(3), Json::Int(4)])),
            (
                "nested",
                Json::object([("flag", Json::Bool(true)), ("opt", Json::Null)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
        // And via the pretty printer too.
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn integral_float_collapses_to_int_but_reads_back_as_f64() {
        // Display prints 1.0 as "1"; the typed accessor still returns 1.0.
        let parsed = Json::parse(&Json::Float(1.0).render()).unwrap();
        assert_eq!(parsed, Json::Int(1));
        assert_eq!(parsed.as_f64().unwrap(), 1.0);
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = Json::parse(r#" { "a" : [ 1 , 2.5 , "x" , null , true ] , "b" : {} } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parser_handles_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndAé😀".into()));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[1,]x",
            "nul",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "input {bad:?} should fail");
        }
    }

    #[test]
    fn parser_rejects_deep_nesting() {
        let s = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&s).is_err());
    }

    #[test]
    fn numbers_with_exponents_parse() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64().unwrap(), 1000.0);
        assert_eq!(Json::parse("-2.5E-2").unwrap().as_f64().unwrap(), -0.025);
        assert_eq!(
            Json::parse("12345678901234567890")
                .unwrap()
                .as_f64()
                .unwrap(),
            1.2345678901234567e19
        );
    }

    #[test]
    fn typed_primitives_round_trip() {
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX.min(900))).unwrap(),
            900
        );
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<(u32, f64)>("[7,0.5]").unwrap(), (7, 0.5));
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }

    #[derive(Debug, PartialEq, Default)]
    struct Demo {
        a: u32,
        b: f64,
        tags: Vec<String>,
    }
    impl_json_struct!(Demo { a, b } default { tags });

    #[test]
    fn struct_macro_round_trips_and_defaults() {
        let d = Demo {
            a: 7,
            b: 2.5,
            tags: vec!["x".into()],
        };
        let s = to_string(&d);
        assert_eq!(from_str::<Demo>(&s).unwrap(), d);
        // Missing defaulted field is fine; missing required field is not.
        let partial: Demo = from_str(r#"{"a":1,"b":0.5}"#).unwrap();
        assert_eq!(
            partial,
            Demo {
                a: 1,
                b: 0.5,
                tags: vec![]
            }
        );
        assert!(from_str::<Demo>(r#"{"a":1}"#).is_err());
    }

    #[test]
    fn error_messages_carry_field_context() {
        let err = from_str::<Demo>(r#"{"a":"no","b":1.0}"#).unwrap_err();
        assert!(err.to_string().contains("field `a`"), "got: {err}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::object([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), v.render());
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
