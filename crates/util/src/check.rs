//! A tiny randomized property-testing harness.
//!
//! This replaces `proptest` for the workspace's property suites. A property
//! is a closure over a seeded [`Rng`]; [`forall`] runs it for a number of
//! independently-seeded cases and, on failure, reports exactly which case
//! seed broke so the failure reproduces with a single environment variable —
//! no shrinking, no persistence files, no dependencies.
//!
//! ```no_run
//! mknn_util::check::forall(64, |rng| {
//!     let x = rng.gen_range(-1.0e4..1.0e4);
//!     assert!(x * 0.0 == 0.0);
//! });
//! ```
//!
//! Reproducing a failure: every case derives its seed from a base seed
//! (default [`DEFAULT_SEED`]) and the case index. Set `MKNN_CHECK_SEED` to
//! the reported case seed to re-run a failing property with that exact case
//! first (case 0 uses the base seed's first derivation), or to any other
//! value to explore a fresh part of the input space.

use crate::rng::{splitmix64, Rng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed used when `MKNN_CHECK_SEED` is not set.
///
/// Fixed so that `cargo test` is deterministic: the same binary always
/// exercises the same cases.
pub const DEFAULT_SEED: u64 = 0x1CDE_2007_D15C_0DE5;

/// Returns the harness base seed (`MKNN_CHECK_SEED` env override, or
/// [`DEFAULT_SEED`]).
pub fn base_seed() -> u64 {
    match std::env::var("MKNN_CHECK_SEED") {
        Ok(s) => {
            let t = s.trim();
            let parsed = if let Some(hex) = t.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                t.parse()
            };
            parsed.unwrap_or_else(|_| panic!("MKNN_CHECK_SEED is not a u64: {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// Runs `property` for `cases` independently-seeded random cases.
///
/// Each case gets a fresh [`Rng`] whose seed derives deterministically from
/// the base seed (see [`base_seed`]) and the case index. If the property
/// panics, the case index and seed are printed to stderr and the original
/// panic is propagated, so the test still fails with its own message.
pub fn forall<F>(cases: u64, property: F)
where
    F: Fn(&mut Rng),
{
    let base = base_seed();
    let mut derive = base;
    for case in 0..cases {
        let case_seed = splitmix64(&mut derive);
        let mut rng = Rng::seed_from_u64(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "property failed on case {case}/{cases} (case seed {case_seed:#018x}, \
                 base seed {base:#018x}); rerun with MKNN_CHECK_SEED={case_seed} to \
                 make this the first case"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let counter = AtomicU64::new(0);
        forall(32, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn cases_are_deterministic_and_distinct() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        forall(16, |rng| {
            seen.lock().unwrap().push(rng.next_u64());
        });
        let first: Vec<u64> = std::mem::take(&mut seen.lock().unwrap());
        forall(16, |rng| {
            seen.lock().unwrap().push(rng.next_u64());
        });
        let second: Vec<u64> = std::mem::take(&mut seen.lock().unwrap());
        assert_eq!(first, second, "same base seed must replay the same cases");
        let mut dedup = first.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), first.len(), "cases must be distinct");
    }

    #[test]
    fn failing_property_propagates_panic() {
        let result = catch_unwind(|| {
            forall(8, |rng| {
                let v = rng.gen_range(0u32..100);
                assert!(v < 1000, "bound check");
                panic!("deliberate failure");
            });
        });
        assert!(result.is_err());
    }
}
