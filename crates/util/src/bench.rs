//! Micro-benchmark harness: warmup, median-of-N sampling, JSON output.
//!
//! This replaces `criterion` for the workspace's `harness = false` bench
//! targets. Each benchmark is calibrated during a warmup phase so one timed
//! sample lasts roughly [`Config::sample_ms`], then `samples` timings are
//! collected and summarized by their median (robust to scheduler noise).
//! Results print as a table to stderr and, at [`Suite::finish`], as a JSON
//! document to stdout and `target/benchmarks/<suite>.json`.
//!
//! Environment knobs:
//! * `MKNN_BENCH_SAMPLES` — number of timed samples per benchmark.
//! * `MKNN_BENCH_SAMPLE_MS` — target duration of one sample, milliseconds.
//! * `MKNN_BENCH_FAST=1` — smoke mode: 3 samples of ≥1 iteration, for
//!   checking that benches still run without waiting on real measurements.

pub use std::hint::black_box;

use crate::json::{Json, ToJson};
use std::time::Instant;

/// Sampling configuration (see the module docs for the env overrides).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Timed samples per benchmark (the median of these is reported).
    pub samples: usize,
    /// Target wall-clock duration of one sample, in milliseconds.
    pub sample_ms: f64,
    /// Warmup duration before calibration, in milliseconds.
    pub warmup_ms: f64,
}

impl Default for Config {
    fn default() -> Config {
        let fast = std::env::var("MKNN_BENCH_FAST").is_ok_and(|v| v == "1");
        let env_usize = |key: &str, dflt: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(dflt)
        };
        let env_f64 = |key: &str, dflt: f64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(dflt)
        };
        if fast {
            Config {
                samples: 3,
                sample_ms: 1.0,
                warmup_ms: 1.0,
            }
        } else {
            Config {
                samples: env_usize("MKNN_BENCH_SAMPLES", 15),
                sample_ms: env_f64("MKNN_BENCH_SAMPLE_MS", 25.0),
                warmup_ms: env_f64("MKNN_BENCH_WARMUP_MS", 50.0),
            }
        }
    }
}

/// Summary of one benchmark's timed samples (nanoseconds per iteration).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median ns/iter across samples — the headline number.
    pub median_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample (after calibration).
    pub iters_per_sample: u64,
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Float(self.median_ns)),
            ("mean_ns", Json::Float(self.mean_ns)),
            ("min_ns", Json::Float(self.min_ns)),
            ("max_ns", Json::Float(self.max_ns)),
            ("samples", Json::Int(self.samples as i64)),
            ("iters_per_sample", Json::Int(self.iters_per_sample as i64)),
        ])
    }
}

/// A named collection of benchmarks sharing one [`Config`].
pub struct Suite {
    name: String,
    config: Config,
    results: Vec<Measurement>,
}

impl Suite {
    /// Creates a suite with the environment-derived default [`Config`].
    pub fn new(name: &str) -> Suite {
        Suite {
            name: name.to_string(),
            config: Config::default(),
            results: Vec::new(),
        }
    }

    /// Overrides the sampling configuration for subsequent benchmarks.
    pub fn with_config(mut self, config: Config) -> Suite {
        self.config = config;
        self
    }

    /// Benchmarks `routine`, auto-calibrating iterations per sample.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        // Warmup: run until the warmup budget is spent, counting iterations
        // to estimate the per-iteration cost.
        let warmup_budget = self.config.warmup_ms * 1e6; // ns
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while (start.elapsed().as_nanos() as f64) < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let ns_per_iter = start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let iters = ((self.config.sample_ms * 1e6 / ns_per_iter.max(1.0)) as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(name, iters, samples_ns);
    }

    /// Benchmarks `routine` on fresh input from `setup`, excluding setup time
    /// from the measurement. Each timed sample runs `routine` once over a
    /// batch of `iters_per_sample` pre-built inputs (the criterion
    /// `iter_batched` pattern, for routines that consume or mutate state).
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        iters_per_sample: u64,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let iters = iters_per_sample.max(1);
        // One warmup batch, un-timed.
        let mut warm: Vec<S> = (0..iters.min(2)).map(|_| setup()).collect();
        while let Some(input) = warm.pop() {
            black_box(routine(input));
        }

        let mut samples_ns = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let mut batch: Vec<S> = (0..iters).map(|_| setup()).collect();
            // Pop from the back so inputs drop in construction order without
            // shifting the vector; the drain itself is outside the timer.
            let t = Instant::now();
            while let Some(input) = batch.pop() {
                black_box(routine(input));
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(name, iters, samples_ns);
    }

    fn record(&mut self, name: &str, iters: u64, mut samples_ns: Vec<f64>) {
        samples_ns.sort_unstable_by(f64::total_cmp);
        let n = samples_ns.len();
        let median = if n == 0 {
            f64::NAN
        } else if n % 2 == 1 {
            samples_ns[n / 2]
        } else {
            (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2.0
        };
        let m = Measurement {
            name: name.to_string(),
            median_ns: median,
            mean_ns: samples_ns.iter().sum::<f64>() / n.max(1) as f64,
            min_ns: samples_ns.first().copied().unwrap_or(f64::NAN),
            max_ns: samples_ns.last().copied().unwrap_or(f64::NAN),
            samples: n,
            iters_per_sample: iters,
        };
        eprintln!(
            "{:<40} median {:>12}/iter   (min {:>12}, max {:>12}, {} × {} iters)",
            format!("{}/{}", self.name, m.name),
            format_ns(m.median_ns),
            format_ns(m.min_ns),
            format_ns(m.max_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.results.push(m);
    }

    /// Renders all results as one JSON document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("suite", Json::Str(self.name.clone())),
            (
                "results",
                Json::Arr(self.results.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    /// Prints the JSON report to stdout and writes it to
    /// `target/benchmarks/<suite>.json` (best-effort; the file write is
    /// skipped silently if the directory cannot be created).
    pub fn finish(self) {
        let doc = self.to_json().render_pretty();
        // File first: printing to a closed pipe (`… | head`) kills the
        // process with SIGPIPE, which must not cost the report file.
        let dir = target_dir().join("benchmarks");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{}.json", self.name)), &doc);
        }
        println!("{doc}");
    }
}

/// The build's `target/` directory. Cargo runs bench binaries with the
/// *package* directory as CWD, so a relative `target/` would scatter
/// reports across workspace members; the executable's own path
/// (`target/release/deps/...`) locates the real one.
fn target_dir() -> std::path::PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|p| p.file_name().is_some_and(|n| n == "target"))
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_else(|| std::path::PathBuf::from("target"))
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Config {
        Config {
            samples: 3,
            sample_ms: 0.05,
            warmup_ms: 0.05,
        }
    }

    #[test]
    fn bench_produces_sane_measurement() {
        let mut suite = Suite::new("selftest").with_config(tiny_config());
        suite.bench("add", || black_box(1u64) + black_box(2u64));
        let m = &suite.results[0];
        assert_eq!(m.name, "add");
        assert_eq!(m.samples, 3);
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
    }

    #[test]
    fn bench_with_setup_consumes_inputs() {
        let mut suite = Suite::new("selftest").with_config(tiny_config());
        suite.bench_with_setup("sum_vec", 4, || vec![1u64; 1000], |v| v.iter().sum::<u64>());
        let m = &suite.results[0];
        assert_eq!(m.iters_per_sample, 4);
        assert!(m.median_ns > 0.0);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut suite = Suite::new("selftest").with_config(tiny_config());
        suite.bench("noop", || ());
        let doc = suite.to_json();
        assert_eq!(doc.get("suite").unwrap().as_str().unwrap(), "selftest");
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("name").unwrap().as_str().unwrap(), "noop");
        // And it parses back.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn median_of_even_and_odd() {
        let mut suite = Suite::new("selftest").with_config(tiny_config());
        suite.record("odd", 1, vec![3.0, 1.0, 2.0]);
        assert_eq!(suite.results.last().unwrap().median_ns, 2.0);
        suite.record("even", 1, vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(suite.results.last().unwrap().median_ns, 2.5);
    }
}
