//! Bit-level serialization: the substrate under the `mknn_net` wire format.
//!
//! [`BitWriter`] packs values LSB-first into a byte buffer at arbitrary bit
//! widths; [`BitReader`] mirrors it exactly. Variable-length integers use
//! LEB128-style 7-bit groups (so a small id costs one byte, a huge tick ten),
//! and signed values ride varints through the zigzag mapping. Everything here
//! is deterministic and allocation-light: one `Vec<u8>` per writer, nothing
//! per value.

/// Maps a signed value onto an unsigned one so small magnitudes of either
/// sign encode as short varints: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Encoded size, in bits, of `v` as a LEB128-style varint: one 8-bit group
/// per started 7 bits of payload (zero still needs one group).
#[inline]
pub fn varint_bits(v: u64) -> usize {
    let payload = 64 - (v | 1).leading_zeros() as usize;
    8 * payload.div_ceil(7)
}

/// Encoded size, in bits, of `v` as a zigzag-mapped varint.
#[inline]
pub fn signed_bits(v: i64) -> usize {
    varint_bits(zigzag(v))
}

/// Packs values LSB-first into a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// The buffer written so far; the final partial byte (if any) is
    /// zero-padded in its unused high bits.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the packed bytes and the exact bit
    /// length (`bytes.len() * 8 - bit_len < 8`).
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.bit_len)
    }

    /// Appends the low `n` bits of `value` (LSB-first). `n` must be ≤ 64 and
    /// `value` must be canonical (no set bits above `n`).
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64, "bit width {n} > 64");
        debug_assert!(
            n == 64 || value >> n == 0,
            "value {value:#x} does not fit in {n} bits"
        );
        let mut v = value;
        let mut left = n;
        while left > 0 {
            let byte = self.bit_len / 8;
            if byte == self.buf.len() {
                self.buf.push(0);
            }
            let off = (self.bit_len % 8) as u32;
            let take = (8 - off).min(left);
            let mask = (1u64 << take) - 1; // take ≤ 8, never overflows
            self.buf[byte] |= ((v & mask) as u8) << off;
            v >>= take;
            self.bit_len += take as usize;
            left -= take;
        }
    }

    /// Appends one bit.
    #[inline]
    pub fn write_bool(&mut self, b: bool) {
        self.write_bits(b as u64, 1);
    }

    /// Appends `v` as a LEB128-style varint (7 payload bits + continuation
    /// bit per group), costing exactly [`varint_bits`]`(v)` bits.
    pub fn write_varint(&mut self, mut v: u64) {
        loop {
            let group = v & 0x7f;
            v >>= 7;
            let more = v != 0;
            self.write_bits(group | ((more as u64) << 7), 8);
            if !more {
                break;
            }
        }
    }

    /// Appends `v` as a zigzag-mapped varint, costing exactly
    /// [`signed_bits`]`(v)` bits.
    #[inline]
    pub fn write_signed(&mut self, v: i64) {
        self.write_varint(zigzag(v));
    }

    /// Appends `n` zero bits (modeled payload whose content the simulation
    /// does not carry, e.g. tunneled opaque bytes).
    pub fn write_zero_bits(&mut self, mut n: usize) {
        while n > 0 {
            let take = n.min(64) as u32;
            self.write_bits(0, take);
            n -= take as usize;
        }
    }
}

/// Reads values LSB-first from a byte buffer written by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `buf`, starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bits consumed so far.
    #[inline]
    pub fn bits_read(&self) -> usize {
        self.pos
    }

    /// Reads `n` bits (LSB-first). `None` once the buffer is exhausted.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64, "bit width {n} > 64");
        if self.pos + n as usize > self.buf.len() * 8 {
            return None;
        }
        let mut v = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte = self.pos / 8;
            let off = (self.pos % 8) as u32;
            let take = (8 - off).min(n - got);
            let mask = (1u64 << take) - 1;
            let bits = (self.buf[byte] as u64 >> off) & mask;
            v |= bits << got;
            got += take;
            self.pos += take as usize;
        }
        Some(v)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bool(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }

    /// Reads a varint written by [`BitWriter::write_varint`]. `None` on a
    /// truncated buffer or an over-long encoding (more than ten groups).
    pub fn read_varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        for group in 0..10 {
            let byte = self.read_bits(8)?;
            v |= (byte & 0x7f) << (7 * group);
            if byte & 0x80 == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Reads a zigzag-mapped varint written by [`BitWriter::write_signed`].
    #[inline]
    pub fn read_signed(&mut self) -> Option<i64> {
        self.read_varint().map(unzigzag)
    }

    /// Skips `n` bits of modeled payload. `None` if fewer remain.
    pub fn skip_bits(&mut self, n: usize) -> Option<()> {
        if self.pos + n > self.buf.len() * 8 {
            return None;
        }
        self.pos += n;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::forall;
    use crate::rng::Rng;

    #[test]
    fn zigzag_round_trips_and_orders_small_magnitudes_first() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert!(zigzag(3) < zigzag(-100));
    }

    #[test]
    fn varint_bits_matches_group_count() {
        assert_eq!(varint_bits(0), 8);
        assert_eq!(varint_bits(127), 8);
        assert_eq!(varint_bits(128), 16);
        assert_eq!(varint_bits((1 << 14) - 1), 16);
        assert_eq!(varint_bits(1 << 14), 24);
        assert_eq!(varint_bits(u64::MAX), 80);
    }

    #[test]
    fn bit_round_trip_fixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bool(true);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 5);
        let bits = w.bit_len();
        assert_eq!(bits, 3 + 1 + 32 + 64 + 5);
        let (bytes, len) = w.finish();
        assert_eq!(len, bits);
        assert_eq!(bytes.len(), bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bool(), Some(true));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(5), Some(0));
        assert_eq!(r.bits_read(), bits);
    }

    #[test]
    fn reader_refuses_overrun() {
        let mut w = BitWriter::new();
        w.write_bits(0x3, 2);
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0x3)); // zero-padded tail is readable
        assert_eq!(r.read_bits(1), None);
        let mut r2 = BitReader::new(&bytes);
        assert!(r2.skip_bits(9).is_none());
        assert!(r2.skip_bits(8).is_some());
    }

    #[test]
    fn varint_round_trip_boundaries() {
        let cases = [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut w = BitWriter::new();
        for &v in &cases {
            let before = w.bit_len();
            w.write_varint(v);
            assert_eq!(w.bit_len() - before, varint_bits(v));
        }
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &cases {
            assert_eq!(r.read_varint(), Some(v));
        }
    }

    #[test]
    fn random_mixed_streams_round_trip() {
        forall(200, |rng: &mut Rng| {
            let n = (rng.next_u64() % 40 + 1) as usize;
            let mut script = Vec::new();
            let mut w = BitWriter::new();
            for _ in 0..n {
                match rng.next_u64() % 4 {
                    0 => {
                        let width = (rng.next_u64() % 64 + 1) as u32;
                        let v = if width == 64 {
                            rng.next_u64()
                        } else {
                            rng.next_u64() & ((1u64 << width) - 1)
                        };
                        w.write_bits(v, width);
                        script.push((0u8, v, width as i64));
                    }
                    1 => {
                        let v = rng.next_u64() >> (rng.next_u64() % 64);
                        let before = w.bit_len();
                        w.write_varint(v);
                        assert_eq!(w.bit_len() - before, varint_bits(v));
                        script.push((1, v, 0));
                    }
                    2 => {
                        let v = (rng.next_u64() >> (rng.next_u64() % 64)) as i64;
                        let before = w.bit_len();
                        w.write_signed(v);
                        assert_eq!(w.bit_len() - before, signed_bits(v));
                        script.push((2, v as u64, 0));
                    }
                    _ => {
                        let b = rng.next_u64() & 1 == 1;
                        w.write_bool(b);
                        script.push((3, b as u64, 0));
                    }
                }
            }
            let total = w.bit_len();
            let (bytes, len) = w.finish();
            assert_eq!(len, total);
            let mut r = BitReader::new(&bytes);
            for (op, v, width) in script {
                match op {
                    0 => assert_eq!(r.read_bits(width as u32), Some(v)),
                    1 => assert_eq!(r.read_varint(), Some(v)),
                    2 => assert_eq!(r.read_signed(), Some(v as i64)),
                    _ => assert_eq!(r.read_bool(), Some(v != 0)),
                }
            }
            assert_eq!(r.bits_read(), total);
        });
    }
}
