//! Zero-dependency support kit for the moving-kNN workspace.
//!
//! The build environment is offline, and the evaluation methodology of the
//! reproduced paper demands bit-reproducible runs (fixed seed ⇒ identical
//! message counts and experiment tables). Both concerns are served by keeping
//! every piece of supporting machinery in-repo:
//!
//! * [`rng`] — a seeded SplitMix64/xoshiro256++ PRNG with `gen_range`,
//!   `gen_bool`, shuffle, and Normal sampling (replaces `rand`).
//! * [`json`] — a minimal JSON value type, parser, and writer with
//!   [`json::ToJson`]/[`json::FromJson`] traits (replaces `serde` +
//!   `serde_json` for config/metrics/workload structs).
//! * [`check`] — a tiny randomized property-testing harness with seeded case
//!   generation and reproducible failure reporting (replaces `proptest`).
//! * [`bench`] — a micro-benchmark harness with warmup, median-of-N samples,
//!   and JSON output (replaces `criterion`).
//! * [`pool`] — a scoped worker pool with deterministic in-order result
//!   collection (replaces `rayon` for the experiment suite's episode
//!   fan-out).
//! * [`bits`] — an LSB-first bit writer/reader with varint and zigzag
//!   codecs, the substrate under the `mknn_net` wire format.
//!
//! Nothing here depends on anything outside `std`.

#![deny(missing_docs)]

pub mod bench;
pub mod bits;
pub mod check;
pub mod json;
pub mod pool;
pub mod rng;

pub use json::{from_str, to_string, FromJson, Json, JsonError, ToJson};
pub use pool::Pool;
pub use rng::Rng;
