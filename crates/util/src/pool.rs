//! A scoped worker pool on `std::thread` with deterministic, in-order
//! result collection.
//!
//! The experiment suite runs thousands of mutually independent simulation
//! episodes (each owns its world, transport, and seeded RNG stream), which
//! makes the workload embarrassingly parallel. Per the workspace dependency
//! policy (DESIGN.md §6) no external thread-pool crate may be used, so this
//! module provides the one primitive the suite needs:
//! [`Pool::map_indexed`] — apply a function to every item of a `Vec`
//! concurrently, but return the results **in submission order**, so that
//! parallel output is byte-identical to a sequential run.
//!
//! Work distribution is a shared queue drained by `N` scoped worker
//! threads: results are written into a slot per submission index, so
//! neither thread count nor scheduling order can change what the caller
//! observes. A panic in any worker is propagated to the caller once all
//! workers have stopped (via [`std::thread::scope`]'s join-on-exit
//! semantics), never swallowed.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Environment variable controlling the default worker count.
///
/// The accepted values are positive integers (surrounding whitespace is
/// ignored). Anything else — unset, empty, `0`, negative, non-numeric, or
/// overflowing — falls back to the machine's available parallelism rather
/// than panicking or configuring a zero-worker pool; see [`threads_from`]
/// for the exact policy and its tests.
pub const THREADS_ENV: &str = "MKNN_THREADS";

/// A fixed-width worker pool.
///
/// The pool is a configuration object, not a set of live threads: each
/// [`Pool::map_indexed`] call spawns its workers inside a
/// [`std::thread::scope`] and joins them before returning, so borrowed
/// data can flow into the closure freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment: `MKNN_THREADS` when set and
    /// parseable, the machine's available parallelism otherwise.
    pub fn from_env() -> Pool {
        let fallback = std::thread::available_parallelism().map_or(1, |n| n.get());
        Pool::new(threads_from(
            std::env::var(THREADS_ENV).ok().as_deref(),
            fallback,
        ))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item concurrently and returns the results in
    /// submission order.
    ///
    /// `f` receives the item's submission index alongside the item. The
    /// output is independent of thread count and scheduling: result `i`
    /// is always `f(i, items[i])`. If `f` panics for any item, the panic
    /// is re-raised on the calling thread after all workers have stopped.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        let queue: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Lock scope is the pop only: the (expensive) call to
                    // `f` runs without holding the queue.
                    let job = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                    let Some((i, item)) = job else { break };
                    let r = f(i, item);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("scope joined, so every dequeued job stored its result")
            })
            .collect()
    }

    /// The chunk length that splits `n` items into roughly
    /// `4 × threads` pieces (clamped to at least 1).
    ///
    /// The oversubscription factor keeps workers busy when chunk costs are
    /// uneven without shrinking chunks so far that queue traffic dominates.
    /// The value can never affect *results* — chunked maps merge in chunk
    /// order — only load balance, so callers may pick any size they like.
    pub fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads.max(1) * 4).max(1)
    }

    /// Applies `f` to disjoint consecutive chunks of a mutable slice
    /// concurrently and returns the per-chunk results **in chunk order**.
    ///
    /// Each call receives the chunk's base offset into `items` (so per-item
    /// identity can be reconstructed as `base + j`) and the chunk itself.
    /// Because chunk boundaries depend only on `chunk` — never on thread
    /// count or scheduling — and results come back in chunk order, a caller
    /// that merges them left-to-right observes output byte-identical to a
    /// sequential pass at any `MKNN_THREADS`. This is the slice-borrowing
    /// counterpart of [`Pool::map_indexed`]'s `Vec` ownership transfer: the
    /// engine hot loop uses it to run per-device client logic over its
    /// state array without giving up ownership.
    ///
    /// `chunk` is clamped to at least 1. Panics in `f` propagate like
    /// [`Pool::map_indexed`].
    pub fn map_chunks_mut<T, R, F>(&self, items: &mut [T], chunk: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let jobs: Vec<(usize, &mut [T])> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, c)| (ci * chunk, c))
            .collect();
        self.map_indexed(jobs, |_, (base, slice)| f(base, slice))
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::from_env()
    }
}

/// Resolves a worker count from an optional `MKNN_THREADS`-style string,
/// falling back to `fallback` when the variable is unset, empty (including
/// whitespace-only), or not a positive integer (`0`, negatives,
/// non-numeric text, fractions, and values past `usize::MAX` all fall
/// back). The result is always ≥ 1 — even a zero `fallback` is clamped —
/// so no caller can end up with a zero-worker pool. Split out of
/// [`Pool::from_env`] so the policy is unit testable without touching
/// process-global environment state.
pub fn threads_from(var: Option<&str>, fallback: usize) -> usize {
    match var.map(str::trim) {
        Some(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => fallback.max(1),
        },
        _ => fallback.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Pool::new(8);
        let items: Vec<usize> = (0..200).collect();
        // Skew the per-item cost so late items often finish first.
        let out = pool.map_indexed(items, |i, x| {
            if i % 7 == 0 {
                std::thread::yield_now();
            }
            x * 3 + 1
        });
        assert_eq!(out.len(), 200);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3 + 1);
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let pool = Pool::new(4);
        let out = pool.map_indexed(vec!["a", "b", "c", "d", "e"], |i, s| format!("{i}:{s}"));
        assert_eq!(out, ["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u32> = pool.map_indexed(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_without_spawning() {
        let pool = Pool::new(16);
        assert_eq!(pool.map_indexed(vec![41], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.map_indexed((0..10).collect(), |i, _: usize| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(|| {
            pool.map_indexed((0..64).collect::<Vec<usize>>(), |_, x| {
                if x == 13 {
                    panic!("boom at 13");
                }
                x
            })
        });
        assert!(result.is_err(), "a worker panic must not be swallowed");
    }

    #[test]
    fn all_items_are_processed_exactly_once() {
        let pool = Pool::new(6);
        let hits = AtomicUsize::new(0);
        let out = pool.map_indexed((0..1000).collect::<Vec<usize>>(), |_, x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn threads_from_parses_and_falls_back() {
        assert_eq!(threads_from(Some("4"), 2), 4);
        assert_eq!(threads_from(Some(" 8 "), 2), 8);
        assert_eq!(threads_from(Some("0"), 2), 2);
        assert_eq!(threads_from(Some("-3"), 2), 2);
        assert_eq!(threads_from(Some("lots"), 2), 2);
        assert_eq!(threads_from(Some(""), 2), 2);
        assert_eq!(threads_from(None, 2), 2);
        assert_eq!(threads_from(None, 0), 1);
    }

    #[test]
    fn threads_from_rejects_every_malformed_shape_without_panicking() {
        // Whitespace-only, fractions, overflow, embedded junk, and a
        // malformed fallback of 0: none may panic, none may yield 0.
        assert_eq!(threads_from(Some("   "), 3), 3);
        assert_eq!(threads_from(Some("\t\n"), 3), 3);
        assert_eq!(threads_from(Some("2.5"), 3), 3);
        assert_eq!(threads_from(Some("99999999999999999999999999"), 3), 3);
        assert_eq!(threads_from(Some("4 workers"), 3), 3);
        assert_eq!(threads_from(Some("0x10"), 3), 3);
        assert_eq!(threads_from(Some("0"), 0), 1);
        assert_eq!(threads_from(Some("oops"), 0), 1);
        // `+8` is a valid positive integer per usize::from_str.
        assert_eq!(threads_from(Some("+8"), 3), 8);
    }

    #[test]
    fn zero_thread_env_still_builds_a_working_pool() {
        // The end-to-end shape of the MKNN_THREADS=0 bug report: resolving
        // a malformed count and mapping with it must still process work.
        let pool = Pool::new(threads_from(Some("0"), 0));
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map_indexed(vec![1, 2, 3], |_, x| x * 2), [2, 4, 6]);
    }

    #[test]
    fn chunk_size_covers_all_items_and_never_returns_zero() {
        assert_eq!(Pool::new(1).chunk_size(0), 1);
        assert_eq!(Pool::new(4).chunk_size(1), 1);
        for threads in [1, 2, 7, 16] {
            for n in [0usize, 1, 5, 100, 4096, 1_000_000] {
                let c = Pool::new(threads).chunk_size(n);
                assert!(c >= 1);
                assert!(n.div_ceil(c.max(1)) * c >= n);
            }
        }
    }

    #[test]
    fn map_chunks_mut_visits_disjoint_chunks_with_correct_offsets() {
        let pool = Pool::new(4);
        let mut items: Vec<usize> = (0..103).collect();
        let sums = pool.map_chunks_mut(&mut items, 10, |base, chunk| {
            let mut sum = 0;
            for (j, v) in chunk.iter_mut().enumerate() {
                assert_eq!(*v, base + j, "offset reconstructs item identity");
                *v += 1;
                sum += *v;
            }
            (base, sum)
        });
        assert_eq!(items, (1..=103).collect::<Vec<_>>());
        let bases: Vec<usize> = sums.iter().map(|&(b, _)| b).collect();
        assert_eq!(bases, (0..11).map(|i| i * 10).collect::<Vec<_>>());
        let total: usize = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (1..=103).sum::<usize>());
    }

    #[test]
    fn map_chunks_mut_results_are_identical_at_any_thread_count_and_chunk() {
        let reference: Vec<String> = {
            let mut items: Vec<u32> = (0..57).collect();
            Pool::new(1).map_chunks_mut(&mut items, 57, |base, c| format!("{base}:{}", c.len()))
        };
        let flat_ref: Vec<u32> = (0..57).map(|x| x * 2).collect();
        for threads in [1, 2, 8] {
            for chunk in [1, 3, 8, 57, 100] {
                let pool = Pool::new(threads);
                let mut items: Vec<u32> = (0..57).collect();
                let labels = pool.map_chunks_mut(&mut items, chunk, |base, c| {
                    for v in c.iter_mut() {
                        *v *= 2;
                    }
                    format!("{base}:{}", c.len())
                });
                assert_eq!(items, flat_ref, "threads={threads} chunk={chunk}");
                // Labels come back in chunk order; with one full-width
                // chunk they match the sequential reference exactly.
                if chunk >= 57 {
                    assert_eq!(labels, reference);
                }
                let covered: usize = labels
                    .iter()
                    .map(|l| l.split(':').nth(1).unwrap().parse::<usize>().unwrap())
                    .sum();
                assert_eq!(covered, 57);
            }
        }
    }

    #[test]
    fn map_chunks_mut_handles_empty_and_zero_chunk() {
        let pool = Pool::new(4);
        let mut empty: Vec<u8> = Vec::new();
        let out = pool.map_chunks_mut(&mut empty, 8, |base, _| base);
        assert!(out.is_empty());
        let mut items = vec![5u8, 6];
        // A zero chunk request clamps to 1 instead of panicking.
        let out = pool.map_chunks_mut(&mut items, 0, |base, c| (base, c.len()));
        assert_eq!(out, [(0, 1), (1, 1)]);
    }
}
