//! Seeded pseudo-random number generation.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through
//! **SplitMix64** so that every `u64` seed — including 0 — yields a
//! well-mixed state. The API mirrors the subset of `rand` the workspace
//! used (`seed_from_u64`, `gen_range`, `gen_bool`, `shuffle`), plus
//! Box–Muller Normal sampling, so call sites stay close to idiomatic.
//!
//! Determinism is the point: the same seed produces the same stream on
//! every platform and toolchain, which makes whole experiment tables
//! bit-reproducible.

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output.
///
/// Also used by [`crate::check`] to derive independent per-case seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from `range` (half-open or inclusive; see
    /// [`SampleRange`] for the supported element types).
    ///
    /// Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        self.next_f64() < p
    }

    /// Samples a Normal(`mean`, `std_dev`) variate via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Box–Muller transform; u1 > 0 is guaranteed by the max().
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Shuffles `xs` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator (e.g. one per parallel task)
    /// while advancing this one by a single step.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut Rng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty f64 range {:?}", self);
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range {lo}..={hi}");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Uniform sample from `[0, n)` via Lemire's widening-multiply reduction
/// (bias < n / 2⁶⁴ — irrelevant at simulation scales).
fn below(rng: &mut Rng, n: u64) -> u64 {
    debug_assert!(n > 0);
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty integer range {:?}", self);
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range {lo}..={hi}");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Rng::seed_from_u64(0);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().all(|&x| x != 0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = r.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&f));
            let g = r.gen_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&g));
            let i = r.gen_range(10u32..20);
            assert!((10..20).contains(&i));
            let j = r.gen_range(0usize..=4);
            assert!(j <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (9_000..11_000).contains(&b),
                "bucket count {b} outside 10% band"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut r = Rng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 hit count {hits}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(13);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(fa.next_u64(), a.next_u64());
    }
}
