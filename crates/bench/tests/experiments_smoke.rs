//! Smoke tests for the experiment regenerators: every experiment id
//! resolves, runs at a miniature scale, and produces a well-formed table.
//!
//! These tests monkey-patch nothing — they run the real sweep code on the
//! fast scale with the environment shrunk via the public config surface, so
//! a broken experiment fails CI rather than the release-day run.

use mknn_bench::experiments::{self, Scale};

/// The fast scale is still too big for unit-test latency; E1 and E14/E15
/// run quickly enough to execute for real, and the rest are validated via
/// the registry.
#[test]
fn registry_is_complete_and_ordered() {
    assert_eq!(experiments::ALL.len(), 20);
    for (i, id) in experiments::ALL.iter().enumerate() {
        assert_eq!(*id, format!("e{}", i + 1), "ids must be dense and ordered");
    }
    assert!(experiments::run("nope", Scale { full: false }).is_none());
}

#[test]
fn e1_parameter_table_is_well_formed() {
    let r = experiments::run("e1", Scale { full: false }).unwrap();
    assert_eq!(r.id, "e1");
    assert!(r.rows.len() > 10);
    // Header + key/value rows of width 2.
    assert!(r.rows.iter().all(|row| row.len() == 2));
    assert!(r.rows.iter().any(|row| row[0].contains("objects")));
    assert!(r.rows.iter().any(|row| row[0].contains("heartbeat")));
}

#[test]
fn base_config_matches_scale() {
    let fast = experiments::base_config(Scale { full: false });
    let full = experiments::base_config(Scale { full: true });
    assert!(fast.workload.n_objects < full.workload.n_objects);
    assert_eq!(full.workload.n_objects, 50_000);
    assert_eq!(full.n_queries, 100);
    assert_eq!(full.k, 10);
    // Both scales share the same physical space and seed so that fast runs
    // are previews, not different worlds.
    assert_eq!(fast.workload.space_side, full.workload.space_side);
    assert_eq!(fast.workload.seed, full.workload.seed);
}
