//! Experiment regenerator CLI.
//!
//! ```text
//! expt --exp e2                    # one experiment, fast scale
//! expt --exp all --full            # the whole suite at paper scale
//! expt --list                      # what exists
//! expt --seed 42                   # deterministic JSON smoke run (CI gate)
//! expt --seed 42 --method dknn-set # smoke run of one method only
//! expt --seed 42 --n 20000 --queries 100 --timing  # sized smoke + clocks
//! ```
//!
//! Each experiment prints its table and writes
//! `target/experiments/<id>.csv`. Episodes fan out over the worker pool
//! (`MKNN_THREADS` workers, default: all cores); output is identical at any
//! thread count. The `--seed` smoke mode runs one small episode per method
//! and prints the metrics as JSON; its output is byte-identical across runs
//! of the same seed (wall-clock fields are zeroed), which the verification
//! script uses as a determinism gate — including across thread counts.

use mknn_bench::experiments::{self, Scale};
use mknn_bench::report::{BenchExperiment, BenchSummary};
use mknn_net::FaultPlan;
use mknn_sim::{render_table, write_csv, DownlinkMode, Method, SimConfig, Sweep, VerifyMode};
use std::path::PathBuf;

const USAGE: &str = "usage: expt --exp <id|all> [--full] [--bench-out FILE] | --check-bench FILE | --list | --seed <n> [--method <name>] [--fault <none|chaos|crash|JSON>] [--shards <G>] [--n <objects>] [--queries <q>] [--ticks <t>] [--space <side>] [--threads <w>] [--downlink <scoped|legacy>] [--timing]";

/// Smoke-mode workload overrides (each `None` keeps the
/// [`SimConfig::small`] default, so the CI golden shape is untouched).
#[derive(Default)]
struct SmokeOverrides {
    n_objects: Option<usize>,
    n_queries: Option<usize>,
    ticks: Option<u64>,
    space_side: Option<f64>,
    /// Server shards (G). `None` keeps the single-server default; G=1 is
    /// byte-identical to it (the golden gate diffs exactly that).
    shards: Option<u32>,
    /// Pin the intra-episode client pool to this many workers (overrides
    /// `MKNN_THREADS` for the client phase only). `None` keeps the
    /// environment-resolved default; metrics are byte-identical either way.
    client_threads: Option<usize>,
    /// Downlink byte model. `None` keeps the scoped default; `legacy`
    /// reprices every server → device send at the pre-frame per-message
    /// (and per-cell, for geocasts) rate for comparison runs.
    downlink: Option<DownlinkMode>,
    /// Print per-episode wall-clock lines to stderr (stdout JSON stays
    /// clock-zeroed and byte-deterministic).
    timing: bool,
}

/// Parses the `--fault` argument: a named preset or an inline JSON
/// [`FaultPlan`] (validated on parse).
fn parse_fault(arg: &str) -> FaultPlan {
    match arg {
        "none" => FaultPlan::none(),
        "chaos" => FaultPlan::chaos(),
        "crash" => FaultPlan::crash(),
        json => mknn_util::from_str(json).unwrap_or_else(|e| {
            eprintln!("--fault wants `none`, `chaos`, `crash`, or a FaultPlan JSON object: {e}");
            std::process::exit(2);
        }),
    }
}

/// Runs a tiny verified episode of every standard method (or just the named
/// one) under `seed` and prints one JSON document. Everything
/// nondeterministic (wall-clock) is zeroed, so identical seeds must produce
/// identical bytes — with or without fault injection.
fn run_smoke(seed: u64, method: Option<&str>, fault: FaultPlan, over: &SmokeOverrides) {
    use mknn_util::json::{Json, ToJson};

    let mut cfg = SimConfig::small();
    cfg.workload.seed = seed;
    cfg.verify = VerifyMode::Record;
    cfg.fault = fault;
    if let Some(n) = over.n_objects {
        cfg.workload.n_objects = n;
    }
    if let Some(q) = over.n_queries {
        cfg.n_queries = q;
    }
    if let Some(t) = over.ticks {
        cfg.ticks = t;
    }
    if let Some(s) = over.space_side {
        cfg.workload.space_side = s;
    }
    if let Some(g) = over.shards {
        cfg.shards = g;
    }
    if let Some(t) = over.client_threads {
        cfg.client_threads = Some(t);
    }
    if let Some(d) = over.downlink {
        cfg.downlink = d;
    }
    // Malformed shapes (`--n 0`, `--space 0`, NaN sides…) used to panic
    // deep inside episode setup; the typed validator turns them into
    // printable CLI errors.
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    let mut sweep = Sweep::over([("smoke", cfg.clone())]);
    if let Some(name) = method {
        let Some(m) = Method::parse(name, cfg.dknn_params()) else {
            eprintln!("unknown method `{name}`; the standard suite is:");
            for m in Method::standard_suite(cfg.dknn_params()) {
                eprintln!("  {}", m.name());
            }
            std::process::exit(2);
        };
        sweep = sweep.methods([m]);
    }
    let episodes: Vec<Json> = sweep
        .run()
        .into_iter()
        .map(|run| {
            if over.timing {
                // Wall-clock goes to stderr only — stdout must stay
                // byte-deterministic for the golden/determinism gates.
                eprintln!(
                    "timing: method={} proto={:.6} oracle={:.6}",
                    run.metrics.method, run.metrics.proto_seconds, run.metrics.oracle_seconds
                );
            }
            run.metrics.with_clock_zeroed().to_json()
        })
        .collect();
    let doc = Json::object([
        ("seed", seed.to_json()),
        ("config", cfg.to_json()),
        ("episodes", Json::Arr(episodes)),
    ]);
    println!("{}", doc.render_pretty());
}

/// `--check-bench`: the committed `BENCH_*.json` must parse as a
/// [`BenchSummary`] and survive a render → re-parse round trip unchanged.
fn check_bench(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check-bench: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc: BenchSummary = mknn_util::from_str(&text).unwrap_or_else(|e| {
        eprintln!("--check-bench: {path} does not parse as a BenchSummary: {e}");
        std::process::exit(1);
    });
    let back: BenchSummary = mknn_util::from_str(&mknn_util::to_string(&doc)).unwrap_or_else(|e| {
        eprintln!("--check-bench: re-parse of rendered {path} failed: {e}");
        std::process::exit(1);
    });
    if back != doc {
        eprintln!("--check-bench: {path} does not round-trip through mknn_util JSON");
        std::process::exit(1);
    }
    let cells: usize = doc.experiments.iter().map(|e| e.methods.len()).sum();
    println!(
        "{path}: ok ({} experiment(s), {cells} cell(s))",
        doc.experiments.len()
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut full = false;
    let mut list = false;
    let mut smoke_seed: Option<u64> = None;
    let mut method: Option<String> = None;
    let mut fault = FaultPlan::none();
    let mut fault_given = false;
    let mut bench_out: Option<PathBuf> = None;
    let mut over = SmokeOverrides::default();
    fn numeric<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
        args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{flag} requires a number");
            std::process::exit(2);
        })
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned();
            }
            "--full" => full = true,
            "--list" => list = true,
            "--seed" | "--smoke" => {
                i += 1;
                smoke_seed = Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                }));
            }
            "--method" => {
                i += 1;
                method = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--method requires a method name (e.g. dknn-set)");
                    std::process::exit(2);
                }));
            }
            "--fault" => {
                i += 1;
                let arg = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!(
                        "--fault requires `none`, `chaos`, `crash`, or a FaultPlan JSON object"
                    );
                    std::process::exit(2);
                });
                fault = parse_fault(&arg);
                fault_given = true;
            }
            "--n" => {
                i += 1;
                over.n_objects = Some(numeric(&args, i, "--n"));
            }
            "--queries" => {
                i += 1;
                over.n_queries = Some(numeric(&args, i, "--queries"));
            }
            "--ticks" => {
                i += 1;
                over.ticks = Some(numeric(&args, i, "--ticks"));
            }
            "--space" => {
                i += 1;
                over.space_side = Some(numeric(&args, i, "--space"));
            }
            "--shards" => {
                i += 1;
                let g: u32 = numeric(&args, i, "--shards");
                if g == 0 {
                    eprintln!("--shards wants G >= 1");
                    std::process::exit(2);
                }
                over.shards = Some(g);
            }
            "--threads" => {
                i += 1;
                over.client_threads = Some(numeric(&args, i, "--threads"));
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--bench-out requires a file path");
                    std::process::exit(2);
                })));
            }
            "--check-bench" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check-bench requires a file path");
                    std::process::exit(2);
                });
                check_bench(&path);
            }
            "--downlink" => {
                i += 1;
                over.downlink = Some(match args.get(i).map(String::as_str) {
                    Some("scoped") => DownlinkMode::Scoped,
                    Some("legacy") => DownlinkMode::Legacy,
                    _ => {
                        eprintln!("--downlink wants `scoped` or `legacy`");
                        std::process::exit(2);
                    }
                });
            }
            "--timing" => over.timing = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if list {
        println!("experiments:");
        for id in experiments::ALL {
            println!("  {id}");
        }
        println!("methods:");
        for m in Method::standard_suite(SimConfig::small().dknn_params()) {
            println!("  {}", m.name());
        }
        println!("fault presets (smoke mode): none, chaos, crash, or a FaultPlan JSON object");
        return;
    }
    if let Some(seed) = smoke_seed {
        if bench_out.is_some() {
            eprintln!("--bench-out only applies to the --exp mode");
            std::process::exit(2);
        }
        run_smoke(seed, method.as_deref(), fault, &over);
        return;
    }
    if method.is_some() {
        eprintln!("--method only applies to the --seed smoke mode");
        std::process::exit(2);
    }
    if fault_given {
        eprintln!("--fault only applies to the --seed smoke mode (e16 sweeps faults itself)");
        std::process::exit(2);
    }
    if over.timing
        || over.n_objects.is_some()
        || over.n_queries.is_some()
        || over.ticks.is_some()
        || over.space_side.is_some()
        || over.shards.is_some()
        || over.client_threads.is_some()
    {
        eprintln!(
            "--n/--queries/--ticks/--space/--shards/--threads/--timing only apply to the --seed smoke mode"
        );
        std::process::exit(2);
    }
    let Some(exp) = exp else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let scale = Scale { full };
    let ids: Vec<String> = if exp == "all" {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else if experiments::ALL.contains(&exp.as_str()) {
        vec![exp]
    } else {
        eprintln!("unknown experiment `{exp}`; valid ids:");
        for id in experiments::ALL {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    };
    let out_dir = PathBuf::from("target/experiments");
    let mut bench_exps: Vec<BenchExperiment> = Vec::new();
    for id in &ids {
        let started = std::time::Instant::now();
        let result = experiments::run(id, scale).expect("id validated above");
        println!("\n=== {} ===", result.title);
        print!("{}", render_table(&result.rows));
        let csv = out_dir.join(format!("{id}.csv"));
        if let Err(e) = write_csv(&csv, &result.rows) {
            eprintln!("warning: could not write {}: {e}", csv.display());
        } else {
            println!(
                "[written {} in {:.1}s elapsed / {:.1}s episode time]",
                csv.display(),
                started.elapsed().as_secs_f64(),
                result.episode_seconds
            );
        }
        if bench_out.is_some() {
            bench_exps.push(BenchExperiment {
                id: result.id.to_string(),
                title: result.title.to_string(),
                episode_seconds: result.episode_seconds,
                methods: result.bench,
            });
        }
    }
    if let Some(path) = bench_out {
        use mknn_util::json::ToJson;
        let summary = BenchSummary {
            name: ids.join("+"),
            full,
            experiments: bench_exps,
        };
        let doc = format!("{}\n", summary.to_json().render_pretty());
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("[bench summary written to {}]", path.display());
    }
}
