//! Experiment regenerator CLI.
//!
//! ```text
//! expt --exp e2            # one experiment, fast scale
//! expt --exp all --full    # the whole suite at paper scale
//! expt --list              # what exists
//! ```
//!
//! Each experiment prints its table and writes
//! `target/experiments/<id>.csv`.

use mknn_bench::experiments::{self, Scale};
use mknn_sim::{render_table, write_csv};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut full = false;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned();
            }
            "--full" => full = true,
            "--list" => list = true,
            "--help" | "-h" => {
                println!("usage: expt --exp <id|all> [--full] | --list");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if list {
        for id in experiments::ALL {
            println!("{id}");
        }
        return;
    }
    let Some(exp) = exp else {
        eprintln!("usage: expt --exp <id|all> [--full] | --list");
        std::process::exit(2);
    };
    let scale = Scale { full };
    let ids: Vec<String> = if exp == "all" {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else if experiments::ALL.contains(&exp.as_str()) {
        vec![exp]
    } else {
        eprintln!("unknown experiment {exp}; try --list");
        std::process::exit(2);
    };
    let out_dir = PathBuf::from("target/experiments");
    for id in &ids {
        let started = std::time::Instant::now();
        let result = experiments::run(id, scale).expect("id validated above");
        println!("\n=== {} ===", result.title);
        print!("{}", render_table(&result.rows));
        let csv = out_dir.join(format!("{id}.csv"));
        if let Err(e) = write_csv(&csv, &result.rows) {
            eprintln!("warning: could not write {}: {e}", csv.display());
        } else {
            println!("[written {} in {:.1}s]", csv.display(), started.elapsed().as_secs_f64());
        }
    }
}
