//! The reconstructed evaluation suite: one regenerator per figure/table.
//!
//! Every experiment prints a paper-style series table (one row per method ×
//! x-value) and writes the same rows to `target/experiments/<id>.csv`. The
//! expected *shapes* (who wins, how curves bend) are documented per
//! experiment in DESIGN.md §4 and recorded against measurements in
//! EXPERIMENTS.md.

use crate::report::{bench_methods, BenchMethod};
use mknn_mobility::{Motion, Placement, SpeedDist, WorkloadSpec};
use mknn_net::FaultPlan;
use mknn_sim::{DownlinkMode, Method, MetricsSummary, SimConfig, Simulation, Sweep, VerifyMode};

/// Experiment scale: `full` reproduces the paper-scale populations;
/// fast mode (default) shrinks them ~6× for quick regeneration.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Run at full (paper) scale.
    pub full: bool,
}

impl Scale {
    fn base_n(&self) -> usize {
        if self.full {
            50_000
        } else {
            8_000
        }
    }

    fn ticks(&self) -> u64 {
        if self.full {
            200
        } else {
            100
        }
    }

    fn queries(&self) -> usize {
        if self.full {
            100
        } else {
            30
        }
    }

    fn n_sweep(&self) -> Vec<usize> {
        if self.full {
            vec![10_000, 25_000, 50_000, 75_000, 100_000]
        } else {
            vec![2_000, 4_000, 8_000, 16_000]
        }
    }

    fn q_sweep(&self) -> Vec<usize> {
        if self.full {
            vec![1, 10, 50, 100, 250, 500]
        } else {
            vec![1, 10, 30, 100]
        }
    }
}

/// The base configuration every experiment perturbs (Table E1).
pub fn base_config(scale: Scale) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: scale.base_n(),
            space_side: 10_000.0,
            placement: Placement::Uniform,
            speeds: SpeedDist::Uniform {
                min: 5.0,
                max: 20.0,
            },
            motion: Motion::RandomWaypoint,
            move_prob: 1.0,
            seed: 42,
            speed_overrides: Vec::new(),
        },
        n_queries: scale.queries(),
        k: 10,
        ticks: scale.ticks(),
        geo_cells: 64,
        verify: VerifyMode::Off,
        fault: FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

/// One regenerated figure/table.
#[derive(Debug)]
pub struct ExpResult {
    /// Experiment id ("e2", …).
    pub id: &'static str,
    /// Human title, matching DESIGN.md §4.
    pub title: &'static str,
    /// Rows, first row = header.
    pub rows: Vec<Vec<String>>,
    /// Summed per-episode wall time, measured inside each worker
    /// ([`mknn_sim::EpisodeRun::wall_seconds`]). Under parallel execution
    /// this exceeds the experiment's elapsed wall time by roughly the
    /// achieved speedup.
    pub episode_seconds: f64,
    /// Machine-readable per-`(label, method)` aggregates for `--bench-out`
    /// (empty for pure parameter tables like e1).
    pub bench: Vec<crate::report::BenchMethod>,
}

fn fmt(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

const SERIES_HEADER: [&str; 10] = [
    "x",
    "method",
    "msgs/tick",
    "up/tick",
    "down/tick",
    "bytes/tick",
    "srv-ops/tick",
    "cli-ops/obj/tick",
    "us/tick",
    "exact",
];

fn series_row(x: &str, m: &mknn_sim::EpisodeMetrics) -> Vec<String> {
    vec![
        x.to_string(),
        m.method.clone(),
        fmt(m.msgs_per_tick()),
        fmt(m.uplink_per_tick()),
        fmt(m.downlink_per_tick()),
        fmt(m.bytes_per_tick()),
        fmt(m.server_ops_per_tick()),
        fmt(m.client_ops_per_object_tick()),
        fmt(m.proto_us_per_tick()),
        fmt(m.exactness()),
    ]
}

/// Runs a sweep: for each `(label, config)` runs the whole method suite in
/// parallel on the worker pool, collecting rows in plan order. Returns the
/// rows plus the summed per-episode wall time.
fn sweep(configs: Vec<(String, SimConfig)>) -> (Vec<Vec<String>>, f64, Vec<BenchMethod>) {
    let mut rows = vec![SERIES_HEADER.iter().map(|s| s.to_string()).collect()];
    let mut busy = 0.0;
    let runs = Sweep::over(configs).run();
    for run in &runs {
        rows.push(series_row(&run.label, &run.metrics));
        busy += run.wall_seconds;
    }
    (rows, busy, bench_methods(&runs))
}

/// E1 — the simulation-parameter table.
pub fn e1(scale: Scale) -> ExpResult {
    let cfg = base_config(scale);
    let p = cfg.dknn_params();
    let rows = vec![
        vec!["parameter".into(), "value".into()],
        vec![
            "space".into(),
            format!("{0} m × {0} m", cfg.workload.space_side),
        ],
        vec!["objects N".into(), cfg.workload.n_objects.to_string()],
        vec!["queries Q".into(), cfg.n_queries.to_string()],
        vec!["k".into(), cfg.k.to_string()],
        vec!["object speed".into(), "uniform [5, 20] m/tick".into()],
        vec!["motion model".into(), "random waypoint".into()],
        vec![
            "move probability".into(),
            cfg.workload.move_prob.to_string(),
        ],
        vec!["ticks".into(), cfg.ticks.to_string()],
        vec![
            "geocast paging grid".into(),
            format!("{0} × {0}", cfg.geo_cells),
        ],
        vec!["threshold placement α".into(), p.alpha.to_string()],
        vec!["query drift δ_q".into(), format!("{} m", p.query_drift)],
        vec!["heartbeat H".into(), format!("{} ticks", p.heartbeat)],
        vec!["geocast margin".into(), format!("{} m", p.margin())],
        vec!["seed".into(), cfg.workload.seed.to_string()],
    ];
    ExpResult {
        id: "e1",
        title: "Table E1: simulation parameters",
        rows,
        episode_seconds: 0.0,
        bench: Vec::new(),
    }
}

/// E2 — communication cost vs. number of objects N.
pub fn e2(scale: Scale) -> ExpResult {
    let configs = scale
        .n_sweep()
        .into_iter()
        .map(|n| {
            let mut cfg = base_config(scale);
            cfg.workload.n_objects = n;
            (n.to_string(), cfg)
        })
        .collect();
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e2",
        title: "Fig E2: communication vs. N",
        rows,
        episode_seconds,
        bench,
    }
}

/// E3 — communication cost vs. k.
pub fn e3(scale: Scale) -> ExpResult {
    let configs = [1usize, 5, 10, 20, 50]
        .into_iter()
        .map(|k| {
            let mut cfg = base_config(scale);
            cfg.k = k;
            (k.to_string(), cfg)
        })
        .collect();
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e3",
        title: "Fig E3: communication vs. k",
        rows,
        episode_seconds,
        bench,
    }
}

/// E4 — communication cost vs. object speed.
pub fn e4(scale: Scale) -> ExpResult {
    let configs = [5.0, 10.0, 20.0, 40.0, 80.0]
        .into_iter()
        .map(|v| {
            let mut cfg = base_config(scale);
            cfg.workload.speeds = SpeedDist::Uniform {
                min: v * 0.25,
                max: v,
            };
            (format!("{v}"), cfg)
        })
        .collect();
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e4",
        title: "Fig E4: communication vs. object speed",
        rows,
        episode_seconds,
        bench,
    }
}

/// E5 — communication cost vs. query (focal) speed, object speed fixed.
pub fn e5(scale: Scale) -> ExpResult {
    let configs = [0.0, 5.0, 10.0, 20.0, 40.0, 80.0]
        .into_iter()
        .map(|v| {
            let mut cfg = base_config(scale);
            cfg.workload.speeds = SpeedDist::Fixed(10.0);
            cfg.workload.speed_overrides = cfg.focal_ids().iter().map(|&id| (id, v)).collect();
            (format!("{v}"), cfg)
        })
        .collect();
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e5",
        title: "Fig E5: communication vs. query speed",
        rows,
        episode_seconds,
        bench,
    }
}

/// E6 — server load vs. N (ops proxy and wall time).
pub fn e6(scale: Scale) -> ExpResult {
    let mut rows = vec![vec![
        "N".into(),
        "method".into(),
        "srv-ops/tick".into(),
        "us/tick".into(),
        "msgs/tick".into(),
    ]];
    let configs = scale.n_sweep().into_iter().map(|n| {
        let mut cfg = base_config(scale);
        cfg.workload.n_objects = n;
        (n.to_string(), cfg)
    });
    let mut busy = 0.0;
    let runs = Sweep::over(configs).run();
    for run in &runs {
        let m = &run.metrics;
        rows.push(vec![
            run.label.clone(),
            m.method.clone(),
            fmt(m.server_ops_per_tick()),
            fmt(m.proto_us_per_tick()),
            fmt(m.msgs_per_tick()),
        ]);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e6",
        title: "Fig E6: server load vs. N",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E7 — slack ablation: query-drift threshold δ_q and heartbeat H.
pub fn e7(scale: Scale) -> ExpResult {
    let mut rows = vec![vec![
        "delta_q/v".into(),
        "H".into(),
        "method".into(),
        "msgs/tick".into(),
        "up/tick".into(),
        "down/tick".into(),
        "recall".into(),
        "dist-err".into(),
    ]];
    let mut cfg = base_config(scale);
    // Accuracy metrics need the oracle; shrink so Record stays affordable.
    cfg.workload.n_objects = cfg.workload.n_objects.min(4_000);
    cfg.n_queries = cfg.n_queries.min(20);
    cfg.verify = VerifyMode::Record;
    let v = cfg.workload.speeds.max_speed();
    let mut grid = Vec::new();
    for drift_mult in [0.5, 1.0, 2.0, 4.0, 8.0] {
        for heartbeat in [5u64, 10, 20] {
            let mut p = cfg.dknn_params();
            p.query_drift = drift_mult * v;
            p.heartbeat = heartbeat;
            for method in [Method::DknnSet(p), Method::DknnOrder(p)] {
                grid.push((format!("{drift_mult}|{heartbeat}"), cfg.clone(), method));
            }
        }
    }
    let mut busy = 0.0;
    let runs = Sweep::grid(grid).run();
    for run in &runs {
        let (drift_mult, heartbeat) = run
            .label
            .split_once('|')
            .expect("e7 labels are written as drift|heartbeat above");
        let m = &run.metrics;
        rows.push(vec![
            drift_mult.to_string(),
            heartbeat.to_string(),
            m.method.clone(),
            fmt(m.msgs_per_tick()),
            fmt(m.uplink_per_tick()),
            fmt(m.downlink_per_tick()),
            fmt(m.recall()),
            fmt(m.dist_error()),
        ]);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e7",
        title: "Fig E7: slack ablation (δ_q, H)",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E8 — scalability in the number of concurrent queries.
pub fn e8(scale: Scale) -> ExpResult {
    let configs = scale
        .q_sweep()
        .into_iter()
        .map(|q| {
            let mut cfg = base_config(scale);
            cfg.n_queries = q;
            (q.to_string(), cfg)
        })
        .collect();
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e8",
        title: "Fig E8: scalability vs. #queries",
        rows,
        episode_seconds,
        bench,
    }
}

/// E9 — client-side load per object per tick (safe-period-reduced region
/// evaluations for the distributed methods; one report decision per tick
/// for centralized).
pub fn e9(scale: Scale) -> ExpResult {
    let mut rows = vec![vec!["N".into(), "method".into(), "cli-ops/obj/tick".into()]];
    let configs = scale.n_sweep().into_iter().map(|n| {
        let mut cfg = base_config(scale);
        cfg.workload.n_objects = n;
        (n.to_string(), cfg)
    });
    let runs = Sweep::over(configs)
        .methods_for(|cfg| {
            vec![
                Method::DknnSet(cfg.dknn_params()),
                Method::DknnOrder(cfg.dknn_params()),
                Method::Centralized { res: 64 },
            ]
        })
        .run();
    let mut busy = 0.0;
    for run in &runs {
        rows.push(vec![
            run.label.clone(),
            run.metrics.method.clone(),
            fmt(run.metrics.client_ops_per_object_tick()),
        ]);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e9",
        title: "Fig E9: client load",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E10 — message-type breakdown at the default configuration.
pub fn e10(scale: Scale) -> ExpResult {
    use mknn_net::MsgKind;
    let cfg = base_config(scale);
    let mut rows = vec![{
        let mut h = vec!["method".to_string(), "total".into()];
        h.extend(MsgKind::ALL.iter().map(|k| k.label().to_string()));
        h
    }];
    let mut busy = 0.0;
    let runs = Sweep::over([("default", cfg)]).run();
    for run in &runs {
        let m = &run.metrics;
        let mut row = vec![m.method.clone(), m.net.total_msgs().to_string()];
        for kind in MsgKind::ALL {
            row.push(m.net.by_kind.get(&kind).copied().unwrap_or(0).to_string());
        }
        rows.push(row);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e10",
        title: "Table E10: message breakdown (whole episode)",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E11 — exactness, recall against true positions, and distance error.
pub fn e11(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    cfg.workload.n_objects = cfg.workload.n_objects.min(4_000);
    cfg.n_queries = cfg.n_queries.min(20);
    cfg.verify = VerifyMode::Record;
    let mut rows = vec![vec![
        "method".into(),
        "exact(eff)".into(),
        "recall(true)".into(),
        "dist-err(true)".into(),
        "msgs/tick".into(),
    ]];
    let runs = Sweep::over([("quality", cfg)])
        .methods_for(|cfg| {
            let mut methods = Method::standard_suite(cfg.dknn_params());
            methods.push(Method::Periodic {
                period: 30,
                res: 64,
            });
            methods
        })
        .run();
    let mut busy = 0.0;
    for run in &runs {
        let m = &run.metrics;
        let label = if let Method::Periodic { period, .. } = run.method {
            format!("{} (P={period})", m.method)
        } else {
            m.method.clone()
        };
        rows.push(vec![
            label,
            fmt(m.exactness()),
            fmt(m.recall()),
            fmt(m.dist_error()),
            fmt(m.msgs_per_tick()),
        ]);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e11",
        title: "Table E11: answer quality",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E12 — skewed (Gaussian hotspot) vs. uniform object distributions.
pub fn e12(scale: Scale) -> ExpResult {
    let mut configs = vec![("uniform".to_string(), base_config(scale))];
    for sigma in [1000.0, 500.0, 250.0, 100.0] {
        let mut cfg = base_config(scale);
        cfg.workload.placement = Placement::Gaussian {
            clusters: 10,
            sigma,
        };
        configs.push((format!("gauss-{sigma}"), cfg));
    }
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e12",
        title: "Fig E12: skew sensitivity",
        rows,
        episode_seconds,
        bench,
    }
}

/// E13 — road-network workload.
pub fn e13(scale: Scale) -> ExpResult {
    let configs = scale
        .n_sweep()
        .into_iter()
        .map(|n| {
            let mut cfg = base_config(scale);
            cfg.workload.n_objects = n;
            cfg.workload.motion = Motion::RoadNetwork {
                nx: 20,
                ny: 20,
                drop_prob: 0.15,
            };
            (n.to_string(), cfg)
        })
        .collect();
    let (rows, episode_seconds, bench) = sweep(configs);
    ExpResult {
        id: "e13",
        title: "Fig E13: road-network workload",
        rows,
        episode_seconds,
        bench,
    }
}

/// E14 — buffer-size ablation for the buffered-candidate variant.
pub fn e14(scale: Scale) -> ExpResult {
    let cfg = base_config(scale);
    let p = cfg.dknn_params();
    let mut rows = vec![vec![
        "buffer".into(),
        "method".into(),
        "msgs/tick".into(),
        "up/tick".into(),
        "unicast/tick".into(),
        "geocast/tick".into(),
    ]];
    let mut methods: Vec<(String, Method)> = vec![("order(b=0)".into(), Method::DknnOrder(p))];
    for b in [2usize, 4, 8, 16] {
        methods.push((
            format!("{b}"),
            Method::DknnBuffer {
                params: p,
                buffer: b,
            },
        ));
    }
    let grid = methods
        .into_iter()
        .map(|(label, method)| (label, cfg.clone(), method));
    let mut busy = 0.0;
    let runs = Sweep::grid(grid).run();
    for run in &runs {
        let m = &run.metrics;
        rows.push(vec![
            run.label.clone(),
            m.method.clone(),
            fmt(m.msgs_per_tick()),
            fmt(m.uplink_per_tick()),
            fmt(m.net.downlink_unicast_msgs as f64 / m.ticks.max(1) as f64),
            fmt(m.net.downlink_geocast_msgs as f64 / m.ticks.max(1) as f64),
        ]);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e14",
        title: "Fig E14: candidate-buffer ablation",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E15 — headline table with dispersion: the default configuration
/// repeated over five seeds, reported as mean ± sample standard deviation.
pub fn e15(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    // Multi-seed repetition at a quarter of the base population keeps the
    // full-scale suite affordable while the dispersion estimate is what
    // this table is about.
    cfg.workload.n_objects = (cfg.workload.n_objects / 4).max(2_000);
    let seeds = 5;
    let mut rows = vec![vec![
        "method".into(),
        "msgs/tick".into(),
        "up/tick".into(),
        "bytes/tick".into(),
        "srv-ops/tick".into(),
        "cv(msgs)".into(),
    ]];
    // One parallel sweep over the whole method × seed grid; plan order is
    // methods-major, so consecutive chunks of `seeds` runs are one method's
    // repetitions.
    let runs = Sweep::over([("headline", cfg)]).seeds(seeds).run();
    let busy: f64 = runs.iter().map(|r| r.wall_seconds).sum();
    for method_runs in runs.chunks(seeds as usize) {
        let metrics: Vec<_> = method_runs.iter().map(|r| r.metrics.clone()).collect();
        let s = MetricsSummary::of(&metrics);
        rows.push(vec![
            s.method.clone(),
            s.msgs_per_tick.display(),
            s.uplink_per_tick.display(),
            s.bytes_per_tick.display(),
            s.server_ops_per_tick.display(),
            fmt(s.msgs_per_tick.cv()),
        ]);
    }
    ExpResult {
        id: "e15",
        title: "Table E15: headline with dispersion (5 seeds)",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E16 — resilience under transport faults: a loss/churn sweep over the
/// whole method suite at two seeds. Reports the recovery traffic the
/// hardened protocols spend (retransmissions) and what answer quality it
/// buys back (recall, exactness, staleness) as the link degrades.
pub fn e16(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    // Quality metrics need the oracle every tick; clamp like e7/e11.
    cfg.workload.n_objects = cfg.workload.n_objects.min(4_000);
    cfg.n_queries = cfg.n_queries.min(20);
    cfg.verify = VerifyMode::Record;
    let seeds = 2;
    let plan = |b: mknn_net::FaultPlanBuilder| b.build().expect("e16 fault knobs are in range");
    let faults = [
        ("none", FaultPlan::none()),
        ("loss5", plan(FaultPlan::builder().loss(0.05))),
        ("loss10", plan(FaultPlan::builder().loss(0.10))),
        ("loss20", plan(FaultPlan::builder().loss(0.20))),
        (
            "loss20+churn",
            plan(FaultPlan::builder().loss(0.20).churn(0.002, 2, 6)),
        ),
    ];
    let configs: Vec<(String, SimConfig)> = faults
        .into_iter()
        .map(|(label, fault)| {
            let mut c = cfg.clone();
            c.fault = fault;
            (label.to_string(), c)
        })
        .collect();
    let mut rows = vec![vec![
        "fault".into(),
        "method".into(),
        "msgs/tick".into(),
        "retrans/tick".into(),
        "dropped/tick".into(),
        "recall".into(),
        "exact".into(),
        "stale".into(),
        "max-stale".into(),
    ]];
    let runs = Sweep::over(configs).seeds(seeds).run();
    let busy: f64 = runs.iter().map(|r| r.wall_seconds).sum();
    // Plan order is points-major, then methods, then seeds: consecutive
    // chunks of `seeds` runs are one (fault, method) cell's repetitions.
    for group in runs.chunks(seeds as usize) {
        let n = group.len() as f64;
        let mean = |f: fn(&mknn_sim::EpisodeMetrics) -> f64| {
            group.iter().map(|r| f(&r.metrics)).sum::<f64>() / n
        };
        let max_stale = group
            .iter()
            .map(|r| r.metrics.max_staleness)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            group[0].label.clone(),
            group[0].metrics.method.clone(),
            fmt(mean(|m| m.msgs_per_tick())),
            fmt(mean(|m| m.ops.retransmits as f64 / m.ticks.max(1) as f64)),
            fmt(mean(|m| m.net.dropped_msgs as f64 / m.ticks.max(1) as f64)),
            fmt(mean(|m| m.recall())),
            fmt(mean(|m| m.exactness())),
            fmt(mean(|m| m.staleness())),
            max_stale.to_string(),
        ]);
    }
    ExpResult {
        id: "e16",
        title: "Table E16: resilience under transport faults (2 seeds)",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E17 — shard scaling: the whole method suite with the server tier split
/// into G grid-partitioned shards. Device traffic and answers are identical
/// at every G (the overlay is pure coordination); what varies — and what
/// this figure reports — is the backbone overhead (fan-out, merge, handoff,
/// forward legs), how evenly the per-shard load spreads (p99 vs. max), and
/// the measured server-phase parallelism: per-shard task seconds summed
/// over the tier vs. the wall time of the dispatch window (`srv-speedup` =
/// their ratio; > 1 means shard tasks genuinely overlapped).
pub fn e17(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    if scale.full {
        // The north-star population: one million moving objects.
        cfg.workload.n_objects = 1_000_000;
        cfg.ticks = 100;
    } else {
        cfg.workload.n_objects = 10_000;
        cfg.ticks = 60;
    }
    cfg.verify = VerifyMode::Off;
    let configs: Vec<(String, SimConfig)> = [1u32, 2, 4, 8, 16]
        .into_iter()
        .map(|g| {
            let mut c = cfg.clone();
            c.shards = g;
            (format!("G={g}"), c)
        })
        .collect();
    let mut rows = vec![vec![
        "G".into(),
        "method".into(),
        "msgs/tick".into(),
        "shard-msgs/tick".into(),
        "handoffs/tick".into(),
        "fanout/tick".into(),
        "p99-load".into(),
        "max-load".into(),
        "server-s".into(),
        "shard-s".into(),
        "srv-speedup".into(),
    ]];
    let mut busy = 0.0;
    // At paper scale the per-shard and server-phase clocks are the
    // headline, so episodes run one at a time (like E18): each measured
    // episode owns the machine and the `MKNN_THREADS`-wide shard pool is
    // the only parallelism in flight. Fast scale keeps the concurrent
    // sweep — there the timing columns are recorded, not gated.
    let sweep = Sweep::over(configs);
    let runs = if scale.full {
        sweep.threads(1).run()
    } else {
        sweep.run()
    };
    for run in &runs {
        let m = &run.metrics;
        let ticks = m.ticks.max(1) as f64;
        let shard_sum: f64 = m.shard_seconds.iter().sum();
        rows.push(vec![
            run.label.clone(),
            m.method.clone(),
            fmt(m.msgs_per_tick()),
            fmt(m.net.shard.total_msgs() as f64 / ticks),
            fmt(m.net.shard.handoff_msgs as f64 / ticks),
            fmt(m.net.shard.fanout_msgs as f64 / ticks),
            fmt(m.shard_load_p99()),
            fmt(m.shard_load_max() as f64),
            fmt(m.server_seconds),
            fmt(shard_sum),
            fmt(shard_sum / m.server_seconds.max(1e-9)),
        ]);
        busy += run.wall_seconds;
    }
    ExpResult {
        id: "e17",
        title: "Fig E17: shard scaling (G ∈ {1,2,4,8,16})",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E18 — intra-episode parallelism: the tick-loop benchmark behind
/// `BENCH_tick.json` (DESIGN.md §5.2). One big oracle-off episode per
/// client-pool width T, timing the loop itself; the paper protocol
/// (client band checks are the hot loop being chunked) next to the
/// client-light centralized baseline. Episodes run strictly one at a time
/// (sweep pool pinned to 1) so each measured episode owns every core, and
/// the clock-zeroed metrics are asserted identical across every T before
/// any number is reported — wall time is the only thing allowed to vary.
pub fn e18(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    if scale.full {
        // The north-star population: one million moving objects.
        cfg.workload.n_objects = 1_000_000;
        cfg.ticks = 100;
    } else {
        cfg.workload.n_objects = 20_000;
        cfg.ticks = 60;
    }
    cfg.verify = VerifyMode::Off;
    let widths = [1usize, 2, 4, 8];
    let configs: Vec<(String, SimConfig)> = widths
        .into_iter()
        .map(|t| {
            let mut c = cfg.clone();
            c.client_threads = Some(t);
            (format!("T={t}"), c)
        })
        .collect();
    let params = cfg.dknn_params();
    let methods = [Method::DknnSet(params), Method::Centralized { res: 64 }];
    let runs = Sweep::over(configs)
        .methods(methods.clone())
        .threads(1)
        .run();
    // Pool width must never leak into results. Plan order is points-major
    // then methods, so chunks of `methods.len()` are one width's runs.
    let per_t: Vec<&[mknn_sim::EpisodeRun]> = runs.chunks(methods.len()).collect();
    for group in &per_t[1..] {
        for (run, base) in group.iter().zip(per_t[0]) {
            assert_eq!(
                run.metrics.clone().with_clock_zeroed(),
                base.metrics.clone().with_clock_zeroed(),
                "client-pool width changed the metrics: {} vs {} ({})",
                run.label,
                base.label,
                run.metrics.method,
            );
        }
    }
    let mut rows = vec![vec![
        "T".into(),
        "method".into(),
        "wall s".into(),
        "ms/tick".into(),
        "speedup".into(),
        "msgs/tick".into(),
        "client-s".into(),
        "server-s".into(),
    ]];
    let mut busy = 0.0;
    for (gi, group) in per_t.iter().enumerate() {
        for (mi, run) in group.iter().enumerate() {
            let ticks = run.metrics.ticks.max(1) as f64;
            let base_wall = per_t[0][mi].wall_seconds;
            rows.push(vec![
                run.label.clone(),
                run.metrics.method.clone(),
                fmt(run.wall_seconds),
                fmt(run.wall_seconds * 1000.0 / ticks),
                if gi == 0 {
                    "1.00".into()
                } else {
                    fmt(base_wall / run.wall_seconds.max(1e-9))
                },
                fmt(run.metrics.msgs_per_tick()),
                fmt(run.metrics.client_seconds),
                fmt(run.metrics.server_seconds),
            ]);
            busy += run.wall_seconds;
        }
    }
    ExpResult {
        id: "e18",
        title: "Fig E18: intra-episode client-pool scaling (T ∈ {1,2,4,8})",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E19 — downlink accounting models: the whole method suite under a
/// chaos-churn fault plan, charged once with the legacy full-update model
/// (every unicast/geocast carries a complete message, geocasts once per
/// overlapped cell) and once with the interest-scoped, delta-encoded frame
/// model (DESIGN.md §10). Answers and logical message tallies are asserted
/// identical in-process; what the figure reports is the byte bill — B/tick
/// per model, the reduction factor, frames per tick, the frame-header
/// share, and how often churn forced a full-snapshot fallback.
pub fn e19(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    cfg.workload.n_objects = cfg.workload.n_objects.min(4_000);
    cfg.n_queries = cfg.n_queries.min(20);
    cfg.verify = VerifyMode::Off;
    cfg.fault = mknn_net::FaultPlan::builder()
        .loss(0.10)
        .duplication(0.02)
        .delay(0.2, 2)
        .churn(0.005, 2, 6)
        .build()
        .expect("e19 fault knobs are in range");
    let configs: Vec<(String, SimConfig)> = [
        ("legacy", DownlinkMode::Legacy),
        ("scoped", DownlinkMode::Scoped),
    ]
    .into_iter()
    .map(|(label, mode)| {
        let mut c = cfg.clone();
        c.downlink = mode;
        (label.to_string(), c)
    })
    .collect();
    let runs = Sweep::over(configs).run();
    let busy: f64 = runs.iter().map(|r| r.wall_seconds).sum();
    // Plan order is points-major then methods: the first half is every
    // method under the legacy model, the second half the same methods
    // scoped.
    let n_methods = runs.len() / 2;
    let (legacy, scoped) = runs.split_at(n_methods);
    let mut rows = vec![vec![
        "method".into(),
        "legacy B/tick".into(),
        "scoped B/tick".into(),
        "reduction".into(),
        "frames/tick".into(),
        "hdr %".into(),
        "fallbacks".into(),
    ]];
    let mut best_distributed = 0.0f64;
    for (l, s) in legacy.iter().zip(scoped) {
        // The scope/delta/frame pass is accounting-only: everything except
        // the byte ledger must agree between the models.
        let strip = |m: &mknn_sim::EpisodeMetrics| {
            let mut m = m.clone().with_clock_zeroed();
            m.net.downlink_bytes = 0;
            m.net.frames = 0;
            m.net.frame_header_bytes = 0;
            m.net.delta_full_fallbacks = 0;
            m.net.ack_bytes = 0;
            m
        };
        assert_eq!(
            strip(&l.metrics),
            strip(&s.metrics),
            "{}: downlink models diverge beyond the byte ledger",
            l.metrics.method
        );
        let ticks = l.metrics.ticks.max(1) as f64;
        let lb = l.metrics.net.downlink_bytes as f64;
        let sb = s.metrics.net.downlink_bytes as f64;
        let reduction = lb / sb.max(1.0);
        if l.metrics.method.starts_with("dknn") {
            best_distributed = best_distributed.max(reduction);
        }
        let hdr = 100.0 * s.metrics.net.frame_header_bytes as f64 / sb.max(1.0);
        rows.push(vec![
            l.metrics.method.clone(),
            fmt(lb / ticks),
            fmt(sb / ticks),
            format!("{reduction:.2}x"),
            fmt(s.metrics.net.frames as f64 / ticks),
            fmt(hdr),
            s.metrics.net.delta_full_fallbacks.to_string(),
        ]);
    }
    assert!(
        best_distributed >= 2.0,
        "scoped downlink must cut at least one distributed method's bytes \
         by >= 2x under chaos churn (best: {best_distributed:.2}x)"
    );
    ExpResult {
        id: "e19",
        title: "Table E19: downlink byte models under chaos churn (legacy vs scoped)",
        rows,
        episode_seconds: busy,
        bench: bench_methods(&runs),
    }
}

/// E20 — shard crash/failover: deterministic crash windows over a G = 4
/// sharded tier, sweeping crash count × outage duration across the whole
/// method suite. The only experiment that steps its episodes by hand:
/// after every rebirth it watches [`mknn_sim::Simulation::inexact_queries`]
/// tick by tick and reports the recovery latency — ticks from rebirth
/// until the maintained answers are oracle-exact again — next to the
/// counted `Recover` sweep traffic, retransmit amplification, and answer
/// staleness. The reconvergence bound proved property-style in
/// `tests/shard_recovery.rs` (heartbeat + lease TTL + 2 ticks) is asserted
/// in-process for every method that claims exactness; `periodic` is stale
/// by design, so its latency cell reads `-` whenever an episode never
/// passes through a fully exact tick.
pub fn e20(scale: Scale) -> ExpResult {
    let mut cfg = base_config(scale);
    // Latency needs the oracle while a rebirth settles; clamp like e16.
    cfg.workload.n_objects = cfg.workload.n_objects.min(4_000);
    cfg.n_queries = cfg.n_queries.min(20);
    cfg.verify = VerifyMode::Record;
    cfg.shards = 4;
    let p = cfg.dknn_params();
    let bound = p.heartbeat + p.lease_ttl() + 2;
    let crash = |count: u32, dur: u64, loss: f64| {
        let mut c = cfg.clone();
        let mut b = FaultPlan::builder().crashes(count, dur, dur);
        let mut label = format!("{count}x{dur}");
        if loss > 0.0 {
            // The link degrades for the nominal episode only: the `+ bound`
            // measurement tail runs clean (crash windows are not gated by
            // the horizon), so a rebirth near the end still reconverges.
            b = b.loss(loss).horizon(cfg.ticks);
            label = format!("{label}+loss{:.0}", loss * 100.0);
        }
        c.fault = b.build().expect("e20 crash knobs are in range");
        (label, c)
    };
    let points = [
        crash(1, 5, 0.0),
        crash(2, 5, 0.0),
        crash(2, 15, 0.0),
        crash(3, 10, 0.0),
        crash(2, 10, 0.10),
    ];
    let methods = Method::standard_suite(p);
    let cells: Vec<(String, SimConfig, Method)> = points
        .iter()
        .flat_map(|(label, c)| methods.iter().map(|&m| (label.clone(), c.clone(), m)))
        .collect();
    let runs = mknn_util::Pool::from_env().map_indexed(cells, |_, (label, c, method)| {
        let start = std::time::Instant::now();
        let mut sim = Simulation::new(&c, method.build());
        let rebirths: Vec<u64> = sim.crash_windows().iter().map(|w| w.until).collect();
        let last = rebirths.iter().copied().max().unwrap_or(0);
        // A lossy link keeps retransmit healing in flight when the nominal
        // episode ends — stragglers clear one lease cycle at a time, one
        // per damaged query in the worst case — so the composed point gets
        // that many heal cycles of clean tail.
        let tail = if c.fault.up_loss > 0.0 {
            bound * c.n_queries.max(1) as u64 / 2
        } else {
            bound
        };
        let mut pending: Vec<u64> = Vec::new();
        let mut latencies: Vec<u64> = Vec::new();
        for t in 1..=c.ticks.max(last) + tail {
            sim.step();
            pending.extend(rebirths.iter().copied().filter(|&r| r == t));
            if !pending.is_empty() && sim.inexact_queries() == 0 {
                latencies.extend(pending.drain(..).map(|r| t - r));
            }
        }
        let m = sim.metrics().clone();
        (
            label,
            method,
            m,
            latencies,
            pending.len(),
            start.elapsed().as_secs_f64(),
        )
    });
    let mut rows = vec![vec![
        "crashes".into(),
        "method".into(),
        "rec-lat".into(),
        "max-lat".into(),
        "down-ticks".into(),
        "recover-legs".into(),
        "recover-B".into(),
        "retrans/tick".into(),
        "stale".into(),
        "exact".into(),
    ]];
    let mut busy = 0.0;
    for (label, method, m, latencies, unrecovered, wall) in runs {
        let max_lat = latencies.iter().copied().max();
        // The strict bound is asserted for the pure-crash points only: a
        // rebirth under composed transport loss reconverges once the link
        // clears, dominated by retransmit/lease healing rather than the
        // crash sweep (the latency column then reports that combined
        // tail), and `periodic` never claims per-tick exactness at all.
        if !matches!(method, Method::Periodic { .. }) && !label.contains("loss") {
            assert_eq!(
                unrecovered, 0,
                "{label}/{}: a rebirth never reconverged",
                m.method
            );
            assert!(
                max_lat.unwrap_or(0) <= bound,
                "{label}/{}: recovery latency {max_lat:?} exceeds the \
                 heartbeat + lease-TTL bound ({bound} ticks)",
                m.method
            );
        }
        let mean_lat = if latencies.is_empty() {
            f64::NAN
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        rows.push(vec![
            label,
            m.method.clone(),
            fmt(mean_lat),
            max_lat.map_or_else(|| "-".into(), |v| v.to_string()),
            m.crash_down_ticks.to_string(),
            m.net.shard.recover_msgs.to_string(),
            m.net.shard.recover_bytes.to_string(),
            fmt(m.ops.retransmits as f64 / m.ticks.max(1) as f64),
            fmt(m.staleness()),
            fmt(m.exactness()),
        ]);
        busy += wall;
    }
    ExpResult {
        id: "e20",
        title: "Table E20: shard crash/failover recovery (G = 4, crash count × outage)",
        rows,
        episode_seconds: busy,
        bench: Vec::new(),
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 20] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20",
];

/// Runs one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<ExpResult> {
    Some(match id {
        "e1" => e1(scale),
        "e2" => e2(scale),
        "e3" => e3(scale),
        "e4" => e4(scale),
        "e5" => e5(scale),
        "e6" => e6(scale),
        "e7" => e7(scale),
        "e8" => e8(scale),
        "e9" => e9(scale),
        "e10" => e10(scale),
        "e11" => e11(scale),
        "e12" => e12(scale),
        "e13" => e13(scale),
        "e14" => e14(scale),
        "e15" => e15(scale),
        "e16" => e16(scale),
        "e17" => e17(scale),
        "e18" => e18(scale),
        "e19" => e19(scale),
        "e20" => e20(scale),
        _ => return None,
    })
}
