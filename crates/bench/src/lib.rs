//! Benchmark support library: the experiment regenerators for every figure
//! and table of the reconstructed evaluation (DESIGN.md §4), shared by the
//! `expt` binary and reusable from tests.

#![deny(missing_docs)]

pub mod experiments;
pub mod report;
