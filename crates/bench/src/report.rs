//! Machine-readable run summaries (`expt --bench-out`).
//!
//! Every experiment already prints a human table; this module aggregates
//! the same runs into a JSON document (`BENCH_<name>.json`) so a
//! performance trajectory can be committed and diffed across PRs. The
//! schema round-trips through `mknn_util` JSON — `scripts/verify.sh`
//! gates the committed file on exactly that (`expt --check-bench`).

use mknn_sim::EpisodeRun;
use mknn_util::impl_json_struct;

/// A `(label, method)` cell aggregated over its seeded repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMethod {
    /// The sweep point label ("G=4", "8000", "loss10", …).
    pub label: String,
    /// Protocol name.
    pub method: String,
    /// Episodes aggregated into this cell.
    pub episodes: u64,
    /// Summed per-episode wall seconds (as measured in the worker).
    pub wall_seconds: f64,
    /// Summed wall seconds inside protocol code.
    pub proto_seconds: f64,
    /// Summed wall seconds of the per-device client phase.
    pub client_seconds: f64,
    /// Summed wall seconds of the (parallel) server phase, measured at the
    /// dispatch site: shard tasks run concurrently inside this window.
    pub server_seconds: f64,
    /// Summed wall seconds of uplink/downlink routing.
    pub route_seconds: f64,
    /// Summed per-shard task seconds: the total protocol work the shard
    /// tasks performed, added up over shards. With G shards on enough
    /// cores this exceeds `server_seconds` — their ratio is the measured
    /// parallel speedup of the server phase.
    pub shard_seconds_sum: f64,
    /// The busiest single shard's summed task seconds (the critical path
    /// of a perfectly scheduled server phase).
    pub shard_seconds_max: f64,
    /// `shard_seconds_sum / server_seconds`: how many shards' worth of
    /// work the parallel server phase retired per wall second. 0 when no
    /// server time was recorded.
    pub server_speedup: f64,
    /// Summed wall seconds verifying against the oracle.
    pub oracle_seconds: f64,
    /// Total device-facing messages across the episodes.
    pub total_msgs: u64,
    /// Total device-facing bytes across the episodes.
    pub total_bytes: u64,
    /// Total inter-shard backbone messages across the episodes.
    pub shard_msgs: u64,
    /// Largest per-episode p99 of the per-shard load distribution.
    pub shard_load_p99: f64,
    /// Hottest shard load seen in any episode.
    pub shard_load_max: u64,
}

/// One experiment's aggregated cells.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchExperiment {
    /// Experiment id ("e17", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Summed per-episode wall seconds for the whole experiment.
    pub episode_seconds: f64,
    /// One entry per `(label, method)` cell, in run (plan) order.
    pub methods: Vec<BenchMethod>,
}

/// The document `expt --bench-out` writes.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// What was run (the `--exp` argument).
    pub name: String,
    /// Whether the run used `--full` (paper) scale.
    pub full: bool,
    /// One entry per experiment, in run order.
    pub experiments: Vec<BenchExperiment>,
}

impl_json_struct!(BenchMethod {
    label,
    method,
    episodes,
    wall_seconds,
    proto_seconds,
    client_seconds,
    server_seconds,
    route_seconds,
    shard_seconds_sum,
    shard_seconds_max,
    server_speedup,
    oracle_seconds,
    total_msgs,
    total_bytes,
    shard_msgs,
    shard_load_p99,
    shard_load_max,
});
impl_json_struct!(BenchExperiment {
    id,
    title,
    episode_seconds,
    methods,
});
impl_json_struct!(BenchSummary {
    name,
    full,
    experiments,
});

/// Aggregates a sweep's runs into `(label, method)` cells, in
/// first-appearance (plan) order. Counter and clock fields sum over the
/// cell's seeded repetitions; the load fields take the worst episode.
pub fn bench_methods(runs: &[EpisodeRun]) -> Vec<BenchMethod> {
    let mut out: Vec<BenchMethod> = Vec::new();
    for run in runs {
        let m = &run.metrics;
        let cell = match out
            .iter_mut()
            .find(|c| c.label == run.label && c.method == m.method)
        {
            Some(cell) => cell,
            None => {
                out.push(BenchMethod {
                    label: run.label.clone(),
                    method: m.method.clone(),
                    episodes: 0,
                    wall_seconds: 0.0,
                    proto_seconds: 0.0,
                    client_seconds: 0.0,
                    server_seconds: 0.0,
                    route_seconds: 0.0,
                    shard_seconds_sum: 0.0,
                    shard_seconds_max: 0.0,
                    server_speedup: 0.0,
                    oracle_seconds: 0.0,
                    total_msgs: 0,
                    total_bytes: 0,
                    shard_msgs: 0,
                    shard_load_p99: 0.0,
                    shard_load_max: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        cell.episodes += 1;
        cell.wall_seconds += run.wall_seconds;
        cell.proto_seconds += m.proto_seconds;
        cell.client_seconds += m.client_seconds;
        cell.server_seconds += m.server_seconds;
        cell.route_seconds += m.route_seconds;
        cell.shard_seconds_sum += m.shard_seconds.iter().sum::<f64>();
        cell.shard_seconds_max += m.shard_seconds.iter().copied().fold(0.0, f64::max);
        cell.oracle_seconds += m.oracle_seconds;
        cell.total_msgs += m.net.total_msgs();
        cell.total_bytes += m.net.total_bytes();
        cell.shard_msgs += m.net.shard.total_msgs();
        let p99 = m.shard_load_p99();
        if !p99.is_nan() {
            cell.shard_load_p99 = cell.shard_load_p99.max(p99);
        }
        cell.shard_load_max = cell.shard_load_max.max(m.shard_load_max());
    }
    for cell in &mut out {
        cell.server_speedup = if cell.server_seconds > 0.0 {
            cell.shard_seconds_sum / cell.server_seconds
        } else {
            0.0
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_util::{from_str, to_string};

    fn cell(label: &str, method: &str) -> BenchMethod {
        BenchMethod {
            label: label.into(),
            method: method.into(),
            episodes: 2,
            wall_seconds: 1.5,
            proto_seconds: 0.75,
            client_seconds: 0.3,
            server_seconds: 0.25,
            route_seconds: 0.2,
            shard_seconds_sum: 0.5,
            shard_seconds_max: 0.15,
            server_speedup: 2.0,
            oracle_seconds: 0.25,
            total_msgs: 10_000,
            total_bytes: 440_000,
            shard_msgs: 321,
            shard_load_p99: 512.5,
            shard_load_max: 600,
        }
    }

    #[test]
    fn summary_round_trips() {
        let doc = BenchSummary {
            name: "e17".into(),
            full: false,
            experiments: vec![BenchExperiment {
                id: "e17".into(),
                title: "Fig E17: shard scaling".into(),
                episode_seconds: 3.0,
                methods: vec![cell("G=1", "dknn-set"), cell("G=4", "dknn-set")],
            }],
        };
        let s = to_string(&doc);
        let back: BenchSummary = from_str(&s).unwrap();
        assert_eq!(back, doc);
        // And the rendered form itself is stable under a re-render.
        assert_eq!(to_string(&back), s);
    }

    #[test]
    fn aggregation_groups_by_label_and_method() {
        use mknn_sim::{EpisodeMetrics, EpisodeRun, Method};
        let run = |label: &str, method: &str, seed_index: u64| EpisodeRun {
            label: label.into(),
            method: Method::Centralized { res: 16 },
            seed_index,
            metrics: EpisodeMetrics {
                method: method.into(),
                ticks: 10,
                shard_load: vec![5, 10, 2, 40],
                ..Default::default()
            },
            wall_seconds: 0.5,
        };
        let cells = bench_methods(&[
            run("a", "m1", 0),
            run("a", "m1", 1),
            run("a", "m2", 0),
            run("b", "m1", 0),
        ]);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].episodes, 2);
        assert_eq!(cells[0].wall_seconds, 1.0);
        assert_eq!(cells[1].label, "a");
        assert_eq!(cells[1].method, "m2");
        assert_eq!(cells[2].label, "b");
        assert_eq!(cells[0].shard_load_max, 40);
        assert!(cells[0].shard_load_p99 > 10.0);
    }
}
