//! Micro-benchmarks for the geometry kernel — the inner loops of both the
//! client-side region checks and the server-side selection.

use mknn_geom::{Annulus, Circle, LinearMotion, Point, Rect, Vector};
use mknn_util::bench::{black_box, Suite};

fn pts(n: usize) -> Vec<Point> {
    // Deterministic LCG scatter; no RNG dependency needed here.
    let mut state = 0x9E3779B97F4A7C15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 33) % 10_000) as f64;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 33) % 10_000) as f64;
            Point::new(x, y)
        })
        .collect()
}

fn main() {
    let mut suite = Suite::new("geometry");
    let points = pts(1024);
    let q = Point::new(5_000.0, 5_000.0);

    suite.bench("dist_sq_1024", || {
        let mut acc = 0.0;
        for p in &points {
            acc += black_box(p).dist_sq(q);
        }
        black_box(acc)
    });

    // The per-device, per-tick client check: one predicted center, one
    // squared distance, one comparison.
    let circle = Circle::new(Point::new(5_000.0, 5_000.0), 500.0);
    suite.bench("region_contains_1024", || {
        let mut inside = 0u32;
        for p in &points {
            inside += u32::from(circle.contains(black_box(*p)));
        }
        black_box(inside)
    });

    let band = Annulus::new(Point::new(5_000.0, 5_000.0), 300.0, 600.0);
    suite.bench("band_contains_1024", || {
        let mut inside = 0u32;
        for p in &points {
            inside += u32::from(band.contains(black_box(*p)));
        }
        black_box(inside)
    });

    let a = LinearMotion::new(Point::new(0.0, 0.0), Vector::new(3.0, 1.0));
    let b_m = LinearMotion::new(Point::new(400.0, -200.0), Vector::new(-2.0, 2.5));
    suite.bench("first_time_beyond", || {
        black_box(a.first_time_beyond(black_box(&b_m), 250.0))
    });

    let rects: Vec<Rect> = pts(256)
        .into_iter()
        .map(|p| Rect::new(p, Point::new(p.x + 120.0, p.y + 80.0)))
        .collect();
    suite.bench("rect_min_dist_256", || {
        let mut acc = 0.0;
        for r in &rects {
            acc += black_box(r).min_dist_sq(q);
        }
        black_box(acc)
    });

    suite.finish();
}
