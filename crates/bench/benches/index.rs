//! Benchmarks for the spatial indexes: the server-side cost drivers of the
//! centralized baseline (per-tick updates + kNN) and of snapshot queries.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use mknn_geom::{Circle, ObjectId, Point, Rect};
use mknn_index::{bruteforce, GridIndex, RTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIDE: f64 = 10_000.0;

fn cloud(n: usize, seed: u64) -> Vec<(ObjectId, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                ObjectId(i as u32),
                Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)),
            )
        })
        .collect()
}

fn grid_of(points: &[(ObjectId, Point)]) -> GridIndex {
    let mut g = GridIndex::new(Rect::square(SIDE), 64, 64);
    for &(id, p) in points {
        g.upsert(id, p);
    }
    g
}

fn bench_grid_updates(c: &mut Criterion) {
    let points = cloud(10_000, 1);
    let moves = cloud(10_000, 2);
    c.bench_function("grid/upsert_move_10k", |b| {
        b.iter_batched(
            || grid_of(&points),
            |mut g| {
                for &(id, p) in &moves {
                    g.upsert(id, p);
                }
                g
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_grid_knn(c: &mut Criterion) {
    let g = grid_of(&cloud(10_000, 1));
    let q = Point::new(5_000.0, 5_000.0);
    for k in [1usize, 10, 100] {
        c.bench_function(&format!("grid/knn_k{k}_n10k"), |b| {
            b.iter(|| black_box(g.knn(black_box(q), k)))
        });
    }
}

fn bench_grid_range(c: &mut Criterion) {
    let g = grid_of(&cloud(10_000, 1));
    let zone = Circle::new(Point::new(5_000.0, 5_000.0), 400.0);
    c.bench_function("grid/range_r400_n10k", |b| {
        b.iter(|| black_box(g.range(black_box(&zone))))
    });
}

fn bench_rtree_bulk_load(c: &mut Criterion) {
    let points = cloud(10_000, 1);
    c.bench_function("rtree/bulk_load_10k", |b| {
        b.iter_batched(|| points.clone(), RTree::bulk_load, BatchSize::LargeInput)
    });
}

fn bench_rtree_knn(c: &mut Criterion) {
    let t = RTree::bulk_load(cloud(10_000, 1));
    let q = Point::new(5_000.0, 5_000.0);
    for k in [1usize, 10, 100] {
        c.bench_function(&format!("rtree/knn_k{k}_n10k"), |b| {
            b.iter(|| black_box(t.knn(black_box(q), k)))
        });
    }
}

fn bench_rtree_insert(c: &mut Criterion) {
    let points = cloud(2_000, 1);
    c.bench_function("rtree/insert_2k", |b| {
        b.iter_batched(
            || points.clone(),
            |pts| {
                let mut t = RTree::new();
                for (id, p) in pts {
                    t.insert(id, p);
                }
                t
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_bruteforce_oracle(c: &mut Criterion) {
    let points = cloud(10_000, 1);
    let q = Point::new(5_000.0, 5_000.0);
    c.bench_function("oracle/bruteforce_knn_k10_n10k", |b| {
        b.iter(|| black_box(bruteforce::knn(points.iter().copied(), black_box(q), 10)))
    });
}

criterion_group!(
    benches,
    bench_grid_updates,
    bench_grid_knn,
    bench_grid_range,
    bench_rtree_bulk_load,
    bench_rtree_knn,
    bench_rtree_insert,
    bench_bruteforce_oracle
);
criterion_main!(benches);
