//! Benchmarks for the spatial indexes: the server-side cost drivers of the
//! centralized baseline (per-tick updates + kNN) and of snapshot queries.

use mknn_geom::{Circle, ObjectId, Point, Rect};
use mknn_index::{bruteforce, GridIndex, RTree};
use mknn_util::bench::{black_box, Suite};
use mknn_util::Rng;

const SIDE: f64 = 10_000.0;

fn cloud(n: usize, seed: u64) -> Vec<(ObjectId, Point)> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (
                ObjectId(i as u32),
                Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE)),
            )
        })
        .collect()
}

fn grid_of(points: &[(ObjectId, Point)]) -> GridIndex {
    let mut g = GridIndex::new(Rect::square(SIDE), 64, 64);
    for &(id, p) in points {
        g.upsert(id, p);
    }
    g
}

fn main() {
    let mut suite = Suite::new("index");
    let points = cloud(10_000, 1);
    let moves = cloud(10_000, 2);
    let q = Point::new(5_000.0, 5_000.0);

    suite.bench_with_setup(
        "grid/upsert_move_10k",
        8,
        || grid_of(&points),
        |mut g| {
            for &(id, p) in &moves {
                g.upsert(id, p);
            }
            g
        },
    );

    let g = grid_of(&points);
    for k in [1usize, 10, 100] {
        suite.bench(&format!("grid/knn_k{k}_n10k"), || {
            black_box(g.knn(black_box(q), k))
        });
    }

    let zone = Circle::new(Point::new(5_000.0, 5_000.0), 400.0);
    suite.bench("grid/range_r400_n10k", || {
        black_box(g.range(black_box(&zone)))
    });

    suite.bench_with_setup(
        "rtree/bulk_load_10k",
        8,
        || points.clone(),
        RTree::bulk_load,
    );

    let t = RTree::bulk_load(points.clone());
    for k in [1usize, 10, 100] {
        suite.bench(&format!("rtree/knn_k{k}_n10k"), || {
            black_box(t.knn(black_box(q), k))
        });
    }

    let small = cloud(2_000, 1);
    suite.bench_with_setup(
        "rtree/insert_2k",
        8,
        || small.clone(),
        |pts| {
            let mut t = RTree::new();
            for (id, p) in pts {
                t.insert(id, p);
            }
            t
        },
    );

    suite.bench("oracle/bruteforce_knn_k10_n10k", || {
        black_box(bruteforce::knn(points.iter().copied(), black_box(q), 10))
    });

    suite.finish();
}
