//! Whole-protocol throughput: wall-clock cost of simulating one tick of
//! each monitoring method (client logic for every device + server logic +
//! message routing), at a fixed mid-size workload.
//!
//! This is the in-process analogue of the paper's server-load measurements:
//! the *relative* cost of the methods is the reproducible quantity.

use mknn_mobility::WorkloadSpec;
use mknn_sim::{Method, SimConfig, Simulation, VerifyMode};
use mknn_util::bench::{Config, Suite};

fn config() -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: 4_000,
            space_side: 10_000.0,
            ..WorkloadSpec::default()
        },
        n_queries: 20,
        k: 10,
        ticks: 0, // stepped manually
        geo_cells: 64,
        verify: VerifyMode::Off,
        ..SimConfig::default()
    }
}

fn main() {
    // Whole-episode steps are expensive; sample less, like the former
    // criterion `sample_size(10)` group setting.
    let mut suite = Suite::new("protocols").with_config(Config {
        samples: 10,
        ..Config::default()
    });
    let cfg = config();
    for method in Method::standard_suite(cfg.dknn_params()) {
        suite.bench_with_setup(
            &format!("protocol_step/{}", method.name()),
            2,
            || {
                let mut sim = Simulation::new(&cfg, method.build());
                // Warm the protocol past its initial transient.
                for _ in 0..5 {
                    sim.step();
                }
                sim
            },
            |mut sim| {
                for _ in 0..10 {
                    sim.step();
                }
                sim
            },
        );
    }
    suite.finish();
}
