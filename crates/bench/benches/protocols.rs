//! Whole-protocol throughput: wall-clock cost of simulating one tick of
//! each monitoring method (client logic for every device + server logic +
//! message routing), at a fixed mid-size workload.
//!
//! This is the in-process analogue of the paper's server-load measurements:
//! the *relative* cost of the methods is the reproducible quantity.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mknn_mobility::WorkloadSpec;
use mknn_sim::{params_for, Method, SimConfig, Simulation, VerifyMode};

fn config() -> SimConfig {
    SimConfig {
        workload: WorkloadSpec { n_objects: 4_000, space_side: 10_000.0, ..WorkloadSpec::default() },
        n_queries: 20,
        k: 10,
        ticks: 0, // stepped manually
        geo_cells: 64,
        verify: VerifyMode::Off,
    }
}

fn bench_method_step(c: &mut Criterion, method: Method) {
    let cfg = config();
    let mut group = c.benchmark_group("protocol_step");
    group.sample_size(10);
    group.bench_function(method.name(), |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(&cfg, method.build());
                // Warm the protocol past its initial transient.
                for _ in 0..5 {
                    sim.step();
                }
                sim
            },
            |mut sim| {
                for _ in 0..10 {
                    sim.step();
                }
                sim
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    let cfg = config();
    for method in Method::standard_suite(params_for(&cfg)) {
        bench_method_step(c, method);
    }
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
