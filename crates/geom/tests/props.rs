//! Property-based tests for the geometry kernel.

use mknn_geom::{Annulus, Circle, LinearMotion, Point, Rect, ThresholdCrossing, Vector};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
}

fn vel() -> impl Strategy<Value = Vector> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Vector::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), 0.0..500.0f64, 0.0..500.0f64)
        .prop_map(|(p, w, h)| Rect::new(p, Point::new(p.x + w, p.y + h)))
}

proptest! {
    #[test]
    fn dist_triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-6);
    }

    #[test]
    fn dist_symmetry(a in pt(), b in pt()) {
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
    }

    #[test]
    fn rect_min_dist_consistent_with_contains(r in rect(), p in pt()) {
        if r.contains(p) {
            prop_assert!(r.min_dist_sq(p) == 0.0);
        } else {
            prop_assert!(r.min_dist_sq(p) > 0.0);
        }
        // min_dist is realized by the closest point.
        let cp = r.closest_point(p);
        prop_assert!(r.contains(cp));
        prop_assert!((cp.dist_sq(p) - r.min_dist_sq(p)).abs() < 1e-9);
    }

    #[test]
    fn rect_min_le_max_dist(r in rect(), p in pt()) {
        prop_assert!(r.min_dist_sq(p) <= r.max_dist_sq(p) + 1e-9);
        // All four corners are within max_dist.
        for corner in [r.min, r.max, Point::new(r.min.x, r.max.y), Point::new(r.max.x, r.min.y)] {
            prop_assert!(corner.dist_sq(p) <= r.max_dist_sq(p) + 1e-6);
        }
    }

    #[test]
    fn rect_union_contains_operands(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn circle_rect_intersection_agrees_with_sampling(r in rect(), c in pt(), rad in 0.0..500.0f64) {
        let circle = Circle::new(c, rad);
        // If the closest rect point is in the circle they must intersect.
        let cp = r.closest_point(c);
        prop_assert_eq!(r.intersects_circle(&circle), circle.contains(cp));
    }

    #[test]
    fn annulus_safe_dist_is_safe(center in pt(), p in pt(), inner in 0.0..100.0f64, width in 0.0..100.0f64,
                                 dir in 0.0..std::f64::consts::TAU) {
        let band = Annulus::new(center, inner, inner + width);
        let s = band.safe_dist(p);
        if s > 1e-7 {
            prop_assert!(band.contains(p));
            // Moving strictly less than the safe distance keeps us inside.
            let q = p + Vector::from_heading(dir) * (s * 0.999);
            prop_assert!(band.contains(q));
        }
    }

    #[test]
    fn crossing_times_match_simulation(p in pt(), q in pt(), vp in vel(), vq in vel(), thr in 1.0..2000.0f64) {
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        match mp.first_time_beyond(&mq, thr) {
            ThresholdCrossing::At(t) => {
                prop_assert!(t >= 0.0);
                let d = mp.position_at(t).dist(mq.position_at(t));
                prop_assert!(d >= thr - 1e-4, "at crossing time distance {} < threshold {}", d, thr);
                if t > 1e-6 {
                    // Just before the crossing we must still be within.
                    let t0 = (t - 1e-3).max(0.0);
                    let d0 = mp.position_at(t0).dist(mq.position_at(t0));
                    prop_assert!(d0 <= thr + 1.0);
                }
            }
            ThresholdCrossing::Never => {
                // Sample a few future instants; none may be beyond.
                for i in 0..50 {
                    let t = i as f64 * 7.3;
                    let d = mp.position_at(t).dist(mq.position_at(t));
                    prop_assert!(d <= thr + 1e-4, "claimed Never but d({t}) = {d} > {thr}");
                }
            }
        }
    }

    #[test]
    fn entry_time_matches_simulation(p in pt(), q in pt(), vp in vel(), vq in vel(), thr in 1.0..2000.0f64) {
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        match mp.first_time_within(&mq, thr) {
            ThresholdCrossing::At(t) => {
                prop_assert!(t >= 0.0);
                let d = mp.position_at(t).dist(mq.position_at(t));
                prop_assert!(d <= thr + 1e-4, "at entry time distance {} > threshold {}", d, thr);
            }
            ThresholdCrossing::Never => {
                for i in 0..50 {
                    let t = i as f64 * 7.3;
                    let d = mp.position_at(t).dist(mq.position_at(t));
                    prop_assert!(d >= thr - 1e-4, "claimed Never but d({t}) = {d} < {thr}");
                }
            }
        }
    }

    #[test]
    fn closest_approach_is_lower_bound(p in pt(), q in pt(), vp in vel(), vq in vel()) {
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        let (t_star, d_min) = mp.closest_approach(&mq);
        prop_assert!(t_star >= 0.0);
        for i in 0..50 {
            let t = i as f64 * 3.1;
            let d = mp.position_at(t).dist(mq.position_at(t));
            prop_assert!(d >= d_min - 1e-6);
        }
    }

    #[test]
    fn safe_ticks_are_conservative(p in pt(), q in pt(), vp in vel(), vq in vel(), thr in 1.0..2000.0f64) {
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        let ticks = mp.safe_ticks_within(&mq, thr);
        if ticks != u64::MAX && mp.origin.dist(mq.origin) <= thr {
            let horizon = ticks.min(100);
            for t in 0..=horizon {
                let d = mp.position_at(t as f64).dist(mq.position_at(t as f64));
                prop_assert!(d <= thr + 1e-4, "unsafe at tick {t}: {d} > {thr}");
            }
        }
    }
}
