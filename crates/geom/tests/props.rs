//! Property-based tests for the geometry kernel (mknn-util `check` harness).

use mknn_geom::{Annulus, Circle, LinearMotion, Point, Rect, ThresholdCrossing, Vector};
use mknn_util::check::forall;
use mknn_util::Rng;

/// Default case count per property (proptest's former default was 256).
const CASES: u64 = 256;

fn pt(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(-1e4..1e4), rng.gen_range(-1e4..1e4))
}

fn vel(rng: &mut Rng) -> Vector {
    Vector::new(rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0))
}

fn rect(rng: &mut Rng) -> Rect {
    let p = pt(rng);
    let w = rng.gen_range(0.0..500.0);
    let h = rng.gen_range(0.0..500.0);
    Rect::new(p, Point::new(p.x + w, p.y + h))
}

#[test]
fn dist_triangle_inequality() {
    forall(CASES, |rng| {
        let (a, b, c) = (pt(rng), pt(rng), pt(rng));
        assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-6);
    });
}

#[test]
fn dist_symmetry() {
    forall(CASES, |rng| {
        let (a, b) = (pt(rng), pt(rng));
        assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
    });
}

#[test]
fn rect_min_dist_consistent_with_contains() {
    forall(CASES, |rng| {
        let (r, p) = (rect(rng), pt(rng));
        if r.contains(p) {
            assert!(r.min_dist_sq(p) == 0.0);
        } else {
            assert!(r.min_dist_sq(p) > 0.0);
        }
        // min_dist is realized by the closest point.
        let cp = r.closest_point(p);
        assert!(r.contains(cp));
        assert!((cp.dist_sq(p) - r.min_dist_sq(p)).abs() < 1e-9);
    });
}

#[test]
fn rect_min_le_max_dist() {
    forall(CASES, |rng| {
        let (r, p) = (rect(rng), pt(rng));
        assert!(r.min_dist_sq(p) <= r.max_dist_sq(p) + 1e-9);
        // All four corners are within max_dist.
        for corner in [
            r.min,
            r.max,
            Point::new(r.min.x, r.max.y),
            Point::new(r.max.x, r.min.y),
        ] {
            assert!(corner.dist_sq(p) <= r.max_dist_sq(p) + 1e-6);
        }
    });
}

#[test]
fn rect_union_contains_operands() {
    forall(CASES, |rng| {
        let (a, b) = (rect(rng), rect(rng));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
    });
}

#[test]
fn circle_rect_intersection_agrees_with_sampling() {
    forall(CASES, |rng| {
        let (r, c) = (rect(rng), pt(rng));
        let rad = rng.gen_range(0.0..500.0);
        let circle = Circle::new(c, rad);
        // If the closest rect point is in the circle they must intersect.
        let cp = r.closest_point(c);
        assert_eq!(r.intersects_circle(&circle), circle.contains(cp));
    });
}

#[test]
fn annulus_safe_dist_is_safe() {
    forall(CASES, |rng| {
        let (center, p) = (pt(rng), pt(rng));
        let inner = rng.gen_range(0.0..100.0);
        let width = rng.gen_range(0.0..100.0);
        let dir = rng.gen_range(0.0..std::f64::consts::TAU);
        let band = Annulus::new(center, inner, inner + width);
        let s = band.safe_dist(p);
        if s > 1e-7 {
            assert!(band.contains(p));
            // Moving strictly less than the safe distance keeps us inside.
            let q = p + Vector::from_heading(dir) * (s * 0.999);
            assert!(band.contains(q));
        }
    });
}

#[test]
fn crossing_times_match_simulation() {
    forall(CASES, |rng| {
        let (p, q, vp, vq) = (pt(rng), pt(rng), vel(rng), vel(rng));
        let thr = rng.gen_range(1.0..2000.0);
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        match mp.first_time_beyond(&mq, thr) {
            ThresholdCrossing::At(t) => {
                assert!(t >= 0.0);
                let d = mp.position_at(t).dist(mq.position_at(t));
                assert!(
                    d >= thr - 1e-4,
                    "at crossing time distance {d} < threshold {thr}"
                );
                if t > 1e-6 {
                    // Just before the crossing we must still be within.
                    let t0 = (t - 1e-3).max(0.0);
                    let d0 = mp.position_at(t0).dist(mq.position_at(t0));
                    assert!(d0 <= thr + 1.0);
                }
            }
            ThresholdCrossing::Never => {
                // Sample a few future instants; none may be beyond.
                for i in 0..50 {
                    let t = i as f64 * 7.3;
                    let d = mp.position_at(t).dist(mq.position_at(t));
                    assert!(d <= thr + 1e-4, "claimed Never but d({t}) = {d} > {thr}");
                }
            }
        }
    });
}

#[test]
fn entry_time_matches_simulation() {
    forall(CASES, |rng| {
        let (p, q, vp, vq) = (pt(rng), pt(rng), vel(rng), vel(rng));
        let thr = rng.gen_range(1.0..2000.0);
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        match mp.first_time_within(&mq, thr) {
            ThresholdCrossing::At(t) => {
                assert!(t >= 0.0);
                let d = mp.position_at(t).dist(mq.position_at(t));
                assert!(
                    d <= thr + 1e-4,
                    "at entry time distance {d} > threshold {thr}"
                );
            }
            ThresholdCrossing::Never => {
                for i in 0..50 {
                    let t = i as f64 * 7.3;
                    let d = mp.position_at(t).dist(mq.position_at(t));
                    assert!(d >= thr - 1e-4, "claimed Never but d({t}) = {d} < {thr}");
                }
            }
        }
    });
}

#[test]
fn closest_approach_is_lower_bound() {
    forall(CASES, |rng| {
        let (p, q, vp, vq) = (pt(rng), pt(rng), vel(rng), vel(rng));
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        let (t_star, d_min) = mp.closest_approach(&mq);
        assert!(t_star >= 0.0);
        for i in 0..50 {
            let t = i as f64 * 3.1;
            let d = mp.position_at(t).dist(mq.position_at(t));
            assert!(d >= d_min - 1e-6);
        }
    });
}

#[test]
fn safe_ticks_are_conservative() {
    forall(CASES, |rng| {
        let (p, q, vp, vq) = (pt(rng), pt(rng), vel(rng), vel(rng));
        let thr = rng.gen_range(1.0..2000.0);
        let mp = LinearMotion::new(p, vp);
        let mq = LinearMotion::new(q, vq);
        let ticks = mp.safe_ticks_within(&mq, thr);
        if ticks != u64::MAX && mp.origin.dist(mq.origin) <= thr {
            let horizon = ticks.min(100);
            for t in 0..=horizon {
                let d = mp.position_at(t as f64).dist(mq.position_at(t as f64));
                assert!(d <= thr + 1e-4, "unsafe at tick {t}: {d} > {thr}");
            }
        }
    });
}
