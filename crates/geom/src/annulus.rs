//! Annuli (rings) — the shape of per-object response bands.

use crate::Point;

/// A closed annulus centered at `center`: all points `p` with
/// `inner ≤ dist(center, p) ≤ outer`.
///
/// The order-preserving protocol ([`DknnOrder`]) installs one annulus per
/// answer object: as long as the object stays inside its band, its *rank*
/// among the k nearest neighbors cannot have changed, so it stays silent.
///
/// [`DknnOrder`]: https://docs.rs/mknn-core
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Annulus {
    /// Center shared with the query's monitoring region.
    pub center: Point,
    /// Inner radius (≥ 0).
    pub inner: f64,
    /// Outer radius (≥ inner). `f64::INFINITY` expresses "everything beyond
    /// `inner`", used for the outermost non-answer band.
    pub outer: f64,
}

impl Annulus {
    /// Creates an annulus.
    ///
    /// Panics when the radii are unordered, negative, or NaN, or when the
    /// center has a NaN coordinate. (A NaN band would silently report
    /// `contains == false` for *every* point, making an object fall out of
    /// its band each tick — a protocol bug that must fail loudly instead.)
    #[inline]
    pub fn new(center: Point, inner: f64, outer: f64) -> Self {
        assert!(
            !center.x.is_nan() && !center.y.is_nan(),
            "annulus center must not be NaN"
        );
        // `NaN >= 0.0` and `NaN >= inner` are false, so these also reject
        // NaN radii.
        assert!(
            inner >= 0.0,
            "inner radius must be non-negative (got {inner})"
        );
        assert!(
            outer >= inner,
            "outer must not be smaller than inner (got inner={inner}, outer={outer})"
        );
        Annulus {
            center,
            inner,
            outer,
        }
    }

    /// Returns `true` when `p` lies inside the band (boundaries inclusive).
    ///
    /// A point with a NaN coordinate is outside every band.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        debug_assert!(
            !self.center.x.is_nan()
                && !self.center.y.is_nan()
                && !self.inner.is_nan()
                && !self.outer.is_nan(),
            "annulus was corrupted with NaN after construction"
        );
        let d2 = self.center.dist_sq(p);
        d2 >= self.inner * self.inner && (self.outer.is_infinite() || d2 <= self.outer * self.outer)
    }

    /// Width of the band (`outer − inner`).
    #[inline]
    pub fn width(&self) -> f64 {
        self.outer - self.inner
    }

    /// The distance `p` can travel (in any direction) before it can possibly
    /// exit the band; `0` when `p` is already outside.
    ///
    /// This is the *safe distance* of the band: with a per-tick displacement
    /// bound `v`, the object provably stays inside for `safe_dist / v` ticks.
    #[inline]
    pub fn safe_dist(&self, p: Point) -> f64 {
        let d = self.center.dist(p);
        if d < self.inner || (!self.outer.is_infinite() && d > self.outer) {
            return 0.0;
        }
        let to_inner = d - self.inner;
        if self.outer.is_infinite() {
            to_inner
        } else {
            to_inner.min(self.outer - d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn contains_respects_both_radii() {
        let a = Annulus::new(Point::ORIGIN, 2.0, 4.0);
        assert!(!a.contains(Point::new(1.0, 0.0)));
        assert!(a.contains(Point::new(2.0, 0.0)));
        assert!(a.contains(Point::new(3.0, 0.0)));
        assert!(a.contains(Point::new(4.0, 0.0)));
        assert!(!a.contains(Point::new(4.5, 0.0)));
    }

    #[test]
    fn unbounded_outer_band() {
        let a = Annulus::new(Point::ORIGIN, 3.0, f64::INFINITY);
        assert!(a.contains(Point::new(1e9, 0.0)));
        assert!(!a.contains(Point::new(2.9, 0.0)));
        assert!(approx_eq(a.safe_dist(Point::new(10.0, 0.0)), 7.0));
    }

    #[test]
    fn safe_dist_is_min_gap() {
        let a = Annulus::new(Point::ORIGIN, 2.0, 4.0);
        assert!(approx_eq(a.safe_dist(Point::new(2.5, 0.0)), 0.5));
        assert!(approx_eq(a.safe_dist(Point::new(3.8, 0.0)), 0.2));
        assert!(approx_eq(a.safe_dist(Point::new(5.0, 0.0)), 0.0));
        assert!(approx_eq(a.safe_dist(Point::new(0.0, 0.0)), 0.0));
    }

    #[test]
    fn degenerate_band_contains_only_its_circle() {
        let a = Annulus::new(Point::ORIGIN, 3.0, 3.0);
        assert!(a.contains(Point::new(3.0, 0.0)));
        assert!(!a.contains(Point::new(3.001, 0.0)));
        assert!(approx_eq(a.width(), 0.0));
    }

    #[test]
    #[should_panic(expected = "inner radius must be non-negative")]
    fn nan_inner_radius_is_rejected() {
        Annulus::new(Point::ORIGIN, f64::NAN, 4.0);
    }

    #[test]
    #[should_panic(expected = "outer must not be smaller than inner")]
    fn nan_outer_radius_is_rejected() {
        Annulus::new(Point::ORIGIN, 2.0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "annulus center must not be NaN")]
    fn nan_center_is_rejected() {
        Annulus::new(Point::new(f64::NAN, 0.0), 2.0, 4.0);
    }

    #[test]
    #[should_panic(expected = "inner radius must be non-negative")]
    fn negative_inner_radius_is_rejected() {
        Annulus::new(Point::ORIGIN, -1.0, 4.0);
    }

    #[test]
    fn nan_point_is_outside_every_band() {
        let a = Annulus::new(Point::ORIGIN, 0.0, f64::INFINITY);
        assert!(!a.contains(Point::new(f64::NAN, 0.0)));
    }
}
