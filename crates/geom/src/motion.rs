//! Linear motion and time-parameterized distance.
//!
//! Both the query focal object and the data objects are modelled between
//! mobility-model updates as points moving with constant velocity. The
//! distance between two such points is `sqrt` of a quadratic in time, which
//! lets the protocols answer questions such as *"when can this object first
//! cross the monitoring-region boundary?"* in closed form instead of checking
//! every tick.

use crate::{Point, Vector};

/// A point moving with constant velocity: `position(t) = origin + velocity·t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearMotion {
    /// Position at local time `t = 0`.
    pub origin: Point,
    /// Displacement per tick.
    pub velocity: Vector,
}

/// Outcome of asking when a time-parameterized distance first crosses a
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdCrossing {
    /// The distance never reaches the threshold for `t ≥ 0`.
    Never,
    /// The distance first reaches the threshold at the contained time
    /// (`t ≥ 0`, possibly `0` when already at/over it).
    At(f64),
}

impl LinearMotion {
    /// Creates a motion from a position and velocity.
    #[inline]
    pub const fn new(origin: Point, velocity: Vector) -> Self {
        LinearMotion { origin, velocity }
    }

    /// A stationary point.
    #[inline]
    pub const fn stationary(origin: Point) -> Self {
        LinearMotion {
            origin,
            velocity: Vector::ZERO,
        }
    }

    /// Position at time `t` (ticks after `origin` was sampled).
    #[inline]
    pub fn position_at(&self, t: f64) -> Point {
        self.origin + self.velocity * t
    }

    /// Squared distance to `other` at time `t`.
    #[inline]
    pub fn dist_sq_at(&self, other: &LinearMotion, t: f64) -> f64 {
        self.position_at(t).dist_sq(other.position_at(t))
    }

    /// Coefficients `(a, b, c)` of the squared-distance quadratic
    /// `d²(t) = a·t² + b·t + c` between `self` and `other`.
    #[inline]
    fn dist_sq_quadratic(&self, other: &LinearMotion) -> (f64, f64, f64) {
        let r0 = other.origin - self.origin;
        let w = other.velocity - self.velocity;
        (w.norm_sq(), 2.0 * r0.dot(w), r0.norm_sq())
    }

    /// Time `t ≥ 0` at which the distance between the two motions is
    /// minimal, together with that minimal distance.
    pub fn closest_approach(&self, other: &LinearMotion) -> (f64, f64) {
        let (a, b, c) = self.dist_sq_quadratic(other);
        if a <= 0.0 {
            // No relative motion: distance is constant.
            return (0.0, c.sqrt());
        }
        let t_star = (-b / (2.0 * a)).max(0.0);
        let d2 = (a * t_star * t_star + b * t_star + c).max(0.0);
        (t_star, d2.sqrt())
    }

    /// First time `t ≥ 0` at which the distance between the two motions
    /// *reaches or exceeds* `threshold` (an "exit" crossing when currently
    /// closer than the threshold).
    ///
    /// Returns [`ThresholdCrossing::At`]`(0.0)` when the current distance
    /// is already ≥ `threshold`.
    pub fn first_time_beyond(&self, other: &LinearMotion, threshold: f64) -> ThresholdCrossing {
        debug_assert!(threshold >= 0.0);
        let (a, b, c) = self.dist_sq_quadratic(other);
        let c = c - threshold * threshold;
        if c >= 0.0 {
            return ThresholdCrossing::At(0.0);
        }
        // d²(t) − thr² = a t² + b t + c with c < 0: starts below, leaves when
        // the larger root is reached (exists iff a > 0, since for a == 0 and
        // b ≤ 0 it never rises; a == 0, b > 0 crosses at −c/b).
        if a <= 0.0 {
            if b <= 0.0 {
                return ThresholdCrossing::Never;
            }
            return ThresholdCrossing::At(-c / b);
        }
        let disc = b * b - 4.0 * a * c;
        // c < 0 and a > 0 imply disc > 0.
        let root = (-b + disc.sqrt()) / (2.0 * a);
        ThresholdCrossing::At(root.max(0.0))
    }

    /// First time `t ≥ 0` at which the distance between the two motions
    /// *drops to or below* `threshold` (an "entry" crossing when currently
    /// farther than the threshold).
    ///
    /// Returns [`ThresholdCrossing::At`]`(0.0)` when the current distance
    /// is already ≤ `threshold`.
    pub fn first_time_within(&self, other: &LinearMotion, threshold: f64) -> ThresholdCrossing {
        debug_assert!(threshold >= 0.0);
        let (a, b, c) = self.dist_sq_quadratic(other);
        let c = c - threshold * threshold;
        if c <= 0.0 {
            return ThresholdCrossing::At(0.0);
        }
        if a <= 0.0 {
            if b >= 0.0 {
                return ThresholdCrossing::Never;
            }
            return ThresholdCrossing::At(-c / b);
        }
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return ThresholdCrossing::Never; // never gets that close
        }
        let sqrt_disc = disc.sqrt();
        let t1 = (-b - sqrt_disc) / (2.0 * a); // first (entering) root
        if t1 >= 0.0 {
            ThresholdCrossing::At(t1)
        } else {
            // Both roots behind us (moving apart) or we are past the close
            // interval entirely.
            let t2 = (-b + sqrt_disc) / (2.0 * a);
            if t2 >= 0.0 {
                // We are *inside* the interval only if c ≤ 0, handled above;
                // so here the interval is entirely in the past.
                ThresholdCrossing::Never
            } else {
                ThresholdCrossing::Never
            }
        }
    }

    /// Number of whole ticks the two motions provably remain within
    /// `threshold` of each other, starting from `t = 0`.
    ///
    /// Returns `u64::MAX` when they never separate.
    pub fn safe_ticks_within(&self, other: &LinearMotion, threshold: f64) -> u64 {
        match self.first_time_beyond(other, threshold) {
            ThresholdCrossing::Never => u64::MAX,
            ThresholdCrossing::At(t) => t.floor().max(0.0) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn still(x: f64, y: f64) -> LinearMotion {
        LinearMotion::stationary(Point::new(x, y))
    }

    #[test]
    fn position_advances_linearly() {
        let m = LinearMotion::new(Point::new(1.0, 1.0), Vector::new(2.0, -1.0));
        assert_eq!(m.position_at(0.0), Point::new(1.0, 1.0));
        assert_eq!(m.position_at(2.0), Point::new(5.0, -1.0));
    }

    #[test]
    fn head_on_approach_crosses_threshold() {
        // Object at x=10 moving toward origin at speed 1.
        let q = still(0.0, 0.0);
        let o = LinearMotion::new(Point::new(10.0, 0.0), Vector::new(-1.0, 0.0));
        match q.first_time_within(&o, 4.0) {
            ThresholdCrossing::At(t) => assert!(approx_eq(t, 6.0)),
            ThresholdCrossing::Never => panic!("should cross"),
        }
        // And it leaves the 4-disk again at t = 14 (after passing through).
        match q.first_time_beyond(&o, 4.0) {
            ThresholdCrossing::At(t) => assert!(approx_eq(t, 0.0)), // already beyond
            ThresholdCrossing::Never => panic!(),
        }
    }

    #[test]
    fn receding_object_never_enters() {
        let q = still(0.0, 0.0);
        let o = LinearMotion::new(Point::new(10.0, 0.0), Vector::new(1.0, 0.0));
        assert_eq!(q.first_time_within(&o, 4.0), ThresholdCrossing::Never);
    }

    #[test]
    fn inside_object_exits_at_expected_time() {
        let q = still(0.0, 0.0);
        let o = LinearMotion::new(Point::new(1.0, 0.0), Vector::new(1.0, 0.0));
        match q.first_time_beyond(&o, 5.0) {
            ThresholdCrossing::At(t) => assert!(approx_eq(t, 4.0)),
            ThresholdCrossing::Never => panic!("should exit"),
        }
        assert_eq!(q.safe_ticks_within(&o, 5.0), 4);
    }

    #[test]
    fn parallel_motion_never_exits() {
        let q = LinearMotion::new(Point::new(0.0, 0.0), Vector::new(3.0, 1.0));
        let o = LinearMotion::new(Point::new(1.0, 0.0), Vector::new(3.0, 1.0));
        assert_eq!(q.first_time_beyond(&o, 5.0), ThresholdCrossing::Never);
        assert_eq!(q.safe_ticks_within(&o, 5.0), u64::MAX);
    }

    #[test]
    fn flyby_that_misses_threshold() {
        // Passes at perpendicular distance 3; threshold 2 is never reached.
        let q = still(0.0, 0.0);
        let o = LinearMotion::new(Point::new(-10.0, 3.0), Vector::new(1.0, 0.0));
        assert_eq!(q.first_time_within(&o, 2.0), ThresholdCrossing::Never);
        // Threshold 3 is reached exactly at the closest approach, t = 10.
        match q.first_time_within(&o, 3.0) {
            ThresholdCrossing::At(t) => assert!(approx_eq(t, 10.0)),
            ThresholdCrossing::Never => panic!("tangent crossing expected"),
        }
    }

    #[test]
    fn closest_approach_of_crossing_paths() {
        let q = still(0.0, 0.0);
        let o = LinearMotion::new(Point::new(-10.0, 4.0), Vector::new(2.0, 0.0));
        let (t, d) = q.closest_approach(&o);
        assert!(approx_eq(t, 5.0));
        assert!(approx_eq(d, 4.0));
    }

    #[test]
    fn closest_approach_in_past_clamps_to_now() {
        let q = still(0.0, 0.0);
        let o = LinearMotion::new(Point::new(5.0, 0.0), Vector::new(1.0, 0.0));
        let (t, d) = q.closest_approach(&o);
        assert!(approx_eq(t, 0.0));
        assert!(approx_eq(d, 5.0));
    }

    #[test]
    fn linear_case_entry_and_exit() {
        // Relative velocity zero in magnitude? No: exercise the a == 0 path
        // with identical velocities -> constant distance.
        let q = LinearMotion::new(Point::new(0.0, 0.0), Vector::new(1.0, 1.0));
        let o = LinearMotion::new(Point::new(6.0, 8.0), Vector::new(1.0, 1.0));
        assert_eq!(q.first_time_within(&o, 5.0), ThresholdCrossing::Never);
        assert_eq!(q.first_time_within(&o, 10.0), ThresholdCrossing::At(0.0));
        assert_eq!(q.first_time_beyond(&o, 20.0), ThresholdCrossing::Never);
    }
}
