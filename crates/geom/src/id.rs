//! Workspace-wide identifier types.
//!
//! These live in the base crate so that the index, mobility, network, and
//! protocol crates can all name the same object/query identities without
//! depending on each other.

use std::fmt;

/// Discrete simulation time, in ticks since the start of an episode.
pub type Tick = u64;

/// Identity of a moving data object (and of the device carrying it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Identity of a registered continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl ObjectId {
    /// The raw index, for dense per-object arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl QueryId {
    /// The raw index, for dense per-query arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

impl From<u32> for QueryId {
    fn from(v: u32) -> Self {
        QueryId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(7).to_string(), "o7");
        assert_eq!(QueryId(3).to_string(), "q3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ObjectId(1) < ObjectId(2));
        assert_eq!(ObjectId::from(5).index(), 5);
        assert_eq!(QueryId::from(9).index(), 9);
    }
}
