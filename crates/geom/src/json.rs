//! JSON conversions for the geometry types.
//!
//! Formats match what the former `serde` derives produced: structs become
//! objects keyed by field name, and the id newtypes serialize as their bare
//! integer.

use crate::{Annulus, Circle, LinearMotion, ObjectId, Point, QueryId, Rect, Vector};
use mknn_util::impl_json_struct;
use mknn_util::json::{FromJson, Json, JsonError, ToJson};

impl_json_struct!(Point { x, y });
impl_json_struct!(Vector { x, y });
impl_json_struct!(Rect { min, max });
impl_json_struct!(Circle { center, radius });
impl_json_struct!(LinearMotion { origin, velocity });

impl ToJson for Annulus {
    fn to_json(&self) -> Json {
        Json::object([
            ("center", self.center.to_json()),
            ("inner", self.inner.to_json()),
            ("outer", self.outer.to_json()),
        ])
    }
}

impl FromJson for Annulus {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let center: Point = v.parse_field("center")?;
        let inner: f64 = v.parse_field("inner")?;
        let outer: f64 = v.parse_field("outer")?;
        // Route through the constructor-style validation instead of panicking
        // inside `Annulus::new` on untrusted input.
        if center.x.is_nan() || center.y.is_nan() {
            return Err(JsonError::new("annulus center must not be NaN"));
        }
        if inner.is_nan() || inner < 0.0 {
            return Err(JsonError::new("annulus inner radius must be non-negative"));
        }
        if outer.is_nan() || outer < inner {
            return Err(JsonError::new("annulus outer radius must be >= inner"));
        }
        Ok(Annulus {
            center,
            inner,
            outer,
        })
    }
}

impl ToJson for ObjectId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for ObjectId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(ObjectId)
    }
}

impl ToJson for QueryId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for QueryId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u32::from_json(v).map(QueryId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_util::{from_str, to_string};

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let s = to_string(v);
        let back: T = from_str(&s).unwrap_or_else(|e| panic!("parse of {s}: {e}"));
        assert_eq!(&back, v, "round trip through {s}");
    }

    #[test]
    fn geometry_types_round_trip() {
        roundtrip(&Point::new(1.5, -2.25));
        roundtrip(&Vector::new(0.125, 1e9));
        roundtrip(&Rect::new(Point::new(-1.0, -2.0), Point::new(3.0, 4.0)));
        roundtrip(&Circle {
            center: Point::new(5.0, 6.0),
            radius: 7.5,
        });
        roundtrip(&LinearMotion {
            origin: Point::new(1.0, 2.0),
            velocity: Vector::new(-0.5, 0.25),
        });
        roundtrip(&ObjectId(42));
        roundtrip(&QueryId(7));
    }

    #[test]
    fn unbounded_annulus_round_trips() {
        roundtrip(&Annulus::new(Point::new(3.0, 4.0), 2.0, 4.0));
        roundtrip(&Annulus::new(Point::ORIGIN, 5.0, f64::INFINITY));
    }

    #[test]
    fn invalid_annulus_json_is_rejected_not_panicking() {
        assert!(from_str::<Annulus>(r#"{"center":{"x":0,"y":0},"inner":NaN,"outer":4}"#).is_err());
        assert!(from_str::<Annulus>(r#"{"center":{"x":0,"y":0},"inner":5,"outer":4}"#).is_err());
        assert!(from_str::<Annulus>(r#"{"center":{"x":NaN,"y":0},"inner":1,"outer":4}"#).is_err());
    }

    #[test]
    fn ids_serialize_as_bare_integers() {
        assert_eq!(to_string(&ObjectId(9)), "9");
        assert_eq!(to_string(&QueryId(3)), "3");
    }
}
