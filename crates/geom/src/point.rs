//! Points and vectors in the plane.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement (or velocity, in meters per tick) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in hot paths (index scans,
    /// k-selection) — comparisons of squared distances are order-preserving
    /// and avoid the square root.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// The vector pointing from `self` to `other`.
    #[inline]
    pub fn vector_to(&self, other: Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }

    /// The midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Componentwise clamp of this point into `[min, max]` on both axes.
    #[inline]
    pub fn clamp(&self, min: Point, max: Point) -> Point {
        Point::new(self.x.clamp(min.x, max.x), self.y.clamp(min.y, max.y))
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Creates a unit vector with the given heading, in radians measured
    /// counter-clockwise from the positive x-axis.
    #[inline]
    pub fn from_heading(theta: f64) -> Self {
        Vector::new(theta.cos(), theta.sin())
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Returns this vector scaled to unit length, or [`Vector::ZERO`] when
    /// its norm is zero.
    #[inline]
    pub fn normalized(&self) -> Vector {
        let n = self.norm();
        if n == 0.0 {
            Vector::ZERO
        } else {
            *self / n
        }
    }

    /// Returns this vector with its norm capped at `max_norm`.
    ///
    /// Used by mobility models to enforce per-object speed limits.
    #[inline]
    pub fn capped(&self, max_norm: f64) -> Vector {
        debug_assert!(max_norm >= 0.0);
        let n = self.norm();
        if n > max_norm && n > 0.0 {
            *self * (max_norm / n)
        } else {
            *self
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Sub<Point> for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vector {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dist_is_sqrt_of_dist_sq() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!(approx_eq(a.dist_sq(b), 25.0));
        assert!(approx_eq(a.dist(b), 5.0));
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let a = Point::new(-3.5, 7.25);
        let b = Point::new(10.0, -2.0);
        assert!(approx_eq(a.dist(b), b.dist(a)));
        assert!(approx_eq(a.dist(a), 0.0));
    }

    #[test]
    fn point_plus_vector_translates() {
        let p = Point::new(1.0, 1.0) + Vector::new(2.0, -0.5);
        assert!(approx_eq(p.x, 3.0) && approx_eq(p.y, 0.5));
    }

    #[test]
    fn point_difference_is_vector_to() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        let v = b - a;
        assert_eq!(v, a.vector_to(b));
        assert!(approx_eq(v.norm(), 5.0));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 4.0);
        let m = a.midpoint(b);
        assert!(approx_eq(m.dist(a), m.dist(b)));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vector::new(3.0, 4.0).normalized();
        assert!(approx_eq(v.norm(), 1.0));
        assert_eq!(Vector::ZERO.normalized(), Vector::ZERO);
    }

    #[test]
    fn capped_limits_speed() {
        let v = Vector::new(30.0, 40.0).capped(5.0);
        assert!(approx_eq(v.norm(), 5.0));
        let w = Vector::new(0.3, 0.4).capped(5.0);
        assert!(approx_eq(w.norm(), 0.5));
    }

    #[test]
    fn from_heading_points_correctly() {
        let east = Vector::from_heading(0.0);
        assert!(approx_eq(east.x, 1.0) && approx_eq(east.y, 0.0));
        let north = Vector::from_heading(std::f64::consts::FRAC_PI_2);
        assert!(north.x.abs() < 1e-12 && approx_eq(north.y, 1.0));
    }

    #[test]
    fn clamp_confines_to_box() {
        let p = Point::new(-5.0, 120.0).clamp(Point::ORIGIN, Point::new(100.0, 100.0));
        assert_eq!(p, Point::new(0.0, 100.0));
    }

    #[test]
    fn dot_product_orthogonal_is_zero() {
        assert!(approx_eq(
            Vector::new(1.0, 0.0).dot(Vector::new(0.0, 3.0)),
            0.0
        ));
    }
}
