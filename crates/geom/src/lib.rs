//! Computational geometry kernel for moving-object k-nearest-neighbor
//! processing.
//!
//! This crate provides the 2-D primitives every other crate in the workspace
//! builds on:
//!
//! * [`Point`] / [`Vector`] — positions and displacements in the plane,
//! * [`Rect`] — axis-aligned rectangles (index cells, space bounds),
//! * [`Circle`] — monitoring regions and search ranges,
//! * [`Annulus`] — response bands installed on moving objects,
//! * [`LinearMotion`] — a position moving with constant velocity, together
//!   with the time-parameterized distance machinery (first crossing time of a
//!   distance threshold, minimum distance over an interval) that the
//!   distributed protocols use to reason about *when* an object can next
//!   affect a query answer.
//!
//! All coordinates are `f64` meters; time is measured in ticks (`f64` when a
//! fractional crossing time is needed).

#![deny(missing_docs)]

mod annulus;
mod circle;
mod id;
mod json;
mod motion;
mod point;
mod rect;

pub use annulus::Annulus;
pub use circle::Circle;
pub use id::{ObjectId, QueryId, Tick};
pub use motion::{LinearMotion, ThresholdCrossing};
pub use point::{Point, Vector};
pub use rect::Rect;

/// Numerical tolerance used by geometric predicates in this crate.
///
/// Coordinates are meters in spaces up to ~10^5 on a side, so `1e-9` is far
/// below any physically meaningful displacement while staying well above
/// `f64` rounding noise for the magnitudes involved.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`EPSILON`] (absolute).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_tiny_differences() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }
}
