//! Axis-aligned rectangles.

use crate::{Circle, Point, Vector};

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]` (closed on all
/// sides).
///
/// Used for the space bounds of a simulated world, for grid-index cells, and
/// for R-tree minimum bounding rectangles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners. Panics (debug only) when the
    /// corners are not ordered.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y, "corners must be ordered");
        Rect { min, max }
    }

    /// Creates a rectangle from coordinate extents.
    #[inline]
    pub fn from_coords(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// The square `[0, side] × [0, side]`.
    #[inline]
    pub fn square(side: f64) -> Self {
        Rect::from_coords(0.0, 0.0, side, side)
    }

    /// A degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (the classic R-tree "margin" measure).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Returns `true` when the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The smallest rectangle covering `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Point) -> Rect {
        self.union(&Rect::from_point(p))
    }

    /// Grows the rectangle by `r` on every side.
    #[inline]
    pub fn inflate(&self, r: f64) -> Rect {
        Rect {
            min: self.min - Vector::new(r, r),
            max: self.max + Vector::new(r, r),
        }
    }

    /// The point of this rectangle closest to `p` (equal to `p` when `p` is
    /// inside).
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        p.clamp(self.min, self.max)
    }

    /// Squared minimum distance from `p` to this rectangle (`0` when inside).
    ///
    /// This is the classic `MINDIST` pruning measure for best-first kNN
    /// search on R-trees.
    #[inline]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        self.closest_point(p).dist_sq(p)
    }

    /// Squared maximum distance from `p` to any point of this rectangle.
    #[inline]
    pub fn max_dist_sq(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Returns `true` when any point of this rectangle lies inside `circle`.
    #[inline]
    pub fn intersects_circle(&self, circle: &Circle) -> bool {
        self.min_dist_sq(circle.center) <= circle.radius * circle.radius
    }

    /// Returns `true` when this rectangle lies entirely inside `circle`.
    #[inline]
    pub fn inside_circle(&self, circle: &Circle) -> bool {
        self.max_dist_sq(circle.center) <= circle.radius * circle.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit() -> Rect {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn contains_boundary_points() {
        assert!(unit().contains(Point::new(0.0, 0.0)));
        assert!(unit().contains(Point::new(1.0, 1.0)));
        assert!(unit().contains(Point::new(0.5, 1.0)));
        assert!(!unit().contains(Point::new(1.0 + 1e-9, 0.5)));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_coords(1.0, 1.0, 3.0, 3.0);
        let c = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
    }

    #[test]
    fn touching_rects_intersect() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a) && u.contains_rect(&b));
        assert_eq!(u, Rect::from_coords(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn min_dist_zero_inside() {
        assert!(approx_eq(unit().min_dist_sq(Point::new(0.5, 0.5)), 0.0));
    }

    #[test]
    fn min_dist_to_corner() {
        // Point diagonal from the (1,1) corner.
        let d2 = unit().min_dist_sq(Point::new(4.0, 5.0));
        assert!(approx_eq(d2, 9.0 + 16.0));
    }

    #[test]
    fn min_dist_to_edge() {
        let d2 = unit().min_dist_sq(Point::new(0.5, 3.0));
        assert!(approx_eq(d2, 4.0));
    }

    #[test]
    fn max_dist_reaches_far_corner() {
        let d2 = unit().max_dist_sq(Point::new(0.0, 0.0));
        assert!(approx_eq(d2, 2.0));
        let d2 = unit().max_dist_sq(Point::new(2.0, 0.5));
        // farthest corner is (0,0) or (0,1): dx=2, dy=0.5 -> 4.25
        assert!(approx_eq(d2, 4.25));
    }

    #[test]
    fn circle_intersection_cases() {
        let c = Circle::new(Point::new(2.0, 0.5), 0.9);
        assert!(!unit().intersects_circle(&c));
        let c = Circle::new(Point::new(2.0, 0.5), 1.1);
        assert!(unit().intersects_circle(&c));
        let c = Circle::new(Point::new(0.5, 0.5), 10.0);
        assert!(unit().inside_circle(&c));
        let c = Circle::new(Point::new(0.5, 0.5), 0.6);
        assert!(unit().intersects_circle(&c) && !unit().inside_circle(&c));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let r = unit().inflate(2.0);
        assert_eq!(r, Rect::from_coords(-2.0, -2.0, 3.0, 3.0));
    }

    #[test]
    fn area_and_margin() {
        let r = Rect::from_coords(0.0, 0.0, 3.0, 4.0);
        assert!(approx_eq(r.area(), 12.0));
        assert!(approx_eq(r.margin(), 7.0));
        assert_eq!(r.center(), Point::new(1.5, 2.0));
    }
}
