//! Circles (disks) — the shape of monitoring regions and search ranges.

use crate::{Point, Rect};

/// A closed disk: all points within `radius` of `center`.
///
/// In the distributed protocols a circle is the *monitoring region* of a
/// query: the set of positions from which a data object could possibly be one
/// of the query's k nearest neighbors before the next region refresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the disk.
    pub center: Point,
    /// Radius of the disk (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. Panics (debug only) on a negative radius.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "radius must be non-negative");
        Circle { center, radius }
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// Returns `true` when `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_circle(&self, other: &Circle) -> bool {
        if other.radius > self.radius {
            return false;
        }
        let slack = self.radius - other.radius;
        self.center.dist_sq(other.center) <= slack * slack
    }

    /// Returns `true` when the two disks share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let reach = self.radius + other.radius;
        self.center.dist_sq(other.center) <= reach * reach
    }

    /// The tight axis-aligned bounding rectangle of the disk.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::from_coords(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Distance from `p` to the boundary circle; negative when `p` is inside.
    ///
    /// The protocols use this as the "safety margin" of an object with
    /// respect to a monitoring region: an object moving at most `v` per tick
    /// cannot cross the boundary for `|signed_boundary_dist| / v` ticks.
    #[inline]
    pub fn signed_boundary_dist(&self, p: Point) -> f64 {
        self.center.dist(p) - self.radius
    }

    /// Grows (or shrinks, for negative `dr`) the radius by `dr`, clamping at
    /// zero.
    #[inline]
    pub fn inflate(&self, dr: f64) -> Circle {
        Circle::new(self.center, (self.radius + dr).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn contains_boundary() {
        let c = Circle::new(Point::new(0.0, 0.0), 5.0);
        assert!(c.contains(Point::new(3.0, 4.0)));
        assert!(c.contains(Point::new(5.0, 0.0)));
        assert!(!c.contains(Point::new(3.0, 4.1)));
    }

    #[test]
    fn contains_circle_cases() {
        let outer = Circle::new(Point::new(0.0, 0.0), 10.0);
        let inner = Circle::new(Point::new(3.0, 0.0), 6.0);
        assert!(outer.contains_circle(&inner));
        let crossing = Circle::new(Point::new(6.0, 0.0), 6.0);
        assert!(!outer.contains_circle(&crossing));
        assert!(outer.contains_circle(&outer));
    }

    #[test]
    fn intersects_cases() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        let b = Circle::new(Point::new(2.0, 0.0), 1.0); // tangent
        let c = Circle::new(Point::new(2.1, 0.0), 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn bounding_rect_is_tight() {
        let c = Circle::new(Point::new(1.0, 2.0), 3.0);
        assert_eq!(c.bounding_rect(), Rect::from_coords(-2.0, -1.0, 4.0, 5.0));
    }

    #[test]
    fn signed_boundary_dist_sign() {
        let c = Circle::new(Point::new(0.0, 0.0), 5.0);
        assert!(c.signed_boundary_dist(Point::new(1.0, 0.0)) < 0.0);
        assert!(approx_eq(c.signed_boundary_dist(Point::new(5.0, 0.0)), 0.0));
        assert!(approx_eq(c.signed_boundary_dist(Point::new(8.0, 0.0)), 3.0));
    }

    #[test]
    fn inflate_clamps_at_zero() {
        let c = Circle::new(Point::ORIGIN, 2.0);
        assert!(approx_eq(c.inflate(1.0).radius, 3.0));
        assert!(approx_eq(c.inflate(-5.0).radius, 0.0));
    }

    #[test]
    fn area_of_unit_circle() {
        assert!(approx_eq(
            Circle::new(Point::ORIGIN, 1.0).area(),
            std::f64::consts::PI
        ));
    }
}
