//! Simulated communication substrate for distributed moving-object query
//! processing.
//!
//! The target paper's evaluation platform — mobile devices with uplink
//! (device → server) and downlink (server → device, unicast or geocast)
//! channels — is hardware this reproduction does not have. This crate is the
//! documented substitution: an in-process message fabric with **full message
//! and byte accounting**, which preserves exactly the quantities the paper's
//! evaluation measures (messages per timestamp, bytes, fan-out of geocasts)
//! while abstracting away radio physics that the protocols never observe.
//!
//! Contents:
//!
//! * [`UplinkMsg`] / [`DownlinkMsg`] — the complete wire vocabulary of every
//!   protocol in the workspace, with a deterministic byte-size model,
//! * [`Recipient`] — unicast, geocast (circular zone), broadcast,
//! * [`Uplinks`] / [`Outbox`] — per-tick mailboxes filled by client and
//!   server logic,
//! * [`NetStats`] / [`OpCounters`] — the metric counters every experiment
//!   reports,
//! * [`Protocol`] — the contract a monitoring method implements; the
//!   simulation harness drives it and routes its messages,
//! * [`FaultPlan`] / [`FaultyLink`] — deterministic fault injection (loss,
//!   duplication, delay, device churn, and server-shard crash windows)
//!   layered over the perfect fabric.

#![deny(missing_docs)]

mod downlink;
mod fault;
mod json;
mod msg;
mod proto;
mod stats;
mod wire;

pub use downlink::{
    frame_bits, frame_header_bits, AnswerUpdate, Delivery, DownlinkBuilder, FrameItem, ReplStore,
};
pub use fault::{CrashWindow, FaultError, FaultPlan, FaultPlanBuilder, FaultyLink, QueryStreams};
pub use msg::{DownlinkMsg, MsgKind, QuerySpec, Recipient, ShardMsg, ShardMsgKind, UplinkMsg};
pub use proto::{
    parallel_client_phase, run_shard_tasks, ClientCtx, ObjReport, Outbox, ProbeService, Protocol,
    ServerPhase, ShardTask, Uplinks, PAR_MIN_DEVICES,
};
pub use stats::{NetStats, OpCounters, ShardStats};
pub use wire::{
    dequantize, quantize, Wire, LINK_HEADER_BITS, MEMBER_ENTRY_BITS, PARTIAL_ENTRY_BITS,
    QUANT_ERROR, QUANT_SCALE, RECOVER_ENTRY_BITS,
};
