//! Interest-scoped, delta-encoded, frame-batched downlink replication
//! (DESIGN.md §10).
//!
//! The legacy downlink model charged every server→device message as its own
//! transmission: unicasts per message, geocasts once per overlapped grid
//! cell, each carrying a full encoding. This module replaces that with the
//! replication pattern of modern networked-state engines (naia's
//! `scope_checks()` → `send_all_updates()` two-phase tick):
//!
//! 1. **Scope** — [`DownlinkBuilder::scope`] resolves each send into the set
//!    of devices actually interested in it: the focal device for its query's
//!    answer, the region members and imminent entrants for a region install
//!    (the grid page of the geocast zone), one device for a unicast.
//! 2. **Stage** — [`DownlinkBuilder::stage`] /
//!    [`DownlinkBuilder::stage_answer`] collect every `(device, message)`
//!    pair of the tick. Nothing is charged yet.
//! 3. **Flush** — [`DownlinkBuilder::flush_frames`] coalesces all messages
//!    to one device into a single framed packet, choosing for each message
//!    the cheapest encoding the device can decode: a delta against the last
//!    state that device *acked*, or a full snapshot when no trusted acked
//!    base exists (first contact, churn rejoin).
//!
//! The delta/ack state machine lives in [`ReplStore`], keyed by device.
//! Deltas are always encoded against the last state the device *acked*,
//! advanced per item by exactly the copies the fault layer delivered — an
//! ack gap (a copy the loss/delay draws ate) merely stalls that slot's
//! baseline, and the next send deltas against the same acked base, which
//! the device provably still holds. Only an offline churn window marks the
//! device *gapped*: a disconnected receiver's mirror cannot be trusted
//! across the rejoin, so the first send after it comes back re-sends state
//! it used to hold in full (counted in `NetStats::delta_full_fallbacks`)
//! and the first fully delivered frame re-arms delta encoding.
//! Acknowledgements ride the link-layer/transport feedback the model
//! treats as free and instantaneous — the same idealization the legacy
//! geocast model made for its paging channel.
//!
//! Everything here is *accounting*: protocol inboxes receive the original
//! [`DownlinkMsg`] structs through the exact same fault-layer draws as the
//! legacy path, so answers are byte-identical between the two modes at any
//! thread count and shard count. Only the measured bytes differ.

use crate::wire::{self, id_bits, Wire, DOWN_TAG_BITS, KIND_BITS, LINK_HEADER_BITS};
use crate::{DownlinkMsg, NetStats, Recipient};
use mknn_geom::{Circle, ObjectId, Point, QueryId, Tick, Vector};
use mknn_util::bits::{signed_bits, varint_bits, BitReader, BitWriter};
use std::collections::BTreeMap;

/// Frame-layer tag codes, extending the [`DownlinkMsg`] tag space (0..=5).
const DOWN_REGION_REFRESH: u64 = 6;
const DOWN_REGION_DELTA: u64 = 7;
const DOWN_BAND_DELTA: u64 = 8;
const DOWN_ANSWER_FULL: u64 = 9;
const DOWN_ANSWER_DELTA: u64 = 10;
const DOWN_PROBE_PING: u64 = 11;
const DOWN_ACK_PING: u64 = 12;

/// Answer replication to one device: the current top-k member list of a
/// query, shipped to its focal device either whole or as a diff against the
/// list that device last acked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerUpdate {
    /// Complete member list (first contact, fallback, or when the diff
    /// would cost more than starting over).
    Full {
        /// The query whose answer this is.
        query: QueryId,
        /// The member list, in answer order (rank order for ordered
        /// protocols, canonical ascending-id order for set protocols).
        members: Vec<ObjectId>,
    },
    /// Diff against the member list the device last acked.
    Delta {
        /// The query whose answer this is.
        query: QueryId,
        /// Indices (into the acked list) of members that left the answer.
        removed: Vec<u32>,
        /// Ids of members that entered the answer, in answer order.
        added: Vec<ObjectId>,
        /// Rank permutation, present only when order matters and differs
        /// from the natural order (acked survivors first, then `added`):
        /// entry `j` is the index into that natural order of the member now
        /// at rank `j`.
        order: Option<Vec<u32>>,
    },
}

impl AnswerUpdate {
    /// The query this update replicates.
    pub fn query(&self) -> QueryId {
        match self {
            AnswerUpdate::Full { query, .. } | AnswerUpdate::Delta { query, .. } => *query,
        }
    }
}

impl Wire for AnswerUpdate {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            AnswerUpdate::Full { query, members } => {
                w.write_bits(DOWN_ANSWER_FULL, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(members.len() as u64);
                for m in members {
                    w.write_varint(m.0 as u64);
                }
            }
            AnswerUpdate::Delta {
                query,
                removed,
                added,
                order,
            } => {
                w.write_bits(DOWN_ANSWER_DELTA, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(removed.len() as u64);
                for i in removed {
                    w.write_varint(*i as u64);
                }
                w.write_varint(added.len() as u64);
                for m in added {
                    w.write_varint(m.0 as u64);
                }
                match order {
                    None => w.write_bool(false),
                    Some(ranks) => {
                        w.write_bool(true);
                        // Length is implied: survivors + added.
                        for r in ranks {
                            w.write_varint(*r as u64);
                        }
                    }
                }
            }
        }
    }

    fn decode(r: &mut BitReader) -> Option<Self> {
        match r.read_bits(DOWN_TAG_BITS)? {
            DOWN_ANSWER_FULL => {
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let n = usize::try_from(r.read_varint()?).ok()?;
                let mut members = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    members.push(ObjectId(u32::try_from(r.read_varint()?).ok()?));
                }
                Some(AnswerUpdate::Full { query, members })
            }
            DOWN_ANSWER_DELTA => {
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let nrem = usize::try_from(r.read_varint()?).ok()?;
                let mut removed = Vec::with_capacity(nrem.min(1024));
                for _ in 0..nrem {
                    removed.push(u32::try_from(r.read_varint()?).ok()?);
                }
                let nadd = usize::try_from(r.read_varint()?).ok()?;
                let mut added = Vec::with_capacity(nadd.min(1024));
                for _ in 0..nadd {
                    added.push(ObjectId(u32::try_from(r.read_varint()?).ok()?));
                }
                // The decoder knows the new length from its own acked state;
                // round-tripping standalone requires it too, so the rank
                // list length cannot be reconstructed here without it. The
                // encoder therefore never relies on it: ranks are read until
                // the frame layer's item boundary in a real deployment. For
                // the model we carry the length implicitly via the caller's
                // state; standalone decode reconstructs only when absent.
                if r.read_bool()? {
                    // Without device state the rank-list length is unknown;
                    // standalone decode is exercised through
                    // `decode_with_len` in the frame layer tests.
                    None
                } else {
                    Some(AnswerUpdate::Delta {
                        query,
                        removed,
                        added,
                        order: None,
                    })
                }
            }
            _ => None,
        }
    }

    fn wire_bits(&self) -> usize {
        let tag = DOWN_TAG_BITS as usize;
        match self {
            AnswerUpdate::Full { query, members } => {
                tag + id_bits(query.0)
                    + varint_bits(members.len() as u64)
                    + members.iter().map(|m| id_bits(m.0)).sum::<usize>()
            }
            AnswerUpdate::Delta {
                query,
                removed,
                added,
                order,
            } => {
                tag + id_bits(query.0)
                    + varint_bits(removed.len() as u64)
                    + removed
                        .iter()
                        .map(|i| varint_bits(*i as u64))
                        .sum::<usize>()
                    + varint_bits(added.len() as u64)
                    + added.iter().map(|m| id_bits(m.0)).sum::<usize>()
                    + 1
                    + order
                        .as_ref()
                        .map(|ranks| ranks.iter().map(|x| varint_bits(*x as u64)).sum::<usize>())
                        .unwrap_or(0)
            }
        }
    }
}

/// One payload item inside a per-device frame: a full protocol message or a
/// delta encoding chosen against the device's acked state. Shares the
/// [`DownlinkMsg`] tag space (full messages keep their own tags, deltas use
/// codes 6..=11), so a framed payload needs no second discriminator.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameItem {
    /// A full message, encoded exactly as its unframed self (minus the
    /// link-layer header, which the frame pays once).
    Full(DownlinkMsg),
    /// Heartbeat of a region version the device already acked: re-arms the
    /// client lease without repeating the geometry.
    RegionRefresh {
        /// The query whose region is refreshed.
        query: QueryId,
    },
    /// A new region version, delta-encoded against the acked one. The
    /// center delta is taken against the *predicted* center (acked center
    /// advanced by the acked velocity over the version gap) — the same
    /// dead-reckoning the devices already run — so a focal moving at
    /// constant velocity costs near-zero bits.
    RegionDelta {
        /// The query whose region moved.
        query: QueryId,
        /// Version gap: new install tick minus acked install tick.
        dver: u64,
        /// Center x minus predicted x, in lattice steps.
        dcx: i64,
        /// Center y minus predicted y, in lattice steps.
        dcy: i64,
        /// Velocity x change, in lattice steps.
        dvx: i64,
        /// Velocity y change, in lattice steps.
        dvy: i64,
        /// Radius change, in lattice steps.
        dr: i64,
    },
    /// A response band, delta-encoded against the acked band (finite outer
    /// radii only — an infinite outer band re-sends in full, flag and all).
    BandDelta {
        /// The query the band belongs to.
        query: QueryId,
        /// Version gap: new install tick minus acked install tick.
        dver: u64,
        /// Inner radius change, in lattice steps.
        dinner: i64,
        /// Outer radius change, in lattice steps.
        douter: i64,
    },
    /// A probe request to a device already selected by the scope pass. The
    /// geocast zone of the unframed [`DownlinkMsg::Probe`] is *addressing*
    /// — the interest resolution consumed it — so the per-device copy
    /// carries only the query tag the reply must echo.
    ProbePing {
        /// The query the probed device replies to.
        query: QueryId,
    },
    /// A protocol acknowledgement riding the frame as real wire traffic.
    /// The acked version is transport bookkeeping the device can correlate
    /// from its own retransmit slot, so the per-device copy carries only
    /// the query tag and the kind being acked (closing the "free ack
    /// channel" idealization: acks now cost ~2 B like a [`Self::ProbePing`],
    /// tallied separately in [`NetStats::ack_bytes`]).
    AckPing {
        /// The query whose uplink is acknowledged.
        query: QueryId,
        /// The uplink kind being acknowledged.
        kind: crate::MsgKind,
    },
    /// Answer replication to the focal device.
    Answer(AnswerUpdate),
}

impl FrameItem {
    /// True for acknowledgement items — their bytes are tallied into the
    /// informational [`NetStats::ack_bytes`] share at flush time.
    fn is_ack(&self) -> bool {
        matches!(self, FrameItem::AckPing { .. })
    }
}

impl Wire for FrameItem {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            FrameItem::Full(m) => m.encode(w),
            FrameItem::RegionRefresh { query } => {
                w.write_bits(DOWN_REGION_REFRESH, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
            }
            FrameItem::RegionDelta {
                query,
                dver,
                dcx,
                dcy,
                dvx,
                dvy,
                dr,
            } => {
                w.write_bits(DOWN_REGION_DELTA, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(*dver);
                // Presence mask: residuals are usually zero (dead reckoning
                // predicts the center exactly on straight-line motion), so
                // each costs one flag bit unless it actually moved.
                for d in [dcx, dcy, dvx, dvy, dr] {
                    w.write_bool(*d != 0);
                }
                for d in [dcx, dcy, dvx, dvy, dr] {
                    if *d != 0 {
                        w.write_signed(*d);
                    }
                }
            }
            FrameItem::BandDelta {
                query,
                dver,
                dinner,
                douter,
            } => {
                w.write_bits(DOWN_BAND_DELTA, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(*dver);
                for d in [dinner, douter] {
                    w.write_bool(*d != 0);
                }
                for d in [dinner, douter] {
                    if *d != 0 {
                        w.write_signed(*d);
                    }
                }
            }
            FrameItem::ProbePing { query } => {
                w.write_bits(DOWN_PROBE_PING, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
            }
            FrameItem::AckPing { query, kind } => {
                w.write_bits(DOWN_ACK_PING, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_bits(kind.code(), KIND_BITS);
            }
            FrameItem::Answer(a) => a.encode(w),
        }
    }

    fn decode(r: &mut BitReader) -> Option<Self> {
        // Peek the shared tag, then hand full messages to DownlinkMsg.
        let tag = r.clone().read_bits(DOWN_TAG_BITS)?;
        match tag {
            0..=5 => DownlinkMsg::decode(r).map(FrameItem::Full),
            DOWN_REGION_REFRESH => {
                r.read_bits(DOWN_TAG_BITS)?;
                Some(FrameItem::RegionRefresh {
                    query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                })
            }
            DOWN_REGION_DELTA => {
                r.read_bits(DOWN_TAG_BITS)?;
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let dver = r.read_varint()?;
                let mut present = [false; 5];
                for p in &mut present {
                    *p = r.read_bool()?;
                }
                let mut vals = [0i64; 5];
                for (v, p) in vals.iter_mut().zip(present) {
                    if p {
                        *v = r.read_signed()?;
                    }
                }
                Some(FrameItem::RegionDelta {
                    query,
                    dver,
                    dcx: vals[0],
                    dcy: vals[1],
                    dvx: vals[2],
                    dvy: vals[3],
                    dr: vals[4],
                })
            }
            DOWN_BAND_DELTA => {
                r.read_bits(DOWN_TAG_BITS)?;
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let dver = r.read_varint()?;
                let mut present = [false; 2];
                for p in &mut present {
                    *p = r.read_bool()?;
                }
                let mut vals = [0i64; 2];
                for (v, p) in vals.iter_mut().zip(present) {
                    if p {
                        *v = r.read_signed()?;
                    }
                }
                Some(FrameItem::BandDelta {
                    query,
                    dver,
                    dinner: vals[0],
                    douter: vals[1],
                })
            }
            DOWN_ANSWER_FULL | DOWN_ANSWER_DELTA => AnswerUpdate::decode(r).map(FrameItem::Answer),
            DOWN_PROBE_PING => {
                r.read_bits(DOWN_TAG_BITS)?;
                Some(FrameItem::ProbePing {
                    query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                })
            }
            DOWN_ACK_PING => {
                r.read_bits(DOWN_TAG_BITS)?;
                Some(FrameItem::AckPing {
                    query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                    kind: crate::MsgKind::from_code(r.read_bits(KIND_BITS)?)?,
                })
            }
            _ => None,
        }
    }

    fn wire_bits(&self) -> usize {
        let tag = DOWN_TAG_BITS as usize;
        match self {
            FrameItem::Full(m) => m.wire_bits(),
            FrameItem::RegionRefresh { query } => tag + id_bits(query.0),
            FrameItem::RegionDelta {
                query,
                dver,
                dcx,
                dcy,
                dvx,
                dvy,
                dr,
            } => {
                tag + id_bits(query.0)
                    + varint_bits(*dver)
                    + 5
                    + [dcx, dcy, dvx, dvy, dr]
                        .iter()
                        .filter(|d| ***d != 0)
                        .map(|d| signed_bits(**d))
                        .sum::<usize>()
            }
            FrameItem::BandDelta {
                query,
                dver,
                dinner,
                douter,
            } => {
                tag + id_bits(query.0)
                    + varint_bits(*dver)
                    + 2
                    + [dinner, douter]
                        .iter()
                        .filter(|d| ***d != 0)
                        .map(|d| signed_bits(**d))
                        .sum::<usize>()
            }
            FrameItem::ProbePing { query } => tag + id_bits(query.0),
            FrameItem::AckPing { query, .. } => tag + id_bits(query.0) + KIND_BITS as usize,
            FrameItem::Answer(a) => a.wire_bits(),
        }
    }
}

/// Header bits of one per-device frame: the link-layer overhead the frame
/// pays once for all its items, plus the tick sequence number and item
/// count the receiver needs to slice the payload.
pub fn frame_header_bits(tick: Tick, items: usize) -> usize {
    LINK_HEADER_BITS + varint_bits(tick) + varint_bits(items as u64)
}

/// Total bits of one per-device frame.
pub fn frame_bits(tick: Tick, items: &[FrameItem]) -> usize {
    frame_header_bits(tick, items.len()) + items.iter().map(|i| i.wire_bits()).sum::<usize>()
}

// ---- delta/ack state ------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct RegionState {
    ver: Tick,
    center: Point,
    vel: Vector,
    r_out: f64,
}

#[derive(Debug, Clone, PartialEq)]
struct BandState {
    ver: Tick,
    inner: f64,
    outer: f64,
}

/// Everything one device acked about one query.
#[derive(Debug, Clone, Default, PartialEq)]
struct QueryRepl {
    region: Option<RegionState>,
    band: Option<BandState>,
    answer: Option<Vec<ObjectId>>,
}

impl QueryRepl {
    fn is_empty(&self) -> bool {
        self.region.is_none() && self.band.is_none() && self.answer.is_none()
    }
}

/// Per-device replication state.
#[derive(Debug, Clone, Default)]
struct DeviceRepl {
    queries: BTreeMap<u32, QueryRepl>,
    /// The device was in an offline churn window when a frame was due: its
    /// mirror cannot be trusted across the rejoin, so the next send of
    /// state it used to hold goes out in full. Cleared by the next fully
    /// delivered frame. (Mere loss/delay does *not* set this — it only
    /// stalls the acked baseline, which stays a valid delta base.)
    gapped: bool,
}

/// What the fault layer did with a staged send this tick, as reported to
/// the ack state machine by the router (which alone sees the link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// At least one on-time copy reached the inbox: the staged state
    /// commits as acked.
    Delivered,
    /// Every copy was lost or delayed while the device was online: the
    /// acked baseline stalls (staged state rolls back) but stays a valid
    /// delta base for the next send.
    Lost,
    /// The device was inside an offline churn window: baseline rolls back
    /// *and* the mirror is distrusted — the rejoin send falls back to full
    /// snapshots.
    Offline,
}

/// The server side of the delta/ack state machine: what every device last
/// acked, per query. Persists across ticks; one per episode.
#[derive(Debug, Default)]
pub struct ReplStore {
    devices: BTreeMap<u32, DeviceRepl>,
}

impl ReplStore {
    /// An empty store (no device has acked anything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the staging builder for one tick. Stage every downlink of the
    /// tick, then call [`DownlinkBuilder::flush_frames`] exactly once.
    pub fn begin_tick(&mut self, tick: Tick) -> DownlinkBuilder<'_> {
        DownlinkBuilder {
            store: self,
            tick,
            staged: BTreeMap::new(),
        }
    }

    /// Number of devices holding any replication state (test hook).
    pub fn tracked_devices(&self) -> usize {
        self.devices.len()
    }
}

/// One staged message to one device, with what the fault layer did to it.
#[derive(Debug)]
enum StagedMsg {
    Proto(DownlinkMsg),
    Answer {
        query: QueryId,
        members: Vec<ObjectId>,
        ordered: bool,
    },
}

#[derive(Debug)]
struct Staged {
    msg: StagedMsg,
    delivery: Delivery,
}

#[derive(Debug, Default)]
struct DeviceStage {
    items: Vec<Staged>,
    all_delivered: bool,
    any_offline: bool,
    any: bool,
}

/// The two-phase tick API of the scoped downlink: `scope()` resolves
/// interest, `stage()` collects the tick's sends, `flush_frames()` encodes
/// one frame per device and charges it. Created by [`ReplStore::begin_tick`].
#[derive(Debug)]
pub struct DownlinkBuilder<'a> {
    store: &'a mut ReplStore,
    tick: Tick,
    staged: BTreeMap<u32, DeviceStage>,
}

impl DownlinkBuilder<'_> {
    /// Resolves a send into the devices interested in it: the addressee of
    /// a unicast, or — for a geocast — the devices inside the zone (region
    /// members and imminent entrants), resolved by the caller-supplied
    /// spatial lookup. `None` for broadcasts: system-wide floods have no
    /// interest set and stay on the legacy path.
    pub fn scope(
        recipient: &Recipient,
        range: impl FnOnce(&Circle) -> Vec<ObjectId>,
    ) -> Option<Vec<ObjectId>> {
        match recipient {
            Recipient::One(id) => Some(vec![*id]),
            Recipient::Geocast(zone) => Some(range(zone)),
            Recipient::Broadcast => None,
        }
    }

    /// Stages one protocol message to one device. `delivery` reports what
    /// the fault layer did with the copy this tick; it gates the ack state
    /// machine, never the encoding choice — the server picks the encoding
    /// before learning the fate.
    pub fn stage(&mut self, device: ObjectId, msg: DownlinkMsg, delivery: Delivery) {
        let e = self.entry(device);
        e.items.push(Staged {
            msg: StagedMsg::Proto(msg),
            delivery,
        });
        e.all_delivered &= delivery == Delivery::Delivered;
        e.any_offline |= delivery == Delivery::Offline;
        e.any = true;
    }

    /// Stages an answer push: the query's current member list, bound for
    /// its focal device. `ordered` says whether rank order is part of the
    /// answer contract (ordered protocols) or only membership is (set
    /// protocols; pass the canonical ascending-id list).
    pub fn stage_answer(
        &mut self,
        device: ObjectId,
        query: QueryId,
        members: Vec<ObjectId>,
        ordered: bool,
        delivery: Delivery,
    ) {
        let e = self.entry(device);
        e.items.push(Staged {
            msg: StagedMsg::Answer {
                query,
                members,
                ordered,
            },
            delivery,
        });
        e.all_delivered &= delivery == Delivery::Delivered;
        e.any_offline |= delivery == Delivery::Offline;
        e.any = true;
    }

    fn entry(&mut self, device: ObjectId) -> &mut DeviceStage {
        self.staged.entry(device.0).or_insert_with(|| DeviceStage {
            items: Vec::new(),
            all_delivered: true,
            any_offline: false,
            any: false,
        })
    }

    /// Encodes one frame per staged device (ascending device id), charges
    /// each into `stats` (`frames`, `downlink_bytes`, `frame_header_bytes`,
    /// `delta_full_fallbacks`), and advances the delta/ack state machine.
    ///
    /// Commits are per *item*: every staged copy made its own fault draw,
    /// so the device's mirror advances by exactly the items that reached
    /// its inbox — delivered items commit their slot of acked state, lost
    /// or delayed items leave theirs untouched (the stalled baseline stays
    /// a valid delta base for the next send). An offline window marks the
    /// device gapped: the rejoin send re-sends held state in full, and the
    /// first fully delivered frame re-arms delta encoding.
    pub fn flush_frames(self, stats: &mut NetStats) {
        for (dev, stage) in self.staged {
            if !stage.any {
                continue;
            }
            let entry = self.store.devices.entry(dev).or_default();
            let mut fallbacks = 0u64;
            let mut items = Vec::with_capacity(stage.items.len());
            for staged in &stage.items {
                let commit = staged.delivery == Delivery::Delivered;
                let item = encode_one(entry, &staged.msg, commit, &mut fallbacks);
                items.push(item);
            }
            let header = frame_header_bits(self.tick, items.len());
            let payload: usize = items.iter().map(|i| i.wire_bits()).sum();
            let ack_bits: usize = items
                .iter()
                .filter(|i| i.is_ack())
                .map(|i| i.wire_bits())
                .sum();
            let frame_bytes = (header + payload).div_ceil(8);
            let payload_bytes = payload.div_ceil(8);
            stats.count_frame(frame_bytes as u64, (frame_bytes - payload_bytes) as u64);
            stats.ack_bytes += ack_bits.div_ceil(8) as u64;
            stats.delta_full_fallbacks += fallbacks;
            if stage.all_delivered {
                entry.gapped = false;
            } else if stage.any_offline {
                entry.gapped = true;
            }
            entry.queries.retain(|_, q| !q.is_empty());
            if entry.queries.is_empty() && !entry.gapped {
                self.store.devices.remove(&dev);
            }
        }
    }
}

/// Picks the cheapest encoding of a staged message the device can decode
/// given its acked state, commits that state when the copy was delivered
/// (`commit`), and counts a fallback when a churn gap forced a full
/// re-send of state the device used to hold.
fn encode_one(
    dev: &mut DeviceRepl,
    msg: &StagedMsg,
    commit: bool,
    fallbacks: &mut u64,
) -> FrameItem {
    match msg {
        StagedMsg::Proto(msg) => encode_proto(dev, msg, commit, fallbacks),
        StagedMsg::Answer {
            query,
            members,
            ordered,
        } => encode_answer(dev, *query, members, *ordered, commit, fallbacks),
    }
}

fn encode_proto(
    dev: &mut DeviceRepl,
    msg: &DownlinkMsg,
    commit: bool,
    fallbacks: &mut u64,
) -> FrameItem {
    let gapped = dev.gapped;
    match *msg {
        DownlinkMsg::InstallRegion {
            query,
            ver,
            center,
            vel,
            r_out,
        } => {
            let q = dev.queries.entry(query.0).or_default();
            let item = match (&q.region, gapped) {
                (Some(acked), false) if acked.ver == ver => {
                    // Heartbeat: same version, geometry already on device.
                    FrameItem::RegionRefresh { query }
                }
                (Some(acked), false) if ver > acked.ver => {
                    let dt = (ver - acked.ver) as f64;
                    let pred = Point::new(
                        acked.center.x + acked.vel.x * dt,
                        acked.center.y + acked.vel.y * dt,
                    );
                    let delta = FrameItem::RegionDelta {
                        query,
                        dver: ver - acked.ver,
                        dcx: wire::quantize(center.x) - wire::quantize(pred.x),
                        dcy: wire::quantize(center.y) - wire::quantize(pred.y),
                        dvx: wire::quantize(vel.x) - wire::quantize(acked.vel.x),
                        dvy: wire::quantize(vel.y) - wire::quantize(acked.vel.y),
                        dr: wire::quantize(r_out) - wire::quantize(acked.r_out),
                    };
                    let full = FrameItem::Full(*msg);
                    if delta.wire_bits() < full.wire_bits() {
                        delta
                    } else {
                        full
                    }
                }
                (prior, _) => {
                    if gapped && prior.is_some() {
                        *fallbacks += 1;
                    }
                    FrameItem::Full(*msg)
                }
            };
            if commit {
                q.region = Some(RegionState {
                    ver,
                    center,
                    vel,
                    r_out,
                });
            }
            item
        }
        DownlinkMsg::SetBand {
            query,
            ver,
            inner,
            outer,
        } => {
            let q = dev.queries.entry(query.0).or_default();
            let item = match (&q.band, gapped) {
                (Some(acked), false)
                    if ver >= acked.ver && acked.outer.is_finite() && outer.is_finite() =>
                {
                    let delta = FrameItem::BandDelta {
                        query,
                        dver: ver - acked.ver,
                        dinner: wire::quantize(inner) - wire::quantize(acked.inner),
                        douter: wire::quantize(outer) - wire::quantize(acked.outer),
                    };
                    let full = FrameItem::Full(*msg);
                    if delta.wire_bits() < full.wire_bits() {
                        delta
                    } else {
                        full
                    }
                }
                (prior, _) => {
                    if gapped && prior.is_some() {
                        *fallbacks += 1;
                    }
                    FrameItem::Full(*msg)
                }
            };
            if commit {
                q.band = Some(BandState { ver, inner, outer });
            }
            item
        }
        DownlinkMsg::RemoveRegion { query } => {
            if commit {
                dev.queries.remove(&query.0);
            }
            FrameItem::Full(*msg)
        }
        DownlinkMsg::ClearBand { query } => {
            if commit {
                if let Some(q) = dev.queries.get_mut(&query.0) {
                    q.band = None;
                }
            }
            FrameItem::Full(*msg)
        }
        // A probe's zone is addressing, already resolved by the scope pass:
        // the per-device copy is just the query tag the reply echoes.
        DownlinkMsg::Probe { query, .. } => FrameItem::ProbePing { query },
        // Acks are one-shot RPC legs: no replicated state, and the version
        // is transport bookkeeping the device's retransmit slot already
        // knows — only the (query, kind) correlation rides the wire.
        DownlinkMsg::Ack { query, kind, .. } => FrameItem::AckPing { query, kind },
    }
}

fn encode_answer(
    dev: &mut DeviceRepl,
    query: QueryId,
    members: &[ObjectId],
    ordered: bool,
    commit: bool,
    fallbacks: &mut u64,
) -> FrameItem {
    let gapped = dev.gapped;
    let q = dev.queries.entry(query.0).or_default();
    let full = FrameItem::Answer(AnswerUpdate::Full {
        query,
        members: members.to_vec(),
    });
    let item = match (&q.answer, gapped) {
        (Some(acked), false) => {
            let (delta, reconstructed) = answer_delta(query, acked, members, ordered);
            let delta = FrameItem::Answer(delta);
            if delta.wire_bits() < full.wire_bits() {
                // The device applies the diff: its list becomes the
                // reconstruction, which is what future diffs index into.
                if commit {
                    q.answer = Some(reconstructed);
                }
                return delta;
            }
            full
        }
        (prior, _) => {
            if gapped && prior.is_some() {
                *fallbacks += 1;
            }
            full
        }
    };
    if commit {
        q.answer = Some(members.to_vec());
    }
    item
}

/// Builds the diff from `old` (the acked list) to `new`, returning the
/// update and the list the device will hold after applying it.
fn answer_delta(
    query: QueryId,
    old: &[ObjectId],
    new: &[ObjectId],
    ordered: bool,
) -> (AnswerUpdate, Vec<ObjectId>) {
    let removed: Vec<u32> = old
        .iter()
        .enumerate()
        .filter(|(_, m)| !new.contains(m))
        .map(|(i, _)| i as u32)
        .collect();
    let added: Vec<ObjectId> = new.iter().filter(|m| !old.contains(m)).copied().collect();
    // Natural order: acked survivors in acked order, then the additions.
    let mut natural: Vec<ObjectId> = old.iter().filter(|m| new.contains(m)).copied().collect();
    natural.extend(added.iter().copied());
    let order = if ordered && natural != new {
        Some(
            new.iter()
                .map(|m| {
                    natural
                        .iter()
                        .position(|n| n == m)
                        .expect("member in natural") as u32
                })
                .collect(),
        )
    } else {
        None
    };
    let reconstructed = if order.is_some() {
        new.to_vec()
    } else {
        natural
    };
    (
        AnswerUpdate::Delta {
            query,
            removed,
            added,
            order,
        },
        reconstructed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgKind;

    fn install(ver: Tick, x: f64) -> DownlinkMsg {
        DownlinkMsg::InstallRegion {
            query: QueryId(1),
            ver,
            center: Point::new(x, 50.0),
            vel: Vector::new(1.0, 0.0),
            r_out: 120.0,
        }
    }

    #[test]
    fn heartbeat_becomes_refresh_after_ack() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(7);
        // First contact: full.
        let mut b = store.begin_tick(1);
        b.stage(dev, install(1, 100.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        let first_bytes = stats.downlink_bytes;
        // Heartbeat of the same version: tiny refresh.
        let mut b = store.begin_tick(4);
        b.stage(dev, install(1, 100.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        let refresh_bytes = stats.downlink_bytes - first_bytes;
        assert!(
            refresh_bytes * 2 < first_bytes,
            "refresh {refresh_bytes} vs full {first_bytes}"
        );
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.delta_full_fallbacks, 0);
    }

    #[test]
    fn version_bump_with_steady_velocity_is_a_small_delta() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(7);
        let mut b = store.begin_tick(1);
        b.stage(dev, install(1, 100.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        let first = stats.downlink_bytes;
        // New version, center exactly where dead reckoning predicts.
        let mut b = store.begin_tick(6);
        b.stage(dev, install(6, 105.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        // The frame header is fixed, so compare the payloads: the delta
        // (perfect dead-reckoning: all residuals zero) is much smaller
        // than repeating the geometry.
        let delta = stats.downlink_bytes - first;
        assert!(delta < first, "delta {delta} vs full {first}");
        let delta_payload = delta - frame_header_bits(6, 1).div_ceil(8) as u64;
        let full_payload = first - frame_header_bits(1, 1).div_ceil(8) as u64;
        assert!(
            delta_payload < full_payload,
            "payloads {delta_payload} vs {full_payload}"
        );
        // All five residuals are zero: one varint each.
        assert!(delta_payload <= 8, "payload {delta_payload}");
    }

    #[test]
    fn lost_frames_stall_the_baseline_but_keep_deltas_armed() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(7);
        let mut b = store.begin_tick(1);
        b.stage(dev, install(1, 100.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        let first = stats.downlink_bytes;
        // The next frame is lost: its staged state must not commit, but the
        // original baseline stays a valid delta base.
        let mut b = store.begin_tick(2);
        b.stage(dev, install(2, 101.0), Delivery::Lost);
        b.flush_frames(&mut stats);
        assert_eq!(stats.delta_full_fallbacks, 0);
        let before = stats.downlink_bytes;
        // Next send deltas against the ver-1 state the device still holds
        // (dead reckoning from x=100 at v=1 predicts x=102 exactly).
        let mut b = store.begin_tick(3);
        b.stage(dev, install(3, 102.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert_eq!(stats.delta_full_fallbacks, 0);
        let delta = stats.downlink_bytes - before;
        assert!(delta * 2 < first, "delta {delta} vs full {first}");
    }

    #[test]
    fn offline_windows_gap_the_device_and_force_a_counted_full() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(7);
        let mut b = store.begin_tick(1);
        b.stage(dev, install(1, 100.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        // A send into an offline churn window: rolls back AND distrusts the
        // device's mirror across the rejoin.
        let mut b = store.begin_tick(2);
        b.stage(dev, install(2, 101.0), Delivery::Offline);
        b.flush_frames(&mut stats);
        assert_eq!(stats.delta_full_fallbacks, 0);
        let before = stats.downlink_bytes;
        // Rejoin: the server re-sends in full and counts the fallback.
        let mut b = store.begin_tick(3);
        b.stage(dev, install(3, 102.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert_eq!(stats.delta_full_fallbacks, 1);
        let resync = stats.downlink_bytes - before;
        // Back in sync: heartbeats are refreshes again.
        let before = stats.downlink_bytes;
        let mut b = store.begin_tick(4);
        b.stage(dev, install(3, 102.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert!(stats.downlink_bytes - before < resync);
        assert_eq!(stats.delta_full_fallbacks, 1);
    }

    #[test]
    fn frames_coalesce_and_split_header_from_payload() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let mut b = store.begin_tick(9);
        // Three messages to one device, one to another: two frames.
        b.stage(ObjectId(1), install(1, 10.0), Delivery::Delivered);
        b.stage(
            ObjectId(1),
            DownlinkMsg::SetBand {
                query: QueryId(1),
                ver: 1,
                inner: 10.0,
                outer: 20.0,
            },
            Delivery::Delivered,
        );
        b.stage(
            ObjectId(1),
            DownlinkMsg::Ack {
                query: QueryId(1),
                ver: 1,
                kind: MsgKind::Enter,
            },
            Delivery::Delivered,
        );
        b.stage(ObjectId(2), install(1, 10.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert_eq!(stats.frames, 2);
        assert!(stats.frame_header_bytes >= 2 * (LINK_HEADER_BITS as u64 / 8));
        assert!(stats.downlink_bytes > stats.frame_header_bytes);
        // Coalescing beats three unframed sends: the link header is paid
        // once, not three times.
        let unframed: usize = [
            install(1, 10.0).size_bytes(),
            DownlinkMsg::SetBand {
                query: QueryId(1),
                ver: 1,
                inner: 10.0,
                outer: 20.0,
            }
            .size_bytes(),
            DownlinkMsg::Ack {
                query: QueryId(1),
                ver: 1,
                kind: MsgKind::Enter,
            }
            .size_bytes(),
        ]
        .iter()
        .sum();
        let frame_one: usize = {
            let items = [
                FrameItem::Full(install(1, 10.0)),
                FrameItem::Full(DownlinkMsg::SetBand {
                    query: QueryId(1),
                    ver: 1,
                    inner: 10.0,
                    outer: 20.0,
                }),
                FrameItem::AckPing {
                    query: QueryId(1),
                    kind: MsgKind::Enter,
                },
            ];
            frame_bits(9, &items).div_ceil(8)
        };
        assert!(
            frame_one < unframed,
            "frame {frame_one} vs unframed {unframed}"
        );
    }

    #[test]
    fn acks_ride_frames_as_counted_wire_traffic() {
        // An acked uplink costs real downlink bytes now (satellite of the
        // crash/failover PR): the frame carries an AckPing and the tally
        // surfaces in the informational `ack_bytes` share.
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let mut b = store.begin_tick(3);
        b.stage(
            ObjectId(4),
            DownlinkMsg::Ack {
                query: QueryId(1),
                ver: 7,
                kind: MsgKind::Enter,
            },
            Delivery::Delivered,
        );
        b.flush_frames(&mut stats);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.ack_bytes, 2, "tag + small id + kind ≈ 2 bytes");
        assert!(stats.ack_bytes <= stats.downlink_bytes);
        // The ping itself is far cheaper than the unframed Ack struct.
        let ping = FrameItem::AckPing {
            query: QueryId(1),
            kind: MsgKind::Enter,
        };
        let full = DownlinkMsg::Ack {
            query: QueryId(1),
            ver: 7,
            kind: MsgKind::Enter,
        };
        assert!(ping.wire_bits() < full.wire_bits());
        // Non-ack traffic never touches the share.
        let mut b = store.begin_tick(4);
        b.stage(ObjectId(4), install(1, 10.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert_eq!(stats.ack_bytes, 2);
    }

    #[test]
    fn answer_small_churn_is_a_delta_and_big_churn_falls_back_to_full() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(3);
        let q = QueryId(0);
        let first: Vec<ObjectId> = (1000..1010).map(ObjectId).collect();
        let mut b = store.begin_tick(1);
        b.stage_answer(dev, q, first.clone(), false, Delivery::Delivered);
        b.flush_frames(&mut stats);
        let full_bytes = stats.downlink_bytes;
        // One member swaps: tiny delta.
        let mut second = first.clone();
        second[4] = ObjectId(1099);
        second.sort_unstable_by_key(|m| m.0);
        let mut b = store.begin_tick(2);
        b.stage_answer(dev, q, second.clone(), false, Delivery::Delivered);
        b.flush_frames(&mut stats);
        let delta_bytes = stats.downlink_bytes - full_bytes;
        assert!(
            delta_bytes * 2 < full_bytes,
            "{delta_bytes} vs {full_bytes}"
        );
        // Everything churns: the delta would cost more, a full is sent.
        let third: Vec<ObjectId> = (2200..2210).map(ObjectId).collect();
        let before = stats.downlink_bytes;
        let mut b = store.begin_tick(3);
        b.stage_answer(dev, q, third, false, Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert!(stats.downlink_bytes - before >= full_bytes - 2);
    }

    #[test]
    fn ordered_answers_reorder_without_resending_ids() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(3);
        let q = QueryId(0);
        // Realistic ids are wider than rank indices, so a permutation is
        // cheaper than resending the list.
        let first: Vec<ObjectId> = (1000..1008).map(ObjectId).collect();
        let mut b = store.begin_tick(1);
        b.stage_answer(dev, q, first.clone(), true, Delivery::Delivered);
        b.flush_frames(&mut stats);
        let full_bytes = stats.downlink_bytes;
        // Same set, ranks 0 and 1 swapped: a permutation, no ids.
        let mut swapped = first.clone();
        swapped.swap(0, 1);
        let mut b = store.begin_tick(2);
        b.stage_answer(dev, q, swapped, true, Delivery::Delivered);
        b.flush_frames(&mut stats);
        let delta = stats.downlink_bytes - full_bytes;
        assert!(delta < full_bytes, "reorder {delta} vs full {full_bytes}");
    }

    #[test]
    fn scope_resolves_unicast_and_geocast_but_not_broadcast() {
        let one = DownlinkBuilder::scope(&Recipient::One(ObjectId(5)), |_| unreachable!());
        assert_eq!(one, Some(vec![ObjectId(5)]));
        let zone = Circle::new(Point::new(10.0, 10.0), 5.0);
        let geo = DownlinkBuilder::scope(&Recipient::Geocast(zone), |z| {
            assert_eq!(z.radius, 5.0);
            vec![ObjectId(1), ObjectId(2)]
        });
        assert_eq!(geo, Some(vec![ObjectId(1), ObjectId(2)]));
        assert_eq!(
            DownlinkBuilder::scope(&Recipient::Broadcast, |_| unreachable!()),
            None
        );
    }

    #[test]
    fn store_prunes_devices_with_no_state() {
        let mut store = ReplStore::new();
        let mut stats = NetStats::default();
        let dev = ObjectId(1);
        let mut b = store.begin_tick(1);
        b.stage(dev, install(1, 10.0), Delivery::Delivered);
        b.flush_frames(&mut stats);
        assert_eq!(store.tracked_devices(), 1);
        let mut b = store.begin_tick(2);
        b.stage(
            dev,
            DownlinkMsg::RemoveRegion { query: QueryId(1) },
            Delivery::Delivered,
        );
        b.flush_frames(&mut stats);
        assert_eq!(store.tracked_devices(), 0);
    }

    #[test]
    fn frame_items_round_trip_and_match_wire_bits() {
        let items = vec![
            FrameItem::Full(install(3, 25.5)),
            FrameItem::RegionRefresh { query: QueryId(12) },
            FrameItem::RegionDelta {
                query: QueryId(12),
                dver: 5,
                dcx: -3,
                dcy: 2,
                dvx: 0,
                dvy: -256,
                dr: 128,
            },
            FrameItem::BandDelta {
                query: QueryId(12),
                dver: 0,
                dinner: -512,
                douter: 512,
            },
            FrameItem::Answer(AnswerUpdate::Full {
                query: QueryId(2),
                members: vec![ObjectId(4), ObjectId(1000), ObjectId(0)],
            }),
            FrameItem::Answer(AnswerUpdate::Delta {
                query: QueryId(2),
                removed: vec![0, 7],
                added: vec![ObjectId(88)],
                order: None,
            }),
            FrameItem::AckPing {
                query: QueryId(9),
                kind: MsgKind::BandCross,
            },
        ];
        for item in &items {
            let mut w = BitWriter::new();
            item.encode(&mut w);
            assert_eq!(w.bit_len(), item.wire_bits(), "{item:?}");
            let (bytes, _) = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(FrameItem::decode(&mut r).as_ref(), Some(item));
            assert_eq!(r.bits_read(), item.wire_bits(), "{item:?}");
        }
        // A whole frame's payload decodes item by item.
        let mut w = BitWriter::new();
        for item in &items {
            item.encode(&mut w);
        }
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        for item in &items {
            assert_eq!(FrameItem::decode(&mut r).as_ref(), Some(item));
        }
    }
}
