//! The bit-packed wire format: the single sizing authority for every
//! message the workspace sends.
//!
//! Every [`UplinkMsg`], [`DownlinkMsg`] and [`ShardMsg`] variant implements
//! [`Wire`]: a real `encode`/`decode` pair over
//! [`mknn_util::bits::BitWriter`]/[`BitReader`], plus an *analytic*
//! [`Wire::wire_bits`] that computes the encoded length with pure integer
//! arithmetic (no buffer) so the hot-path byte accounting stays O(1) per
//! message. A property suite pins `wire_bits` to the measured length of
//! `encode` for every variant (`crates/net/tests/wire_props.rs`).
//!
//! Layout conventions:
//!
//! * ids, ticks and counts are LEB128-style varints ([`varint_bits`]),
//! * coordinates are quantized to a 1/[`QUANT_SCALE`] m lattice and carried
//!   as zigzag varints ([`quantize`]; worst-case error [`QUANT_ERROR`]),
//! * the one legitimately infinite field (`SetBand::outer`, the outermost
//!   non-answer band) spends a flag bit instead of a sentinel value,
//! * modeled-but-not-carried payloads (shard candidate entries, tunneled
//!   forwards) are written as zero bits of the modeled width so encoded
//!   length and `wire_bits` agree exactly.
//!
//! [`DownlinkMsg`] tags are 4 bits wide even though only six full-message
//! tags exist: codes 6..=10 belong to the delta/answer encodings of the
//! frame layer (`crate::downlink`), which shares this tag space so a framed
//! payload needs no second discriminator.

use crate::{DownlinkMsg, MsgKind, ShardMsg, UplinkMsg};
use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};
use mknn_util::bits::{signed_bits, varint_bits, BitReader, BitWriter};

/// Coordinate lattice density: positions are carried as multiples of
/// `1 / QUANT_SCALE` meters (9.8 mm steps at 256).
pub const QUANT_SCALE: f64 = 256.0;

/// Worst-case absolute error a quantized coordinate can carry
/// (half a lattice step).
pub const QUANT_ERROR: f64 = 0.5 / QUANT_SCALE;

/// Modeled link-layer overhead per *unframed* transmission, in bits:
/// addressing and sequencing the radio spends on every standalone packet.
/// Per-tick frames pay it once per frame instead — that amortization is the
/// point of frame batching.
pub const LINK_HEADER_BITS: usize = 16;

/// Tag width of [`UplinkMsg`] (6 variants).
pub(crate) const UP_TAG_BITS: u32 = 3;
/// Tag width of [`DownlinkMsg`] *and* the frame-layer delta encodings that
/// extend its tag space (codes 6..=10).
pub(crate) const DOWN_TAG_BITS: u32 = 4;
/// Tag width of [`ShardMsg`] (6 variants).
pub(crate) const SHARD_TAG_BITS: u32 = 3;
/// Width of an encoded [`MsgKind`] code (13 kinds).
pub(crate) const KIND_BITS: u32 = 4;

/// Modeled width of one `(object id, distance)` candidate entry inside a
/// shard partial-answer merge leg: a 2-byte id share plus a 3-byte
/// quantized distance.
pub const PARTIAL_ENTRY_BITS: usize = 40;

/// Modeled width of one member entry inside a query-state migration: id,
/// quantized last-known position, and lease bookkeeping.
pub const MEMBER_ENTRY_BITS: usize = 72;

/// Modeled width of one replayed object entry inside a post-crash recovery
/// sweep: id, quantized position and velocity — the same shape a
/// [`ShardMsg::Handoff`] carries, packed as a batch entry.
pub const RECOVER_ENTRY_BITS: usize = 72;

/// Snaps a coordinate onto the wire lattice. Non-finite inputs saturate
/// (`NaN` → 0) — only [`DownlinkMsg::SetBand`]'s `outer` legitimately
/// carries ∞ and it is flagged, not quantized.
#[inline]
pub fn quantize(x: f64) -> i64 {
    (x * QUANT_SCALE).round() as i64
}

/// Inverse of [`quantize`] (exact for lattice-aligned values).
#[inline]
pub fn dequantize(q: i64) -> f64 {
    q as f64 / QUANT_SCALE
}

/// A message that can be carried on the bit-packed wire.
///
/// The contract, property-tested for every variant:
/// `decode(encode(m)) == m` for lattice-aligned coordinates, and
/// `wire_bits(m)` equals the exact number of bits `encode(m)` appends.
pub trait Wire: Sized {
    /// Appends this message's encoding to `w`.
    fn encode(&self, w: &mut BitWriter);
    /// Parses one message from `r`. `None` on truncation or an unknown tag.
    fn decode(r: &mut BitReader) -> Option<Self>;
    /// Exact encoded length in bits, computed without writing.
    fn wire_bits(&self) -> usize;
}

// ---- field codecs ---------------------------------------------------------

#[inline]
pub(crate) fn write_point(w: &mut BitWriter, p: Point) {
    w.write_signed(quantize(p.x));
    w.write_signed(quantize(p.y));
}

#[inline]
pub(crate) fn read_point(r: &mut BitReader) -> Option<Point> {
    let x = r.read_signed()?;
    let y = r.read_signed()?;
    Some(Point::new(dequantize(x), dequantize(y)))
}

#[inline]
pub(crate) fn point_bits(p: Point) -> usize {
    signed_bits(quantize(p.x)) + signed_bits(quantize(p.y))
}

#[inline]
pub(crate) fn write_vector(w: &mut BitWriter, v: Vector) {
    w.write_signed(quantize(v.x));
    w.write_signed(quantize(v.y));
}

#[inline]
pub(crate) fn read_vector(r: &mut BitReader) -> Option<Vector> {
    let x = r.read_signed()?;
    let y = r.read_signed()?;
    Some(Vector::new(dequantize(x), dequantize(y)))
}

#[inline]
pub(crate) fn vector_bits(v: Vector) -> usize {
    signed_bits(quantize(v.x)) + signed_bits(quantize(v.y))
}

#[inline]
pub(crate) fn write_scalar(w: &mut BitWriter, s: f64) {
    w.write_signed(quantize(s));
}

#[inline]
pub(crate) fn read_scalar(r: &mut BitReader) -> Option<f64> {
    r.read_signed().map(dequantize)
}

#[inline]
pub(crate) fn scalar_bits(s: f64) -> usize {
    signed_bits(quantize(s))
}

/// A radius that may be `f64::INFINITY`: one flag bit, then the quantized
/// value only when finite.
#[inline]
pub(crate) fn write_radius_or_inf(w: &mut BitWriter, r: f64) {
    if r.is_infinite() && r > 0.0 {
        w.write_bool(true);
    } else {
        w.write_bool(false);
        write_scalar(w, r);
    }
}

#[inline]
pub(crate) fn read_radius_or_inf(r: &mut BitReader) -> Option<f64> {
    if r.read_bool()? {
        Some(f64::INFINITY)
    } else {
        read_scalar(r)
    }
}

#[inline]
pub(crate) fn radius_or_inf_bits(r: f64) -> usize {
    if r.is_infinite() && r > 0.0 {
        1
    } else {
        1 + scalar_bits(r)
    }
}

#[inline]
pub(crate) fn id_bits(id: u32) -> usize {
    varint_bits(id as u64)
}

impl MsgKind {
    /// Stable wire code: the kind's index in [`MsgKind::ALL`].
    pub(crate) fn code(self) -> u64 {
        MsgKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind in ALL") as u64
    }

    /// Inverse of [`MsgKind::code`].
    pub(crate) fn from_code(code: u64) -> Option<MsgKind> {
        MsgKind::ALL.get(code as usize).copied()
    }
}

// ---- uplinks --------------------------------------------------------------

const UP_POSITION: u64 = 0;
const UP_ENTER: u64 = 1;
const UP_LEAVE: u64 = 2;
const UP_BAND_CROSS: u64 = 3;
const UP_PROBE_REPLY: u64 = 4;
const UP_QUERY_MOVE: u64 = 5;

impl Wire for UplinkMsg {
    fn encode(&self, w: &mut BitWriter) {
        match *self {
            UplinkMsg::Position { pos, vel } => {
                w.write_bits(UP_POSITION, UP_TAG_BITS);
                write_point(w, pos);
                write_vector(w, vel);
            }
            UplinkMsg::Enter {
                query,
                ver,
                pos,
                vel,
            } => {
                w.write_bits(UP_ENTER, UP_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(ver);
                write_point(w, pos);
                write_vector(w, vel);
            }
            UplinkMsg::Leave { query, ver, pos } => {
                w.write_bits(UP_LEAVE, UP_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(ver);
                write_point(w, pos);
            }
            UplinkMsg::BandCross {
                query,
                ver,
                pos,
                vel,
            } => {
                w.write_bits(UP_BAND_CROSS, UP_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(ver);
                write_point(w, pos);
                write_vector(w, vel);
            }
            UplinkMsg::ProbeReply { query, pos, vel } => {
                w.write_bits(UP_PROBE_REPLY, UP_TAG_BITS);
                w.write_varint(query.0 as u64);
                write_point(w, pos);
                write_vector(w, vel);
            }
            UplinkMsg::QueryMove { query, pos, vel } => {
                w.write_bits(UP_QUERY_MOVE, UP_TAG_BITS);
                w.write_varint(query.0 as u64);
                write_point(w, pos);
                write_vector(w, vel);
            }
        }
    }

    fn decode(r: &mut BitReader) -> Option<Self> {
        match r.read_bits(UP_TAG_BITS)? {
            UP_POSITION => Some(UplinkMsg::Position {
                pos: read_point(r)?,
                vel: read_vector(r)?,
            }),
            UP_ENTER => Some(UplinkMsg::Enter {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                ver: r.read_varint()?,
                pos: read_point(r)?,
                vel: read_vector(r)?,
            }),
            UP_LEAVE => Some(UplinkMsg::Leave {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                ver: r.read_varint()?,
                pos: read_point(r)?,
            }),
            UP_BAND_CROSS => Some(UplinkMsg::BandCross {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                ver: r.read_varint()?,
                pos: read_point(r)?,
                vel: read_vector(r)?,
            }),
            UP_PROBE_REPLY => Some(UplinkMsg::ProbeReply {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                pos: read_point(r)?,
                vel: read_vector(r)?,
            }),
            UP_QUERY_MOVE => Some(UplinkMsg::QueryMove {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                pos: read_point(r)?,
                vel: read_vector(r)?,
            }),
            _ => None,
        }
    }

    fn wire_bits(&self) -> usize {
        let tag = UP_TAG_BITS as usize;
        match *self {
            UplinkMsg::Position { pos, vel } => tag + point_bits(pos) + vector_bits(vel),
            UplinkMsg::Enter {
                query,
                ver,
                pos,
                vel,
            } => tag + id_bits(query.0) + varint_bits(ver) + point_bits(pos) + vector_bits(vel),
            UplinkMsg::Leave { query, ver, pos } => {
                tag + id_bits(query.0) + varint_bits(ver) + point_bits(pos)
            }
            UplinkMsg::BandCross {
                query,
                ver,
                pos,
                vel,
            } => tag + id_bits(query.0) + varint_bits(ver) + point_bits(pos) + vector_bits(vel),
            UplinkMsg::ProbeReply { query, pos, vel } => {
                tag + id_bits(query.0) + point_bits(pos) + vector_bits(vel)
            }
            UplinkMsg::QueryMove { query, pos, vel } => {
                tag + id_bits(query.0) + point_bits(pos) + vector_bits(vel)
            }
        }
    }
}

// ---- downlinks ------------------------------------------------------------

pub(crate) const DOWN_INSTALL_REGION: u64 = 0;
pub(crate) const DOWN_REMOVE_REGION: u64 = 1;
pub(crate) const DOWN_PROBE: u64 = 2;
pub(crate) const DOWN_SET_BAND: u64 = 3;
pub(crate) const DOWN_CLEAR_BAND: u64 = 4;
pub(crate) const DOWN_ACK: u64 = 5;
// Codes 6..=10 are claimed by the frame layer (crate::downlink):
// RegionRefresh, RegionDelta, BandDelta, AnswerFull, AnswerDelta.

impl Wire for DownlinkMsg {
    fn encode(&self, w: &mut BitWriter) {
        match *self {
            DownlinkMsg::InstallRegion {
                query,
                ver,
                center,
                vel,
                r_out,
            } => {
                w.write_bits(DOWN_INSTALL_REGION, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(ver);
                write_point(w, center);
                write_vector(w, vel);
                write_scalar(w, r_out);
            }
            DownlinkMsg::RemoveRegion { query } => {
                w.write_bits(DOWN_REMOVE_REGION, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
            }
            DownlinkMsg::Probe { query, zone } => {
                w.write_bits(DOWN_PROBE, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                write_point(w, zone.center);
                write_scalar(w, zone.radius);
            }
            DownlinkMsg::SetBand {
                query,
                ver,
                inner,
                outer,
            } => {
                w.write_bits(DOWN_SET_BAND, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(ver);
                write_scalar(w, inner);
                write_radius_or_inf(w, outer);
            }
            DownlinkMsg::ClearBand { query } => {
                w.write_bits(DOWN_CLEAR_BAND, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
            }
            DownlinkMsg::Ack { query, ver, kind } => {
                w.write_bits(DOWN_ACK, DOWN_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(ver);
                w.write_bits(kind.code(), KIND_BITS);
            }
        }
    }

    fn decode(r: &mut BitReader) -> Option<Self> {
        match r.read_bits(DOWN_TAG_BITS)? {
            DOWN_INSTALL_REGION => Some(DownlinkMsg::InstallRegion {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                ver: r.read_varint()?,
                center: read_point(r)?,
                vel: read_vector(r)?,
                r_out: read_scalar(r)?,
            }),
            DOWN_REMOVE_REGION => Some(DownlinkMsg::RemoveRegion {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
            }),
            DOWN_PROBE => Some(DownlinkMsg::Probe {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                zone: Circle::new(read_point(r)?, read_scalar(r)?),
            }),
            DOWN_SET_BAND => Some(DownlinkMsg::SetBand {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                ver: r.read_varint()?,
                inner: read_scalar(r)?,
                outer: read_radius_or_inf(r)?,
            }),
            DOWN_CLEAR_BAND => Some(DownlinkMsg::ClearBand {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
            }),
            DOWN_ACK => Some(DownlinkMsg::Ack {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                ver: r.read_varint()?,
                kind: MsgKind::from_code(r.read_bits(KIND_BITS)?)?,
            }),
            _ => None,
        }
    }

    fn wire_bits(&self) -> usize {
        let tag = DOWN_TAG_BITS as usize;
        match *self {
            DownlinkMsg::InstallRegion {
                query,
                ver,
                center,
                vel,
                r_out,
            } => {
                tag + id_bits(query.0)
                    + varint_bits(ver)
                    + point_bits(center)
                    + vector_bits(vel)
                    + scalar_bits(r_out)
            }
            DownlinkMsg::RemoveRegion { query } => tag + id_bits(query.0),
            DownlinkMsg::Probe { query, zone } => {
                tag + id_bits(query.0) + point_bits(zone.center) + scalar_bits(zone.radius)
            }
            DownlinkMsg::SetBand {
                query,
                ver,
                inner,
                outer,
            } => {
                tag + id_bits(query.0)
                    + varint_bits(ver)
                    + scalar_bits(inner)
                    + radius_or_inf_bits(outer)
            }
            DownlinkMsg::ClearBand { query } => tag + id_bits(query.0),
            DownlinkMsg::Ack { query, ver, .. } => {
                tag + id_bits(query.0) + varint_bits(ver) + KIND_BITS as usize
            }
        }
    }
}

// ---- shard legs -----------------------------------------------------------

const SHARD_FANOUT: u64 = 0;
const SHARD_PARTIAL_ANSWER: u64 = 1;
const SHARD_HANDOFF: u64 = 2;
const SHARD_FORWARD: u64 = 3;
const SHARD_MIGRATE: u64 = 4;
const SHARD_RECOVER: u64 = 5;

impl Wire for ShardMsg {
    fn encode(&self, w: &mut BitWriter) {
        match *self {
            ShardMsg::Fanout { query, zone } => {
                w.write_bits(SHARD_FANOUT, SHARD_TAG_BITS);
                w.write_varint(query.0 as u64);
                write_point(w, zone.center);
                write_scalar(w, zone.radius);
            }
            ShardMsg::PartialAnswer { query, count } => {
                w.write_bits(SHARD_PARTIAL_ANSWER, SHARD_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(count as u64);
                w.write_zero_bits(count * PARTIAL_ENTRY_BITS);
            }
            ShardMsg::Handoff { object, pos, vel } => {
                w.write_bits(SHARD_HANDOFF, SHARD_TAG_BITS);
                w.write_varint(object.0 as u64);
                write_point(w, pos);
                write_vector(w, vel);
            }
            ShardMsg::Forward {
                query,
                payload_bytes,
            } => {
                w.write_bits(SHARD_FORWARD, SHARD_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(payload_bytes as u64);
                w.write_zero_bits(payload_bytes * 8);
            }
            ShardMsg::Migrate { query, members } => {
                w.write_bits(SHARD_MIGRATE, SHARD_TAG_BITS);
                w.write_varint(query.0 as u64);
                w.write_varint(members as u64);
                w.write_zero_bits(members * MEMBER_ENTRY_BITS);
            }
            ShardMsg::Recover { shard, count } => {
                w.write_bits(SHARD_RECOVER, SHARD_TAG_BITS);
                w.write_varint(shard as u64);
                w.write_varint(count as u64);
                w.write_zero_bits(count * RECOVER_ENTRY_BITS);
            }
        }
    }

    fn decode(r: &mut BitReader) -> Option<Self> {
        match r.read_bits(SHARD_TAG_BITS)? {
            SHARD_FANOUT => Some(ShardMsg::Fanout {
                query: QueryId(u32::try_from(r.read_varint()?).ok()?),
                zone: Circle::new(read_point(r)?, read_scalar(r)?),
            }),
            SHARD_PARTIAL_ANSWER => {
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let count = usize::try_from(r.read_varint()?).ok()?;
                r.skip_bits(count.checked_mul(PARTIAL_ENTRY_BITS)?)?;
                Some(ShardMsg::PartialAnswer { query, count })
            }
            SHARD_HANDOFF => Some(ShardMsg::Handoff {
                object: ObjectId(u32::try_from(r.read_varint()?).ok()?),
                pos: read_point(r)?,
                vel: read_vector(r)?,
            }),
            SHARD_FORWARD => {
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let payload_bytes = usize::try_from(r.read_varint()?).ok()?;
                r.skip_bits(payload_bytes.checked_mul(8)?)?;
                Some(ShardMsg::Forward {
                    query,
                    payload_bytes,
                })
            }
            SHARD_MIGRATE => {
                let query = QueryId(u32::try_from(r.read_varint()?).ok()?);
                let members = usize::try_from(r.read_varint()?).ok()?;
                r.skip_bits(members.checked_mul(MEMBER_ENTRY_BITS)?)?;
                Some(ShardMsg::Migrate { query, members })
            }
            SHARD_RECOVER => {
                let shard = u32::try_from(r.read_varint()?).ok()?;
                let count = usize::try_from(r.read_varint()?).ok()?;
                r.skip_bits(count.checked_mul(RECOVER_ENTRY_BITS)?)?;
                Some(ShardMsg::Recover { shard, count })
            }
            _ => None,
        }
    }

    fn wire_bits(&self) -> usize {
        let tag = SHARD_TAG_BITS as usize;
        match *self {
            ShardMsg::Fanout { query, zone } => {
                tag + id_bits(query.0) + point_bits(zone.center) + scalar_bits(zone.radius)
            }
            ShardMsg::PartialAnswer { query, count } => {
                tag + id_bits(query.0) + varint_bits(count as u64) + count * PARTIAL_ENTRY_BITS
            }
            ShardMsg::Handoff { object, pos, vel } => {
                tag + id_bits(object.0) + point_bits(pos) + vector_bits(vel)
            }
            ShardMsg::Forward {
                query,
                payload_bytes,
            } => tag + id_bits(query.0) + varint_bits(payload_bytes as u64) + payload_bytes * 8,
            ShardMsg::Migrate { query, members } => {
                tag + id_bits(query.0) + varint_bits(members as u64) + members * MEMBER_ENTRY_BITS
            }
            ShardMsg::Recover { shard, count } => {
                tag + varint_bits(shard as u64)
                    + varint_bits(count as u64)
                    + count * RECOVER_ENTRY_BITS
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_exact_on_lattice_and_bounded_off_it() {
        for q in [-1024i64, -1, 0, 1, 255, 256, 1 << 20] {
            assert_eq!(quantize(dequantize(q)), q);
        }
        for x in [0.1, -3.7, 12345.6789, 0.001953] {
            assert!((dequantize(quantize(x)) - x).abs() <= QUANT_ERROR);
        }
        assert_eq!(quantize(f64::NAN), 0); // saturating cast, accounting-safe
    }

    #[test]
    fn msg_kind_codes_round_trip() {
        for k in MsgKind::ALL {
            assert!(k.code() < 1 << KIND_BITS);
            assert_eq!(MsgKind::from_code(k.code()), Some(k));
        }
        assert_eq!(MsgKind::from_code(MsgKind::ALL.len() as u64), None);
    }

    #[test]
    fn unknown_tags_decode_to_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b111, UP_TAG_BITS); // 7: unused uplink tag
        let (bytes, _) = w.finish();
        assert_eq!(UplinkMsg::decode(&mut BitReader::new(&bytes)), None);
        let mut w = BitWriter::new();
        w.write_bits(0b1111, DOWN_TAG_BITS); // 15: unused downlink tag
        let (bytes, _) = w.finish();
        assert_eq!(DownlinkMsg::decode(&mut BitReader::new(&bytes)), None);
        let mut w = BitWriter::new();
        w.write_bits(0b111, SHARD_TAG_BITS); // 7: unused shard tag
        let (bytes, _) = w.finish();
        assert_eq!(ShardMsg::decode(&mut BitReader::new(&bytes)), None);
    }

    #[test]
    fn truncated_buffers_decode_to_none() {
        let msg = DownlinkMsg::InstallRegion {
            query: QueryId(300),
            ver: 17,
            center: Point::new(100.0, -250.5),
            vel: Vector::new(1.5, -0.25),
            r_out: 42.0,
        };
        let mut w = BitWriter::new();
        msg.encode(&mut w);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, msg.wire_bits());
        // Whole-byte truncations must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let mut r = BitReader::new(&bytes[..cut]);
            assert_eq!(DownlinkMsg::decode(&mut r), None);
        }
        let mut ok = BitReader::new(&bytes);
        assert_eq!(DownlinkMsg::decode(&mut ok), Some(msg));
    }
}
