//! Deterministic fault injection for the simulated transport.
//!
//! A [`FaultPlan`] configures per-direction message **loss**,
//! **duplication**, **delay** (in whole ticks) and **device churn** (seeded
//! offline windows during which a device neither receives nor sends). A
//! [`FaultyLink`] executes the plan with a dedicated xoshiro generator that
//! the harness seeds from the episode's workload seed, so:
//!
//! * every fault decision is a pure function of `(plan, episode seed)` — the
//!   same episode produces byte-identical traffic at any thread count, and
//! * [`FaultPlan::none`] draws nothing at all, leaving the transport
//!   byte-identical to the perfect link it replaces.
//!
//! Faults are drawn **per delivery**: a geocast that overlaps eight devices
//! makes eight independent loss draws, which models per-receiver radio
//! reception. The synchronous probe channel ([`crate::ProbeService`]) only
//! suffers loss and churn — a probe round trip is one RPC, so a delayed or
//! duplicated reply is indistinguishable from a lost one to the caller.

use crate::{DownlinkMsg, NetStats, UplinkMsg};
use mknn_geom::{ObjectId, Tick};
use mknn_util::json::{FromJson, Json, JsonError, ToJson};
use mknn_util::Rng;
use std::fmt;

/// Salt separating the inter-shard backbone's RNG stream from the
/// device-link stream, so sharding an episode never perturbs the device
/// fault sequence (the shard-equivalence gates depend on this).
const SHARD_STREAM_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Further salt layered on the shard stream for the one-shot crash-window
/// schedule, so planning crashes never perturbs the backbone's retransmit
/// fates (and vice versa). A plan with `crash_count == 0` draws nothing.
const CRASH_WINDOW_SALT: u64 = 0x1656_67B1_9E37_79F9;

/// Salt separating the per-query fate streams from the device-link stream.
/// Every query-scoped delivery (uplink, downlink, probe leg) draws from its
/// query's own generator, so a query's fate sequence depends only on its own
/// event order — never on how deliveries of *other* queries interleave with
/// it. That interleaving is exactly what changes when the server tier is
/// partitioned (per-shard outboxes merge in shard order, not global query
/// order), so per-query streams are what keeps chaos episodes byte-identical
/// across shard counts.
const QUERY_STREAM_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// The shard backbone retransmits a lost leg until delivery; a degenerate
/// plan with 100 % loss would retry forever, so retries are capped (the leg
/// is then delivered anyway — the backbone is reliable by construction).
const SHARD_RETRY_CAP: u64 = 8;

/// A rejected [`FaultPlan`] construction: which knob was out of range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A probability knob outside `[0, 1]`; carries the field name.
    ProbabilityOutOfRange(&'static str, f64),
    /// `delay_prob` is positive but `max_delay` is 0 ticks, so a "delayed"
    /// message would have nowhere to go.
    ZeroDelayBound,
    /// `churn` is positive but the offline window `[offline_min,
    /// offline_max]` is empty or starts at 0 ticks.
    BadOfflineWindow(u64, u64),
    /// `crash_count` is positive but the crash duration window
    /// `[crash_min, crash_max]` is empty or starts at 0 ticks.
    BadCrashWindow(u64, u64),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultError::ProbabilityOutOfRange(name, v) => {
                write!(f, "{name} must be a probability in [0, 1], got {v}")
            }
            FaultError::ZeroDelayBound => {
                write!(f, "delay_prob is positive but max_delay is 0 ticks")
            }
            FaultError::BadOfflineWindow(lo, hi) => {
                write!(
                    f,
                    "offline window [{lo}, {hi}] must satisfy 1 <= min <= max"
                )
            }
            FaultError::BadCrashWindow(lo, hi) => {
                write!(
                    f,
                    "crash duration window [{lo}, {hi}] must satisfy 1 <= min <= max"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Configuration of the fault-injection layer for one episode.
///
/// Construct validated instances with [`FaultPlan::builder`]; the fields
/// stay public for experiment sweeps that perturb a copy, and
/// [`FaultyLink::new`] re-validates at adoption time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that one device → server message is lost.
    pub up_loss: f64,
    /// Probability that one downlink *delivery* (per receiving device) is
    /// lost.
    pub down_loss: f64,
    /// Probability that a surviving uplink is delivered twice.
    pub up_dup: f64,
    /// Probability that a surviving downlink delivery is delivered twice.
    pub down_dup: f64,
    /// Probability that a surviving message is delayed instead of delivered
    /// on time (both directions).
    pub delay_prob: f64,
    /// Maximum delay in ticks; a delayed message is held for a uniform
    /// `1..=max_delay` ticks.
    pub max_delay: u64,
    /// Per-device, per-tick probability of dropping offline (churn).
    pub churn: f64,
    /// Shortest offline window, in ticks.
    pub offline_min: u64,
    /// Longest offline window, in ticks.
    pub offline_max: u64,
    /// Number of server-shard crash windows planned for the episode. Each
    /// window picks a shard deterministically, wipes its state at the start
    /// tick and rebirths it empty after the window (see
    /// [`FaultyLink::crash_schedule`]). `0` (the default) plans no crashes
    /// and draws nothing.
    pub crash_count: u32,
    /// Shortest shard-crash window, in ticks.
    pub crash_min: u64,
    /// Longest shard-crash window, in ticks.
    pub crash_max: u64,
    /// Last tick (inclusive) on which faults are injected. Already-started
    /// offline windows and already-held delayed messages still play out, but
    /// no *new* fault is drawn after this tick. [`FaultPlan::FOREVER`]
    /// (the default) means the whole episode; a finite value is useful for
    /// chaos tests that inject a bounded burst and then assert
    /// reconvergence over a clean tail.
    pub horizon: Tick,
}

impl FaultPlan {
    /// Horizon value meaning "faults for the whole episode": the largest
    /// tick the workspace JSON codec round-trips exactly (`u64` saturates
    /// at `i64::MAX` on encode).
    pub const FOREVER: Tick = i64::MAX as Tick;

    /// The perfect transport: no faults, no RNG draws, byte-identical to a
    /// run without any fault layer.
    pub fn none() -> Self {
        FaultPlan {
            up_loss: 0.0,
            down_loss: 0.0,
            up_dup: 0.0,
            down_dup: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
            churn: 0.0,
            offline_min: 0,
            offline_max: 0,
            crash_count: 0,
            crash_min: 0,
            crash_max: 0,
            horizon: FaultPlan::FOREVER,
        }
    }

    /// A moderately hostile preset used by the chaos CI gate and quickstart
    /// examples: 10 % loss each way, occasional duplication, short delays,
    /// and rare multi-tick device outages, for the whole episode. No shard
    /// crashes — the preset predates the server failure domain and its
    /// golden bytes must stay put.
    pub fn chaos() -> Self {
        FaultPlan {
            up_loss: 0.10,
            down_loss: 0.10,
            up_dup: 0.02,
            down_dup: 0.02,
            delay_prob: 0.20,
            max_delay: 2,
            churn: 0.002,
            offline_min: 2,
            offline_max: 6,
            crash_count: 0,
            crash_min: 0,
            crash_max: 0,
            horizon: FaultPlan::FOREVER,
        }
    }

    /// The server-failure preset used by the recovery CI gate: a perfect
    /// device link, but two deterministic shard crashes of 5–10 ticks each.
    /// Isolates the cost of server amnesia from transport noise.
    pub fn crash() -> Self {
        FaultPlan {
            crash_count: 2,
            crash_min: 5,
            crash_max: 10,
            ..FaultPlan::none()
        }
    }

    /// Starts a validating builder, seeded with [`FaultPlan::none`].
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::none(),
        }
    }

    /// `true` when the plan can never inject a fault (the harness then
    /// skips the link layer entirely). A plan that only crashes shards is
    /// *not* none: the device link stays perfect, but the lossy-mode
    /// recovery machinery (acks, leases, retransmits) must be armed for the
    /// reconstruction protocol to work.
    pub fn is_none(&self) -> bool {
        self.up_loss == 0.0
            && self.down_loss == 0.0
            && self.up_dup == 0.0
            && self.down_dup == 0.0
            && self.delay_prob == 0.0
            && self.churn == 0.0
            && self.crash_count == 0
    }

    /// `true` while faults are still injected at tick `now` (the horizon is
    /// inclusive).
    pub fn active_at(&self, now: Tick) -> bool {
        now <= self.horizon
    }

    /// Per-delivery fault fate drawn from `rng`: returns how many copies to
    /// deliver now (0, 1 or 2) and an optional delay in ticks for one
    /// further copy, charging losses/duplicates/delays to `stats`.
    ///
    /// The caller picks the stream (`rng`) and gates on
    /// [`FaultPlan::active_at`]; [`FaultyLink`] routes query-scoped traffic
    /// through per-query streams, and the engine's per-shard probe services
    /// use this directly with the streams they were handed.
    pub fn draw_fate(
        &self,
        rng: &mut Rng,
        loss: f64,
        dup: f64,
        stats: &mut NetStats,
    ) -> (u32, Option<u64>) {
        if loss > 0.0 && rng.gen_bool(loss) {
            stats.count_dropped();
            return (0, None);
        }
        let mut copies = 1;
        if dup > 0.0 && rng.gen_bool(dup) {
            stats.count_duplicated();
            copies += 1;
        }
        if self.delay_prob > 0.0 && rng.gen_bool(self.delay_prob) {
            stats.count_delayed();
            let d = rng.gen_range(1..=self.max_delay);
            copies -= 1;
            return (copies, Some(d));
        }
        (copies, None)
    }

    /// One probe-channel leg drawn from `rng`: `true` when the leg is lost
    /// (charged as one dropped message). The caller gates on
    /// [`FaultPlan::active_at`].
    pub fn draw_leg_lost(&self, rng: &mut Rng, loss: f64, stats: &mut NetStats) -> bool {
        if loss > 0.0 && rng.gen_bool(loss) {
            stats.count_dropped();
            return true;
        }
        false
    }

    /// Validates knob sanity; returns the first problem found.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (name, v) in [
            ("up_loss", self.up_loss),
            ("down_loss", self.down_loss),
            ("up_dup", self.up_dup),
            ("down_dup", self.down_dup),
            ("delay_prob", self.delay_prob),
            ("churn", self.churn),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(FaultError::ProbabilityOutOfRange(name, v));
            }
        }
        if self.delay_prob > 0.0 && self.max_delay == 0 {
            return Err(FaultError::ZeroDelayBound);
        }
        if self.churn > 0.0 && (self.offline_min == 0 || self.offline_min > self.offline_max) {
            return Err(FaultError::BadOfflineWindow(
                self.offline_min,
                self.offline_max,
            ));
        }
        if self.crash_count > 0 && (self.crash_min == 0 || self.crash_min > self.crash_max) {
            return Err(FaultError::BadCrashWindow(self.crash_min, self.crash_max));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Builder for [`FaultPlan`] whose [`build`](FaultPlanBuilder::build)
/// rejects out-of-range knobs with a typed [`FaultError`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Sets both loss probabilities at once.
    pub fn loss(mut self, p: f64) -> Self {
        self.plan.up_loss = p;
        self.plan.down_loss = p;
        self
    }

    /// Sets the uplink loss probability.
    pub fn up_loss(mut self, p: f64) -> Self {
        self.plan.up_loss = p;
        self
    }

    /// Sets the per-delivery downlink loss probability.
    pub fn down_loss(mut self, p: f64) -> Self {
        self.plan.down_loss = p;
        self
    }

    /// Sets both duplication probabilities at once.
    pub fn duplication(mut self, p: f64) -> Self {
        self.plan.up_dup = p;
        self.plan.down_dup = p;
        self
    }

    /// Sets the delay probability and the maximum delay in ticks.
    pub fn delay(mut self, prob: f64, max_ticks: u64) -> Self {
        self.plan.delay_prob = prob;
        self.plan.max_delay = max_ticks;
        self
    }

    /// Sets the churn rate and the offline window bounds in ticks.
    pub fn churn(mut self, rate: f64, offline_min: u64, offline_max: u64) -> Self {
        self.plan.churn = rate;
        self.plan.offline_min = offline_min;
        self.plan.offline_max = offline_max;
        self
    }

    /// Plans `count` shard-crash windows of `min_ticks..=max_ticks` each.
    pub fn crashes(mut self, count: u32, min_ticks: u64, max_ticks: u64) -> Self {
        self.plan.crash_count = count;
        self.plan.crash_min = min_ticks;
        self.plan.crash_max = max_ticks;
        self
    }

    /// Sets the last tick (inclusive) on which faults are injected.
    pub fn horizon(mut self, last_tick: Tick) -> Self {
        self.plan.horizon = last_tick;
        self
    }

    /// Validates and returns the plan.
    pub fn build(self) -> Result<FaultPlan, FaultError> {
        self.plan.validate()?;
        Ok(self.plan)
    }
}

// Hand-written (rather than `impl_json_struct!`) so deserialization routes
// through validation, exactly like `DknnParams` in `mknn-core`: a config
// with `up_loss: 1.5` fails the parse with the `FaultError` message instead
// of silently mis-running an episode.
impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("up_loss", self.up_loss.to_json()),
            ("down_loss", self.down_loss.to_json()),
            ("up_dup", self.up_dup.to_json()),
            ("down_dup", self.down_dup.to_json()),
            ("delay_prob", self.delay_prob.to_json()),
            ("max_delay", self.max_delay.to_json()),
            ("churn", self.churn.to_json()),
            ("offline_min", self.offline_min.to_json()),
            ("offline_max", self.offline_max.to_json()),
        ];
        // Crash knobs appear only when crashes are planned, so plans written
        // before the server failure domain existed serialize byte-identically.
        if self.crash_count != 0 {
            fields.push(("crash_count", self.crash_count.to_json()));
            fields.push(("crash_min", self.crash_min.to_json()));
            fields.push(("crash_max", self.crash_max.to_json()));
        }
        fields.push(("horizon", self.horizon.to_json()));
        Json::object(fields)
    }
}

impl FromJson for FaultPlan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let plan = FaultPlan {
            up_loss: v.parse_field("up_loss")?,
            down_loss: v.parse_field("down_loss")?,
            up_dup: v.parse_field("up_dup")?,
            down_dup: v.parse_field("down_dup")?,
            delay_prob: v.parse_field("delay_prob")?,
            max_delay: v.parse_field("max_delay")?,
            churn: v.parse_field("churn")?,
            offline_min: v.parse_field("offline_min")?,
            offline_max: v.parse_field("offline_max")?,
            crash_count: v.parse_field_or_default("crash_count")?,
            crash_min: v.parse_field_or_default("crash_min")?,
            crash_max: v.parse_field_or_default("crash_max")?,
            horizon: v.parse_field("horizon")?,
        };
        plan.validate()
            .map_err(|e| JsonError::new(format!("invalid FaultPlan: {e}")))?;
        Ok(plan)
    }
}

/// One planned server-shard outage: shard `shard` is down for every tick
/// `from <= t < until`, loses all state at `from`, and is reborn empty at
/// `until` (when the coordinator runs the reconstruction sweep).
///
/// Windows from [`FaultyLink::crash_schedule`] are normalized: sorted by
/// start tick and non-overlapping per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The shard that goes down.
    pub shard: u32,
    /// First tick of the outage (state is wiped here).
    pub from: Tick,
    /// First tick *after* the outage (rebirth + recovery sweep here).
    pub until: Tick,
}

/// The lazily-instantiated per-query fate generators of one episode.
///
/// Query `q`'s stream is seeded `base ^ mix(q)` the first time it is used,
/// so which queries ever draw — and in what global interleaving — cannot
/// perturb any other query's sequence. The set can be [`split`] into
/// disjoint per-shard groups for the parallel server phase and
/// [`absorb`]ed back afterwards; a stream's state travels with it, so a
/// query's draws stay globally sequenced across the sequential and parallel
/// parts of the tick.
///
/// [`split`]: QueryStreams::split
/// [`absorb`]: QueryStreams::absorb
#[derive(Debug, Default)]
pub struct QueryStreams {
    base: u64,
    rngs: std::collections::BTreeMap<u32, Rng>,
}

/// SplitMix64-style finalizer decorrelating per-query seeds.
fn mix(q: u32) -> u64 {
    let mut z = q as u64 ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl QueryStreams {
    fn new(base: u64) -> Self {
        QueryStreams {
            base,
            rngs: std::collections::BTreeMap::new(),
        }
    }

    /// The fate generator of query `q`, created on first use.
    pub fn rng(&mut self, q: mknn_geom::QueryId) -> &mut Rng {
        let base = self.base;
        self.rngs
            .entry(q.0)
            .or_insert_with(|| Rng::seed_from_u64(base ^ mix(q.0)))
    }

    /// Moves the streams of each `groups[i]` into a new `QueryStreams`,
    /// preserving stream state; queries listed in no group stay behind.
    /// Children lazily create streams for their own queries exactly as the
    /// parent would have.
    pub fn split(&mut self, groups: &[Vec<u32>]) -> Vec<QueryStreams> {
        groups
            .iter()
            .map(|g| {
                let mut child = QueryStreams::new(self.base);
                for &q in g {
                    if let Some(r) = self.rngs.remove(&q) {
                        child.rngs.insert(q, r);
                    }
                }
                child
            })
            .collect()
    }

    /// Moves every stream of `parts` back (inverse of
    /// [`QueryStreams::split`]).
    pub fn absorb(&mut self, parts: Vec<QueryStreams>) {
        for part in parts {
            self.rngs.extend(part.rngs);
        }
    }
}

/// The runtime of a [`FaultPlan`]: per-device offline windows and the
/// in-flight queues of delayed messages.
///
/// The harness calls [`FaultyLink::begin_tick`] once per tick (which draws
/// the tick's churn), routes every uplink through
/// [`FaultyLink::transmit_up`] and every downlink delivery through
/// [`FaultyLink::deliver_down`], and drains the due delayed messages at the
/// matching points of the tick loop. All fault counters are charged to the
/// [`NetStats`] passed in, so episodes report exactly what the link did.
#[derive(Debug)]
pub struct FaultyLink {
    plan: FaultPlan,
    /// The construction seed, kept so the crash schedule can derive its own
    /// one-shot stream without touching either live generator.
    seed: u64,
    /// Generator for traffic with no query scope: churn windows and
    /// `Position` uplinks. Both are drawn in device order, which the shard
    /// layout cannot perturb.
    rng: Rng,
    /// Dedicated generator for the inter-shard backbone legs. A separate
    /// stream keeps the device-side fault sequence byte-identical whether
    /// the server runs as one shard or sixteen: shard legs may draw any
    /// number of times without perturbing `rng`.
    shard_rng: Rng,
    /// Per-query fate streams for all query-scoped traffic (see
    /// [`QueryStreams`]).
    queries: QueryStreams,
    now: Tick,
    /// Per device: offline while `now < offline_until[i]`.
    offline_until: Vec<Tick>,
    /// Delayed uplinks, keyed by due tick (insertion order preserved).
    held_up: Vec<(Tick, ObjectId, UplinkMsg)>,
    /// Delayed downlink deliveries, keyed by due tick.
    held_down: Vec<(Tick, ObjectId, DownlinkMsg)>,
}

impl FaultyLink {
    /// Creates the link runtime for `plan`, drawing from a generator seeded
    /// with `seed` (the harness derives it from the episode's workload
    /// seed, which the sweep planner already offsets per plan position).
    ///
    /// # Panics
    ///
    /// Panics when `plan` fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        plan.validate().expect("invalid FaultPlan");
        FaultyLink {
            plan,
            seed,
            rng: Rng::seed_from_u64(seed),
            shard_rng: Rng::seed_from_u64(seed ^ SHARD_STREAM_SALT),
            queries: QueryStreams::new(seed ^ QUERY_STREAM_SALT),
            now: 0,
            offline_until: Vec::new(),
            held_up: Vec::new(),
            held_down: Vec::new(),
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Plans the episode's shard-crash windows: `crash_count` outages of
    /// `crash_min..=crash_max` ticks each, over `shards` shards and `ticks`
    /// episode ticks.
    ///
    /// The schedule is a pure function of `(plan, seed, shards, ticks)`,
    /// drawn from a one-shot generator salted off the shard stream — neither
    /// the device-link nor the backbone fate sequence is perturbed, and a
    /// plan with `crash_count == 0` returns empty without drawing at all
    /// (the no-crash golden bytes stay put). Start ticks are placed so every
    /// rebirth lands inside the episode when the window fits; windows
    /// overlapping on the same shard are merged. The result is sorted by
    /// `(from, shard)`.
    pub fn crash_schedule(&self, shards: u32, ticks: u64) -> Vec<CrashWindow> {
        let plan = &self.plan;
        if plan.crash_count == 0 || shards == 0 || ticks == 0 {
            return Vec::new();
        }
        let mut rng = Rng::seed_from_u64(self.seed ^ SHARD_STREAM_SALT ^ CRASH_WINDOW_SALT);
        let mut raw = Vec::with_capacity(plan.crash_count as usize);
        for _ in 0..plan.crash_count {
            let shard = rng.gen_range(0..=(shards as u64 - 1)) as u32;
            let len = rng.gen_range(plan.crash_min..=plan.crash_max);
            // Keep the rebirth in-episode when the window fits; a window
            // longer than the episode starts at 1 and never recovers.
            let latest_start = ticks.saturating_sub(len).max(1);
            let from = rng.gen_range(1..=latest_start) as Tick;
            raw.push(CrashWindow {
                shard,
                from,
                until: from.saturating_add(len),
            });
        }
        // Merge overlapping (or touching) windows per shard so the engine
        // sees at most one crash/rebirth pair per shard at a time.
        raw.sort_by_key(|w| (w.shard, w.from, w.until));
        let mut merged: Vec<CrashWindow> = Vec::with_capacity(raw.len());
        for w in raw {
            match merged.last_mut() {
                Some(prev) if prev.shard == w.shard && w.from <= prev.until => {
                    prev.until = prev.until.max(w.until);
                }
                _ => merged.push(w),
            }
        }
        merged.sort_by_key(|w| (w.from, w.shard));
        merged
    }

    /// `true` while faults are still being injected at the current tick.
    fn active(&self) -> bool {
        self.plan.active_at(self.now)
    }

    /// The tick the link was last advanced to by [`FaultyLink::begin_tick`].
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Advances the link to `now` and draws this tick's churn: each online
    /// device independently drops offline with probability `churn` for a
    /// uniform `offline_min..=offline_max` ticks. Windows started before
    /// the horizon keep running after it; no new window starts past it.
    pub fn begin_tick(&mut self, now: Tick, n_devices: usize) {
        self.now = now;
        self.offline_until.resize(n_devices, 0);
        if self.plan.churn > 0.0 && self.active() {
            for i in 0..n_devices {
                if self.offline_until[i] <= now && self.rng.gen_bool(self.plan.churn) {
                    let len = self
                        .rng
                        .gen_range(self.plan.offline_min..=self.plan.offline_max);
                    self.offline_until[i] = now.saturating_add(len);
                }
            }
        }
    }

    /// Whether device `idx` is inside an offline window right now.
    pub fn is_offline(&self, idx: usize) -> bool {
        self.offline_until.get(idx).is_some_and(|&t| self.now < t)
    }

    /// The stream a message's fate is drawn from: the message's query
    /// stream when it has a query scope, the device-order main stream
    /// otherwise.
    fn stream_for(&mut self, query: Option<mknn_geom::QueryId>) -> &mut Rng {
        match query {
            Some(q) => self.queries.rng(q),
            None => &mut self.rng,
        }
    }

    /// Moves the fate streams of each `groups[i]` out of the link so the
    /// parallel server phase can hand each shard its own queries' streams
    /// (see [`QueryStreams::split`]). Must be matched by
    /// [`FaultyLink::restore_query_streams`] before the next query-scoped
    /// draw on the link.
    pub fn split_query_streams(&mut self, groups: &[Vec<u32>]) -> Vec<QueryStreams> {
        self.queries.split(groups)
    }

    /// Returns the streams taken by [`FaultyLink::split_query_streams`].
    pub fn restore_query_streams(&mut self, parts: Vec<QueryStreams>) {
        self.queries.absorb(parts);
    }

    /// Passes one uplink through the link. Delivered copies are appended to
    /// `out`; losses, duplicates and delays are charged to `stats`. The
    /// transmission itself must already have been charged by the caller —
    /// the sender spends the radio energy whether or not the network
    /// delivers. Query-scoped uplinks draw from their query's stream.
    pub fn transmit_up(
        &mut self,
        from: ObjectId,
        msg: UplinkMsg,
        out: &mut Vec<(ObjectId, UplinkMsg)>,
        stats: &mut NetStats,
    ) {
        if !self.active() {
            out.push((from, msg));
            return;
        }
        let plan = self.plan;
        let rng = self.stream_for(msg.query());
        let (copies, delay) = plan.draw_fate(rng, plan.up_loss, plan.up_dup, stats);
        for _ in 0..copies {
            out.push((from, msg));
        }
        if let Some(d) = delay {
            self.held_up.push((self.now + d, from, msg));
        }
    }

    /// Moves every held uplink that is due at the current tick into `out`,
    /// in the order it was delayed.
    pub fn drain_due_up(&mut self, out: &mut Vec<(ObjectId, UplinkMsg)>) {
        let now = self.now;
        let mut i = 0;
        while i < self.held_up.len() {
            if self.held_up[i].0 <= now {
                let (_, from, msg) = self.held_up.remove(i);
                out.push((from, msg));
            } else {
                i += 1;
            }
        }
    }

    /// Passes one downlink delivery (to the device at inbox index `to`)
    /// through the link. An offline receiver misses the delivery outright;
    /// otherwise loss/duplication/delay are drawn exactly like uplinks.
    ///
    /// Returns `true` only when at least one copy reached the inbox *this
    /// tick* — the signal the scoped replication layer uses to decide
    /// whether the device's acked state advanced (a delayed copy still
    /// arrives later, but conservatively counts as a gap).
    pub fn deliver_down(
        &mut self,
        to: usize,
        msg: DownlinkMsg,
        inboxes: &mut [Vec<DownlinkMsg>],
        stats: &mut NetStats,
    ) -> bool {
        if self.is_offline(to) {
            stats.count_dropped();
            return false;
        }
        if !self.active() {
            if let Some(inbox) = inboxes.get_mut(to) {
                inbox.push(msg);
                return true;
            }
            return false;
        }
        let plan = self.plan;
        let rng = self.stream_for(Some(msg.query()));
        let (copies, delay) = plan.draw_fate(rng, plan.down_loss, plan.down_dup, stats);
        let mut delivered = false;
        if let Some(inbox) = inboxes.get_mut(to) {
            for _ in 0..copies {
                inbox.push(msg);
            }
            delivered = copies > 0;
        }
        if let Some(d) = delay {
            self.held_down
                .push((self.now + d, ObjectId(to as u32), msg));
        }
        delivered
    }

    /// Delivers every held downlink that is due at the current tick into
    /// the receiver's inbox (unless the receiver is offline *now*, in which
    /// case the copy is finally dropped).
    pub fn drain_due_down(&mut self, inboxes: &mut [Vec<DownlinkMsg>], stats: &mut NetStats) {
        let now = self.now;
        let mut i = 0;
        while i < self.held_down.len() {
            if self.held_down[i].0 <= now {
                let (_, to, msg) = self.held_down.remove(i);
                if self.is_offline(to.index()) {
                    stats.count_dropped();
                } else if let Some(inbox) = inboxes.get_mut(to.index()) {
                    inbox.push(msg);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Passes one inter-shard backbone leg of `bytes` through the link.
    /// The backbone is **reliable but lossy**: a lost copy is retransmitted
    /// (up to a cap) until one gets through, so shard coordination never
    /// diverges the shards' shared state — faults only cost traffic, which
    /// is charged to [`ShardStats`](crate::ShardStats) as retransmissions.
    /// Draws come from the dedicated shard stream; the loss rate is the
    /// plan's downlink rate (the backbone is infrastructure-side).
    pub fn shard_leg(&mut self, bytes: usize, stats: &mut NetStats) {
        if !self.active() || self.plan.down_loss <= 0.0 {
            return;
        }
        let mut retries = 0;
        while retries < SHARD_RETRY_CAP && self.shard_rng.gen_bool(self.plan.down_loss) {
            retries += 1;
        }
        if retries > 0 {
            stats.shard.count_retransmits(retries, bytes as u64);
        }
    }

    /// Loss draw for the synchronous probe channel: `true` when one leg of
    /// the round trip for `query` fails. The downlink leg and the uplink
    /// leg are drawn separately so the per-direction knobs keep their
    /// meaning; an offline device always fails. Each failed leg is charged
    /// as one dropped message. Probe legs are query-scoped, so they draw
    /// from the query's stream.
    pub fn probe_leg_lost(
        &mut self,
        query: mknn_geom::QueryId,
        loss: f64,
        stats: &mut NetStats,
    ) -> bool {
        if !self.active() || loss == 0.0 {
            return false;
        }
        let plan = self.plan;
        plan.draw_leg_lost(self.queries.rng(query), loss, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::{Point, QueryId, Vector};

    fn an_uplink() -> UplinkMsg {
        UplinkMsg::Leave {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
        }
    }

    fn a_downlink() -> DownlinkMsg {
        DownlinkMsg::InstallRegion {
            query: QueryId(0),
            ver: 0,
            center: Point::ORIGIN,
            vel: Vector::ZERO,
            r_out: 10.0,
        }
    }

    #[test]
    fn none_plan_is_transparent_and_draws_nothing() {
        let mut link = FaultyLink::new(FaultPlan::none(), 7);
        let mut stats = NetStats::default();
        let mut out = Vec::new();
        link.begin_tick(1, 4);
        for i in 0..4 {
            assert!(!link.is_offline(i));
            link.transmit_up(ObjectId(i as u32), an_uplink(), &mut out, &mut stats);
        }
        assert_eq!(out.len(), 4);
        let mut inboxes = vec![Vec::new(); 4];
        link.deliver_down(2, a_downlink(), &mut inboxes, &mut stats);
        assert_eq!(inboxes[2].len(), 1);
        assert_eq!(
            (stats.dropped_msgs, stats.dup_msgs, stats.delayed_msgs),
            (0, 0, 0)
        );
    }

    #[test]
    fn total_loss_drops_everything_and_counts_it() {
        let plan = FaultPlan::builder().loss(1.0).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        let mut out = Vec::new();
        link.begin_tick(1, 2);
        link.transmit_up(ObjectId(0), an_uplink(), &mut out, &mut stats);
        assert!(out.is_empty());
        let mut inboxes = vec![Vec::new(); 2];
        link.deliver_down(1, a_downlink(), &mut inboxes, &mut stats);
        assert!(inboxes[1].is_empty());
        assert_eq!(stats.dropped_msgs, 2);
    }

    #[test]
    fn duplication_delivers_twice() {
        let plan = FaultPlan::builder().duplication(1.0).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        let mut out = Vec::new();
        link.begin_tick(1, 1);
        link.transmit_up(ObjectId(0), an_uplink(), &mut out, &mut stats);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.dup_msgs, 1);
    }

    #[test]
    fn delayed_messages_arrive_after_their_delay() {
        let plan = FaultPlan::builder().delay(1.0, 3).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        let mut out = Vec::new();
        link.begin_tick(1, 1);
        link.transmit_up(ObjectId(0), an_uplink(), &mut out, &mut stats);
        assert!(out.is_empty(), "delayed, not delivered");
        assert_eq!(stats.delayed_msgs, 1);
        // Drain every following tick until it shows up; never later than
        // max_delay.
        let mut arrived_at = None;
        for t in 2..=5 {
            link.begin_tick(t, 1);
            link.drain_due_up(&mut out);
            if !out.is_empty() {
                arrived_at = Some(t);
                break;
            }
        }
        let t = arrived_at.expect("the delayed uplink must eventually arrive");
        assert!(t <= 1 + 3, "arrived at {t}, beyond max_delay");
    }

    #[test]
    fn offline_windows_block_and_expire() {
        let plan = FaultPlan::builder().churn(1.0, 2, 2).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        link.begin_tick(1, 1);
        assert!(link.is_offline(0), "churn 1.0 must trip immediately");
        let mut inboxes = vec![Vec::new()];
        link.deliver_down(0, a_downlink(), &mut inboxes, &mut stats);
        assert!(inboxes[0].is_empty());
        assert_eq!(stats.dropped_msgs, 1);
        // The window is exactly 2 ticks; with churn 1.0 a new one starts as
        // soon as the old expires, so check expiry via offline_until math:
        // at tick 3 the device redraws (offline_until was 3).
        link.begin_tick(3, 1);
        assert!(link.is_offline(0), "immediately re-churned at expiry");
    }

    #[test]
    fn horizon_stops_new_faults() {
        let plan = FaultPlan::builder().loss(1.0).horizon(5).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        let mut out = Vec::new();
        link.begin_tick(5, 1);
        link.transmit_up(ObjectId(0), an_uplink(), &mut out, &mut stats);
        assert!(out.is_empty(), "tick 5 is still inside the horizon");
        link.begin_tick(6, 1);
        link.transmit_up(ObjectId(0), an_uplink(), &mut out, &mut stats);
        assert_eq!(out.len(), 1, "tick 6 is past the horizon: perfect link");
        assert_eq!(stats.dropped_msgs, 1);
    }

    #[test]
    fn same_seed_same_fate_sequence() {
        let plan = FaultPlan::chaos();
        let runs: Vec<Vec<usize>> = (0..2)
            .map(|_| {
                let mut link = FaultyLink::new(plan, 42);
                let mut stats = NetStats::default();
                let mut sizes = Vec::new();
                for t in 1..=20 {
                    link.begin_tick(t, 8);
                    let mut out = Vec::new();
                    link.drain_due_up(&mut out);
                    for i in 0..8 {
                        link.transmit_up(ObjectId(i), an_uplink(), &mut out, &mut stats);
                    }
                    sizes.push(out.len());
                }
                sizes
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn shard_legs_draw_from_their_own_stream() {
        // Interleaving shard legs between device draws must not change the
        // device fate sequence.
        let plan = FaultPlan::chaos();
        let fates = |with_shard_legs: bool| {
            let mut link = FaultyLink::new(plan, 42);
            let mut stats = NetStats::default();
            let mut sizes = Vec::new();
            for t in 1..=20 {
                link.begin_tick(t, 4);
                let mut out = Vec::new();
                for i in 0..4 {
                    if with_shard_legs {
                        link.shard_leg(36, &mut stats);
                    }
                    link.transmit_up(ObjectId(i), an_uplink(), &mut out, &mut stats);
                }
                sizes.push(out.len());
            }
            sizes
        };
        assert_eq!(fates(false), fates(true));
    }

    #[test]
    fn query_fates_are_invariant_to_cross_query_interleaving() {
        // The defining property of the per-query streams: reordering
        // deliveries *across* queries (what a partitioned server tier does
        // when per-shard outboxes merge in shard order) must not change any
        // single query's fate sequence.
        let plan = FaultPlan::chaos();
        let uplink_for = |q: u32| UplinkMsg::Leave {
            query: QueryId(q),
            ver: 0,
            pos: Point::ORIGIN,
        };
        let fates_of_q0 = |interleaved: bool| {
            let mut link = FaultyLink::new(plan, 42);
            let mut stats = NetStats::default();
            let mut sizes = Vec::new();
            for t in 1..=30 {
                link.begin_tick(t, 4);
                let mut out = Vec::new();
                for round in 0..4 {
                    if interleaved {
                        // Other queries' traffic woven between q0's sends.
                        for q in 1..=3 {
                            link.transmit_up(ObjectId(q), uplink_for(q), &mut out, &mut stats);
                        }
                    }
                    let before = out.len();
                    link.transmit_up(ObjectId(0), uplink_for(0), &mut out, &mut stats);
                    sizes.push(out.len() - before + round - round);
                }
            }
            sizes
        };
        assert_eq!(fates_of_q0(false), fates_of_q0(true));
    }

    #[test]
    fn query_streams_split_and_absorb_preserve_state() {
        // Drawing from a split-out stream must continue exactly where the
        // link's own stream would have, and absorbing it back must let the
        // link continue where the split-out draws stopped.
        let plan = FaultPlan::chaos();
        let downlink_for = |q: u32| DownlinkMsg::RemoveRegion { query: QueryId(q) };
        let run = |split_in_middle: bool| {
            let mut link = FaultyLink::new(plan, 42);
            let mut stats = NetStats::default();
            let mut inboxes = vec![Vec::new(); 2];
            let mut delivered = Vec::new();
            for t in 1..=20 {
                link.begin_tick(t, 2);
                delivered.push(link.deliver_down(0, downlink_for(0), &mut inboxes, &mut stats));
                if split_in_middle {
                    let mut parts = link.split_query_streams(&[vec![0], vec![1]]);
                    for (qi, part) in parts.iter_mut().enumerate() {
                        // Same draw the link itself would have made.
                        let q = QueryId(qi as u32);
                        let _ =
                            plan.draw_fate(part.rng(q), plan.down_loss, plan.down_dup, &mut stats);
                    }
                    link.restore_query_streams(parts);
                } else {
                    for q in 0..2 {
                        delivered.push(link.deliver_down(
                            1,
                            downlink_for(q),
                            &mut inboxes,
                            &mut stats,
                        ));
                    }
                }
                delivered.push(link.deliver_down(0, downlink_for(0), &mut inboxes, &mut stats));
            }
            delivered
        };
        // Filter to query 0's direct deliveries (indices 0 and 2 of each
        // tick in the split run line up with 0 and 3 in the inline run).
        let with_split = run(true);
        let inline = run(false);
        let q0_split: Vec<bool> = with_split.chunks(2).flat_map(|c| c.to_vec()).collect();
        let q0_inline: Vec<bool> = inline.chunks(4).flat_map(|c| vec![c[0], c[3]]).collect();
        assert_eq!(q0_split, q0_inline);
    }

    #[test]
    fn probe_legs_draw_from_the_query_stream() {
        // Probe legs for one query must not perturb another query's
        // delivery fates, and must themselves be deterministic.
        let plan = FaultPlan::chaos();
        let fates = |with_probe_legs: bool| {
            let mut link = FaultyLink::new(plan, 42);
            let mut stats = NetStats::default();
            let mut out = Vec::new();
            for t in 1..=20 {
                link.begin_tick(t, 4);
                for i in 0..4 {
                    if with_probe_legs {
                        let _ = link.probe_leg_lost(QueryId(9), plan.down_loss, &mut stats);
                    }
                    link.transmit_up(ObjectId(i), an_uplink(), &mut out, &mut stats);
                }
            }
            out.len()
        };
        assert_eq!(fates(false), fates(true));
    }

    #[test]
    fn shard_legs_charge_retransmits_but_always_deliver() {
        // Total loss: the retry cap bounds the retransmissions and the leg
        // still goes through (nothing to assert beyond the charge — the
        // caller delivers unconditionally).
        let plan = FaultPlan::builder().loss(1.0).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        link.begin_tick(1, 1);
        link.shard_leg(36, &mut stats);
        assert_eq!(stats.shard.retransmits, 8, "capped retries");
        assert_eq!(stats.shard.retransmit_bytes, 8 * 36);
        // Past the horizon the backbone is perfect again.
        let plan = FaultPlan::builder().loss(1.0).horizon(1).build().unwrap();
        let mut link = FaultyLink::new(plan, 7);
        let mut stats = NetStats::default();
        link.begin_tick(2, 1);
        link.shard_leg(36, &mut stats);
        assert_eq!(stats.shard.retransmits, 0);
    }

    #[test]
    fn builder_rejects_each_bad_knob() {
        assert_eq!(
            FaultPlan::builder().loss(1.5).build(),
            Err(FaultError::ProbabilityOutOfRange("up_loss", 1.5))
        );
        assert_eq!(
            FaultPlan::builder().delay(0.5, 0).build(),
            Err(FaultError::ZeroDelayBound)
        );
        assert_eq!(
            FaultPlan::builder().churn(0.1, 0, 4).build(),
            Err(FaultError::BadOfflineWindow(0, 4))
        );
        assert_eq!(
            FaultPlan::builder().churn(0.1, 5, 4).build(),
            Err(FaultError::BadOfflineWindow(5, 4))
        );
        assert!(FaultPlan::chaos().validate().is_ok());
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::chaos().is_none());
    }

    #[test]
    fn plan_round_trips_through_json_and_validates() {
        let p = FaultPlan::chaos();
        let back: FaultPlan = mknn_util::from_str(&mknn_util::to_string(&p)).unwrap();
        assert_eq!(back, p);
        let doc = mknn_util::to_string(&p).replace("\"up_loss\":0.1", "\"up_loss\":-0.1");
        let err = mknn_util::from_str::<FaultPlan>(&doc).unwrap_err();
        assert!(err.to_string().contains("up_loss"), "{err}");
    }

    #[test]
    fn crash_knobs_round_trip_and_hide_when_zero() {
        // Plans without crashes serialize exactly as before the knobs
        // existed, and old documents still parse.
        for p in [FaultPlan::none(), FaultPlan::chaos()] {
            let doc = mknn_util::to_string(&p);
            assert!(!doc.contains("crash"), "got: {doc}");
            let back: FaultPlan = mknn_util::from_str(&doc).unwrap();
            assert_eq!(back, p);
        }
        let p = FaultPlan::crash();
        let doc = mknn_util::to_string(&p);
        assert!(doc.contains("\"crash_count\":2"), "got: {doc}");
        assert!(doc.contains("\"crash_min\":5"), "got: {doc}");
        assert!(doc.contains("\"crash_max\":10"), "got: {doc}");
        let back: FaultPlan = mknn_util::from_str(&doc).unwrap();
        assert_eq!(back, p);
        // A malformed crash window fails the parse with the typed message.
        let bad = doc.replace("\"crash_min\":5", "\"crash_min\":20");
        let err = mknn_util::from_str::<FaultPlan>(&bad).unwrap_err();
        assert!(err.to_string().contains("crash"), "{err}");
    }

    #[test]
    fn builder_rejects_bad_crash_windows() {
        assert_eq!(
            FaultPlan::builder().crashes(1, 0, 4).build(),
            Err(FaultError::BadCrashWindow(0, 4))
        );
        assert_eq!(
            FaultPlan::builder().crashes(1, 5, 4).build(),
            Err(FaultError::BadCrashWindow(5, 4))
        );
        let p = FaultPlan::builder().crashes(2, 3, 6).build().unwrap();
        assert!(!p.is_none(), "a crash-only plan must arm the link layer");
        assert!(FaultPlan::crash().validate().is_ok());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn crash_schedule_is_deterministic_normalized_and_in_episode() {
        let plan = FaultPlan::builder().crashes(6, 3, 9).build().unwrap();
        let a = FaultyLink::new(plan, 42).crash_schedule(4, 200);
        let b = FaultyLink::new(plan, 42).crash_schedule(4, 200);
        assert_eq!(a, b, "pure function of (plan, seed, shards, ticks)");
        assert!(!a.is_empty());
        for w in &a {
            assert!(w.shard < 4);
            assert!(w.from >= 1 && w.until > w.from);
            assert!(w.until <= 200, "rebirth lands in-episode: {w:?}");
            let len = w.until - w.from;
            assert!(len >= 3, "merged windows only grow: {w:?}");
        }
        // Sorted by start, and non-overlapping per shard.
        for pair in a.windows(2) {
            assert!(pair[0].from <= pair[1].from);
        }
        for s in 0..4 {
            let mut per: Vec<_> = a.iter().filter(|w| w.shard == s).collect();
            per.sort_by_key(|w| w.from);
            for pair in per.windows(2) {
                assert!(pair[0].until < pair[1].from, "disjoint per shard: {a:?}");
            }
        }
        // A different seed moves the schedule.
        let c = FaultyLink::new(plan, 43).crash_schedule(4, 200);
        assert_ne!(a, c);
    }

    #[test]
    fn no_crash_plan_schedules_nothing_and_draws_nothing() {
        let link = FaultyLink::new(FaultPlan::chaos(), 42);
        assert!(link.crash_schedule(8, 200).is_empty());
        // Scheduling must not perturb the live streams: fate sequences with
        // and without a schedule call are identical.
        let fates = |schedule_first: bool| {
            let mut link = FaultyLink::new(FaultPlan::chaos(), 42);
            if schedule_first {
                let _ = link.crash_schedule(8, 200);
            }
            let mut stats = NetStats::default();
            let mut out = Vec::new();
            link.begin_tick(1, 8);
            for i in 0..8 {
                link.shard_leg(36, &mut stats);
                link.transmit_up(ObjectId(i), an_uplink(), &mut out, &mut stats);
            }
            (out.len(), stats.shard.retransmits)
        };
        assert_eq!(fates(false), fates(true));
    }
}
