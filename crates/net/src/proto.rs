//! The protocol contract between the simulation harness and a monitoring
//! method.
//!
//! A [`Protocol`] implementation bundles *both* halves of a distributed
//! method — the per-device client logic and the server logic — inside one
//! value, because the harness executes everything in-process. Distribution
//! is enforced by **information discipline**, which implementations must
//! follow and which the message-conservation tests check:
//!
//! * `client_tick` may read only the device's own ground-truth state
//!   ([`mknn_mobility::MovingObject`]), that device's protocol state, and
//!   the downlinks addressed to it; it communicates exclusively through
//!   [`Uplinks`].
//! * `server_tick` may read only server state and the tick's uplinks; it
//!   communicates exclusively through the [`Outbox`] and the synchronous
//!   [`ProbeService`] (which itself charges messages for every probe and
//!   reply).

use crate::{DownlinkMsg, QuerySpec, Recipient, UplinkMsg};
use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
use mknn_mobility::MovingObject;
use mknn_util::Pool;

/// One tick's worth of client-side inputs, in struct-of-arrays layout.
///
/// The engine hands the whole device population to
/// [`Protocol::client_phase`] as parallel slices (position, velocity,
/// speed cap, per-device inbox) plus an optional offline mask from the
/// fault layer, so a protocol that wants to parallelize its per-device
/// work can chunk the index space `0..len()` directly over
/// [`Pool::map_chunks_mut`]. Device ids are dense: index `i` *is*
/// `ObjectId(i)`.
pub struct ClientCtx<'a> {
    /// The tick being processed (the world has already moved).
    pub tick: Tick,
    /// Per-device positions, indexed by `ObjectId::index`.
    pub pos: &'a [Point],
    /// Per-device velocities this tick.
    pub vel: &'a [Vector],
    /// Per-device speed caps.
    pub max_speed: &'a [f64],
    /// Per-device downlinks from the previous server tick. Offline
    /// devices' inboxes arrive empty (the engine drops and counts their
    /// messages before the phase).
    pub inboxes: &'a [Vec<DownlinkMsg>],
    /// Fault-layer offline mask for this tick (`None` on a perfect link).
    /// Offline devices run no client logic at all.
    pub offline: Option<&'a [bool]>,
    /// The worker pool a parallel implementation should dispatch through.
    /// `Pool` is a configuration value; passing it costs nothing.
    pub pool: Pool,
}

impl ClientCtx<'_> {
    /// Number of devices (all slices share this length).
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Returns `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Whether device `i` is offline this tick.
    pub fn is_offline(&self, i: usize) -> bool {
        self.offline.is_some_and(|mask| mask[i])
    }

    /// Materializes device `i`'s ground-truth state.
    pub fn object(&self, i: usize) -> MovingObject {
        MovingObject {
            id: ObjectId(i as u32),
            pos: self.pos[i],
            vel: self.vel[i],
            max_speed: self.max_speed[i],
        }
    }
}

/// A device's reply to a probe, as collected by the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjReport {
    /// The replying device.
    pub id: ObjectId,
    /// Its position at the probe tick.
    pub pos: Point,
    /// Its velocity at the probe tick.
    pub vel: Vector,
}

/// The per-tick batch of device → server messages.
#[derive(Debug, Default)]
pub struct Uplinks {
    items: Vec<(ObjectId, UplinkMsg)>,
}

impl Uplinks {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one message from `from`.
    pub fn send(&mut self, from: ObjectId, msg: UplinkMsg) {
        self.items.push((from, msg));
    }

    /// The queued messages, in send order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &UplinkMsg)> {
        self.items.iter().map(|(id, m)| (*id, m))
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all messages (harness-internal, between ticks).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Moves every message of `other` onto the end of this batch,
    /// preserving send order. Used by chunked client phases to merge
    /// per-chunk batches back together in chunk order, which keeps the
    /// combined uplink stream byte-identical to a sequential pass.
    pub fn append(&mut self, other: &mut Uplinks) {
        self.items.append(&mut other.items);
    }
}

/// The per-tick batch of server → device messages.
#[derive(Debug, Default)]
pub struct Outbox {
    items: Vec<(Recipient, DownlinkMsg)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one downlink.
    pub fn send(&mut self, to: Recipient, msg: DownlinkMsg) {
        self.items.push((to, msg));
    }

    /// The queued downlinks, in send order.
    pub fn iter(&self) -> impl Iterator<Item = (&Recipient, &DownlinkMsg)> {
        self.items.iter().map(|(r, m)| (r, m))
    }

    /// Number of queued downlinks.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all downlinks (harness-internal, between ticks).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Moves every downlink of `other` onto the end of this outbox,
    /// preserving send order. The engine uses it to merge per-shard
    /// outboxes in ascending shard-id order after a parallel server phase,
    /// which keeps the combined downlink stream deterministic at any
    /// thread count.
    pub fn append(&mut self, other: &mut Outbox) {
        self.items.append(&mut other.items);
    }
}

/// Synchronous probe channel provided by the harness.
///
/// A probe models the geocast-request / unicast-reply round trip the server
/// performs when it must (re)discover the population of a zone — initial
/// evaluation and region expansion. The harness charges the geocast and
/// every reply to [`crate::NetStats`] before returning, so probes are never
/// free.
pub trait ProbeService {
    /// Geocasts a probe over `zone` on behalf of `query` and returns the
    /// replies of every device inside it (excluding `exclude`, the focal
    /// object, which does not answer its own query's probes).
    fn probe(&mut self, query: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport>;

    /// Unicast position request to one device (charged as one downlink
    /// probe plus one uplink reply). Returns `None` for unknown devices.
    fn poll(&mut self, query: QueryId, id: ObjectId) -> Option<ObjReport>;
}

/// One shard's slice of a partitioned server tick.
///
/// The engine builds one task per server shard: the uplinks routed to that
/// shard (query-scoped traffic goes to the query's home shard, `Position`
/// reports to the shard covering the reported position), a shard-local
/// [`ProbeService`] whose coordination charges are deferred and replayed in
/// shard order after the phase, and fresh per-shard accumulators. The
/// protocol consumes the task inside [`Protocol::server_phase`]; the engine
/// merges outboxes, ops, and stats back in ascending shard-id order.
pub struct ShardTask<'p> {
    /// The shard this task belongs to (its index in `ServerPhase::tasks`).
    pub shard: u32,
    /// The uplinks routed to this shard this tick, in global arrival order
    /// filtered to the shard.
    pub uplinks: Uplinks,
    /// Shard-local probe channel (safe to use from a worker thread).
    pub probe: Box<dyn ProbeService + Send + 'p>,
    /// Downlinks this shard emits this tick.
    pub outbox: Outbox,
    /// Computation charged by this shard this tick.
    pub ops: crate::OpCounters,
    /// Wall-clock seconds this shard's server work took (stamped by
    /// [`run_shard_tasks`], accumulated into the episode's per-shard
    /// timing breakdown).
    pub seconds: f64,
}

/// Everything a [`Protocol`] needs to run one partitioned server tick.
pub struct ServerPhase<'e, 'p> {
    /// The tick being processed.
    pub tick: Tick,
    /// Home shard per query id (dense, indexed by `QueryId::index`). The
    /// coordinator keeps this current across focal migrations and crash
    /// failover *before* the phase runs, so a protocol can re-home its
    /// per-query state by diffing against its own directory.
    pub homes: &'e [u32],
    /// Maps a position to the (effective) shard covering it — the same
    /// routing the engine used to split `Position` uplinks over the tasks.
    /// Protocols that partition an object index by position use it to
    /// place entries; it accounts for crash failover.
    pub route: &'e (dyn Fn(Point) -> u32 + Sync),
    /// The worker pool to dispatch per-shard work through.
    pub pool: Pool,
    /// One task per shard, ascending shard id.
    pub tasks: &'e mut [ShardTask<'p>],
}

/// Dispatches one closure per `(state, task)` pair over `pool`, stamping
/// each task's wall time.
///
/// This is the shared harness for partitioned server phases: a protocol
/// keeps a per-shard state vector, zips it with the phase's tasks, and
/// provides the per-shard tick body. Each invocation sees only its own
/// shard's state and task, so the dispatch is safe at any thread count;
/// determinism comes from the engine merging task outputs in ascending
/// shard-id order afterwards. `f` must not touch state it does not own —
/// cross-shard effects go through the probe service or are precomputed
/// sequentially before the dispatch.
pub fn run_shard_tasks<'p, S, F>(pool: Pool, states: &mut [S], tasks: &mut [ShardTask<'p>], f: F)
where
    S: Send,
    F: Fn(&mut S, &mut ShardTask<'p>) + Sync,
{
    debug_assert_eq!(states.len(), tasks.len());
    let jobs: Vec<(&mut S, &mut ShardTask<'p>)> = states.iter_mut().zip(tasks.iter_mut()).collect();
    pool.map_indexed(jobs, |_, (state, task)| {
        let t0 = std::time::Instant::now();
        f(state, task);
        task.seconds += t0.elapsed().as_secs_f64();
    });
}

/// A continuous moving-kNN monitoring method (client + server halves).
pub trait Protocol {
    /// Short method name used in experiment tables ("dknn-set",
    /// "centralized", …).
    fn name(&self) -> &'static str;

    /// One-time setup at tick 0: the server learns the query specs and may
    /// run initial probes; devices learn the static protocol parameters
    /// (grid geometry, thresholds) that real deployments ship at
    /// registration time.
    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut crate::OpCounters,
    );

    /// Client logic for one device at tick `tick`, after the world moved.
    /// `inbox` holds the downlinks addressed to this device from the
    /// previous server tick (and installs from `init` on the first tick).
    fn client_tick(
        &mut self,
        tick: Tick,
        me: &MovingObject,
        inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut crate::OpCounters,
    );

    /// Client logic for the whole device population at one tick.
    ///
    /// The default implementation is the sequential loop every method is
    /// correct under: ascending device id, skipping offline devices. A
    /// method whose per-device work is independent (dKNN band checks, the
    /// centralized position report) overrides this to chunk the id space
    /// over `ctx.pool`, merging per-chunk [`Uplinks`] in chunk order so
    /// the uplink stream — and therefore every downstream metric — stays
    /// byte-identical at any `MKNN_THREADS`. Implementations must
    /// preserve the sequential contract exactly: same uplinks in the same
    /// order, same op counts.
    fn client_phase(&mut self, ctx: &ClientCtx, up: &mut Uplinks, ops: &mut crate::OpCounters) {
        for i in 0..ctx.len() {
            if ctx.is_offline(i) {
                continue;
            }
            let me = ctx.object(i);
            self.client_tick(ctx.tick, &me, &ctx.inboxes[i], up, ops);
        }
    }

    /// Server logic for tick `tick`, consuming the tick's uplinks.
    fn server_tick(
        &mut self,
        tick: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut crate::OpCounters,
    );

    /// Server logic for one tick of a *partitioned* server tier: one task
    /// per shard, each holding the uplinks routed to it.
    ///
    /// Every protocol in this workspace overrides this with real per-shard
    /// state (per-shard query maps, partial indexes) dispatched over
    /// `phase.pool` via [`run_shard_tasks`]; the contract is that answers,
    /// ops, and all device-facing traffic are byte-identical to the
    /// monolithic [`Protocol::server_tick`] at one shard, and invariant
    /// across shard and thread counts.
    ///
    /// The default implementation keeps unpartitioned (e.g. mock)
    /// protocols working: with one task it is exactly the monolithic tick;
    /// with several it merges the task uplinks in ascending shard order
    /// and runs the monolithic tick against shard 0's accumulators — the
    /// old "accounting overlay" semantics.
    fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        let t0 = std::time::Instant::now();
        if let [task] = phase.tasks {
            self.server_tick(
                phase.tick,
                &std::mem::take(&mut task.uplinks),
                task.probe.as_mut(),
                &mut task.outbox,
                &mut task.ops,
            );
            task.seconds += t0.elapsed().as_secs_f64();
            return;
        }
        let mut all = Uplinks::new();
        for task in phase.tasks.iter_mut() {
            all.append(&mut task.uplinks);
        }
        let first = &mut phase.tasks[0];
        self.server_tick(
            phase.tick,
            &all,
            first.probe.as_mut(),
            &mut first.outbox,
            &mut first.ops,
        );
        first.seconds += t0.elapsed().as_secs_f64();
    }

    /// The currently maintained answer of `query`: neighbor ids in
    /// canonical order (ascending distance, ties by id). The slice length
    /// may be < k only when fewer than k objects exist.
    fn answer(&self, query: QueryId) -> &[ObjectId];

    /// The query position the maintained answer is exact *with respect to*.
    ///
    /// Centralized methods return `None`: their answer refers to the focal
    /// object's true current position. Distributed methods return the
    /// broadcast-predicted region center — the protocol guarantees it stays
    /// within the configured drift threshold of the true focal position, and
    /// the harness verifies exactness against it.
    fn effective_center(&self, query: QueryId) -> Option<Point> {
        let _ = query;
        None
    }

    /// Whether the maintained answer preserves the *order* of the k
    /// neighbors (`true`) or only the set (`false`). Controls how the
    /// harness verifies answers against the oracle.
    fn ordered_answers(&self) -> bool {
        true
    }

    /// Whether the method guarantees tick-exact answers (with respect to
    /// [`Protocol::effective_center`]). Approximate methods (periodic
    /// re-evaluation) return `false`; the harness then records their
    /// accuracy instead of asserting it.
    fn guarantees_exact(&self) -> bool {
        true
    }

    /// Informs the method that its traffic rides a lossy transport (the
    /// harness calls this once, before [`Protocol::init`], when a non-empty
    /// [`crate::FaultPlan`] is configured). Hardened methods switch on their
    /// recovery machinery — acks, retransmission, leases, resync — which
    /// costs extra traffic and therefore stays off on a perfect link, where
    /// it would change the byte-exact message counts for no benefit. The
    /// default is a no-op: an unhardened method simply degrades.
    fn set_lossy(&mut self, lossy: bool) {
        let _ = lossy;
    }

    /// Server shard `shard`, covering `block`, crashed: all server-side
    /// state the failed node held is gone. `queries` lists the queries that
    /// were homed there (their per-query member/candidate/lease state is
    /// wiped); any object bookkeeping tied to positions inside `block` is
    /// lost too.
    ///
    /// The coordinator routes around the dead shard, so the logical server
    /// tier keeps serving — a hardened method re-establishes the wiped
    /// queries through its normal refresh machinery (probe + geocast),
    /// which is exactly the failover cost the experiments measure. The
    /// default is a no-op: a method with no per-query server state (or one
    /// that rebuilds from scratch every tick) loses nothing.
    fn server_crash(&mut self, shard: u32, block: Rect, queries: &[QueryId]) {
        let _ = (shard, block, queries);
    }

    /// Crashed shard `shard`, covering `block`, is back: the coordinator's
    /// state-reconstruction sweep replays the boundary objects the surviving
    /// shards covered for the dead block (`replay`, one entry per object
    /// currently inside `block`). Index-based methods re-learn the replayed
    /// positions into the reborn shard's partition; the default is a no-op
    /// for methods whose recovery rides the device-side machinery instead
    /// (announce-on-adopt, lease polls, ack-gated retransmits).
    fn server_recover(&mut self, shard: u32, block: Rect, replay: &[ObjReport]) {
        let _ = (shard, block, replay);
    }
}

/// Below this population, a parallel client phase falls back to the
/// sequential loop: per-tick chunk dispatch overhead beats the win for
/// small worlds, and the small-world golden gates stay trivially on the
/// sequential path.
pub const PAR_MIN_DEVICES: usize = 4096;

/// Runs a *stateless* per-device client body over the whole population,
/// chunked across `ctx.pool`.
///
/// This is the shared harness for protocols whose `client_tick` needs no
/// mutable per-device protocol state (e.g. the centralized baseline's
/// "report position if moved"). Each chunk accumulates its own
/// [`Uplinks`] and [`crate::OpCounters`]; chunks merge in chunk order, so
/// the combined uplink stream and counters are byte-identical to the
/// sequential loop at any thread count or chunk size. Populations below
/// [`PAR_MIN_DEVICES`] (or a one-thread pool) run sequentially.
pub fn parallel_client_phase<F>(
    ctx: &ClientCtx,
    up: &mut Uplinks,
    ops: &mut crate::OpCounters,
    f: F,
) where
    F: Fn(Tick, &MovingObject, &[DownlinkMsg], &mut Uplinks, &mut crate::OpCounters) + Sync,
{
    let n = ctx.len();
    let run_chunk =
        |range: std::ops::Range<usize>, up: &mut Uplinks, ops: &mut crate::OpCounters| {
            for i in range {
                if ctx.is_offline(i) {
                    continue;
                }
                let me = ctx.object(i);
                f(ctx.tick, &me, &ctx.inboxes[i], up, ops);
            }
        };
    if ctx.pool.threads() <= 1 || n < PAR_MIN_DEVICES {
        run_chunk(0..n, up, ops);
        return;
    }
    let chunk = ctx.pool.chunk_size(n);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(n))
        .collect();
    let parts = ctx.pool.map_indexed(ranges, |_, range| {
        let mut up_c = Uplinks::new();
        let mut ops_c = crate::OpCounters::default();
        run_chunk(range, &mut up_c, &mut ops_c);
        (up_c, ops_c)
    });
    for (mut up_c, ops_c) in parts {
        up.append(&mut up_c);
        *ops += ops_c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgKind;

    #[test]
    fn mailboxes_queue_in_order() {
        let mut up = Uplinks::new();
        assert!(up.is_empty());
        up.send(
            ObjectId(1),
            UplinkMsg::Leave {
                query: QueryId(0),
                ver: 0,
                pos: Point::ORIGIN,
            },
        );
        up.send(
            ObjectId(2),
            UplinkMsg::Enter {
                query: QueryId(0),
                ver: 0,
                pos: Point::ORIGIN,
                vel: Vector::ZERO,
            },
        );
        assert_eq!(up.len(), 2);
        let froms: Vec<_> = up.iter().map(|(id, _)| id.0).collect();
        assert_eq!(froms, vec![1, 2]);
        let kinds: Vec<_> = up.iter().map(|(_, m)| m.kind()).collect();
        assert_eq!(kinds, vec![MsgKind::Leave, MsgKind::Enter]);
        up.clear();
        assert!(up.is_empty());
    }

    #[test]
    fn outbox_addresses_all_recipient_forms() {
        let mut out = Outbox::new();
        out.send(
            Recipient::One(ObjectId(3)),
            DownlinkMsg::ClearBand { query: QueryId(0) },
        );
        out.send(
            Recipient::Geocast(Circle::new(Point::ORIGIN, 5.0)),
            DownlinkMsg::RemoveRegion { query: QueryId(0) },
        );
        out.send(
            Recipient::Broadcast,
            DownlinkMsg::RemoveRegion { query: QueryId(1) },
        );
        assert_eq!(out.len(), 3);
        assert!(matches!(out.iter().next().unwrap().0, Recipient::One(_)));
    }
}
