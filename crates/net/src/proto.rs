//! The protocol contract between the simulation harness and a monitoring
//! method.
//!
//! A [`Protocol`] implementation bundles *both* halves of a distributed
//! method — the per-device client logic and the server logic — inside one
//! value, because the harness executes everything in-process. Distribution
//! is enforced by **information discipline**, which implementations must
//! follow and which the message-conservation tests check:
//!
//! * `client_tick` may read only the device's own ground-truth state
//!   ([`mknn_mobility::MovingObject`]), that device's protocol state, and
//!   the downlinks addressed to it; it communicates exclusively through
//!   [`Uplinks`].
//! * `server_tick` may read only server state and the tick's uplinks; it
//!   communicates exclusively through the [`Outbox`] and the synchronous
//!   [`ProbeService`] (which itself charges messages for every probe and
//!   reply).

use crate::{DownlinkMsg, QuerySpec, Recipient, UplinkMsg};
use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
use mknn_mobility::MovingObject;
use mknn_util::Pool;

/// One tick's worth of client-side inputs, in struct-of-arrays layout.
///
/// The engine hands the whole device population to
/// [`Protocol::client_phase`] as parallel slices (position, velocity,
/// speed cap, per-device inbox) plus an optional offline mask from the
/// fault layer, so a protocol that wants to parallelize its per-device
/// work can chunk the index space `0..len()` directly over
/// [`Pool::map_chunks_mut`]. Device ids are dense: index `i` *is*
/// `ObjectId(i)`.
pub struct ClientCtx<'a> {
    /// The tick being processed (the world has already moved).
    pub tick: Tick,
    /// Per-device positions, indexed by `ObjectId::index`.
    pub pos: &'a [Point],
    /// Per-device velocities this tick.
    pub vel: &'a [Vector],
    /// Per-device speed caps.
    pub max_speed: &'a [f64],
    /// Per-device downlinks from the previous server tick. Offline
    /// devices' inboxes arrive empty (the engine drops and counts their
    /// messages before the phase).
    pub inboxes: &'a [Vec<DownlinkMsg>],
    /// Fault-layer offline mask for this tick (`None` on a perfect link).
    /// Offline devices run no client logic at all.
    pub offline: Option<&'a [bool]>,
    /// The worker pool a parallel implementation should dispatch through.
    /// `Pool` is a configuration value; passing it costs nothing.
    pub pool: Pool,
}

impl ClientCtx<'_> {
    /// Number of devices (all slices share this length).
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Returns `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Whether device `i` is offline this tick.
    pub fn is_offline(&self, i: usize) -> bool {
        self.offline.is_some_and(|mask| mask[i])
    }

    /// Materializes device `i`'s ground-truth state.
    pub fn object(&self, i: usize) -> MovingObject {
        MovingObject {
            id: ObjectId(i as u32),
            pos: self.pos[i],
            vel: self.vel[i],
            max_speed: self.max_speed[i],
        }
    }
}

/// A device's reply to a probe, as collected by the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjReport {
    /// The replying device.
    pub id: ObjectId,
    /// Its position at the probe tick.
    pub pos: Point,
    /// Its velocity at the probe tick.
    pub vel: Vector,
}

/// The per-tick batch of device → server messages.
#[derive(Debug, Default)]
pub struct Uplinks {
    items: Vec<(ObjectId, UplinkMsg)>,
}

impl Uplinks {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one message from `from`.
    pub fn send(&mut self, from: ObjectId, msg: UplinkMsg) {
        self.items.push((from, msg));
    }

    /// The queued messages, in send order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &UplinkMsg)> {
        self.items.iter().map(|(id, m)| (*id, m))
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all messages (harness-internal, between ticks).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Moves every message of `other` onto the end of this batch,
    /// preserving send order. Used by chunked client phases to merge
    /// per-chunk batches back together in chunk order, which keeps the
    /// combined uplink stream byte-identical to a sequential pass.
    pub fn append(&mut self, other: &mut Uplinks) {
        self.items.append(&mut other.items);
    }
}

/// The per-tick batch of server → device messages.
#[derive(Debug, Default)]
pub struct Outbox {
    items: Vec<(Recipient, DownlinkMsg)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one downlink.
    pub fn send(&mut self, to: Recipient, msg: DownlinkMsg) {
        self.items.push((to, msg));
    }

    /// The queued downlinks, in send order.
    pub fn iter(&self) -> impl Iterator<Item = (&Recipient, &DownlinkMsg)> {
        self.items.iter().map(|(r, m)| (r, m))
    }

    /// Number of queued downlinks.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops all downlinks (harness-internal, between ticks).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// Synchronous probe channel provided by the harness.
///
/// A probe models the geocast-request / unicast-reply round trip the server
/// performs when it must (re)discover the population of a zone — initial
/// evaluation and region expansion. The harness charges the geocast and
/// every reply to [`crate::NetStats`] before returning, so probes are never
/// free.
pub trait ProbeService {
    /// Geocasts a probe over `zone` on behalf of `query` and returns the
    /// replies of every device inside it (excluding `exclude`, the focal
    /// object, which does not answer its own query's probes).
    fn probe(&mut self, query: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport>;

    /// Unicast position request to one device (charged as one downlink
    /// probe plus one uplink reply). Returns `None` for unknown devices.
    fn poll(&mut self, query: QueryId, id: ObjectId) -> Option<ObjReport>;
}

/// A continuous moving-kNN monitoring method (client + server halves).
pub trait Protocol {
    /// Short method name used in experiment tables ("dknn-set",
    /// "centralized", …).
    fn name(&self) -> &'static str;

    /// One-time setup at tick 0: the server learns the query specs and may
    /// run initial probes; devices learn the static protocol parameters
    /// (grid geometry, thresholds) that real deployments ship at
    /// registration time.
    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut crate::OpCounters,
    );

    /// Client logic for one device at tick `tick`, after the world moved.
    /// `inbox` holds the downlinks addressed to this device from the
    /// previous server tick (and installs from `init` on the first tick).
    fn client_tick(
        &mut self,
        tick: Tick,
        me: &MovingObject,
        inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut crate::OpCounters,
    );

    /// Client logic for the whole device population at one tick.
    ///
    /// The default implementation is the sequential loop every method is
    /// correct under: ascending device id, skipping offline devices. A
    /// method whose per-device work is independent (dKNN band checks, the
    /// centralized position report) overrides this to chunk the id space
    /// over `ctx.pool`, merging per-chunk [`Uplinks`] in chunk order so
    /// the uplink stream — and therefore every downstream metric — stays
    /// byte-identical at any `MKNN_THREADS`. Implementations must
    /// preserve the sequential contract exactly: same uplinks in the same
    /// order, same op counts.
    fn client_phase(&mut self, ctx: &ClientCtx, up: &mut Uplinks, ops: &mut crate::OpCounters) {
        for i in 0..ctx.len() {
            if ctx.is_offline(i) {
                continue;
            }
            let me = ctx.object(i);
            self.client_tick(ctx.tick, &me, &ctx.inboxes[i], up, ops);
        }
    }

    /// Server logic for tick `tick`, consuming the tick's uplinks.
    fn server_tick(
        &mut self,
        tick: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut crate::OpCounters,
    );

    /// The currently maintained answer of `query`: neighbor ids in
    /// canonical order (ascending distance, ties by id). The slice length
    /// may be < k only when fewer than k objects exist.
    fn answer(&self, query: QueryId) -> &[ObjectId];

    /// The query position the maintained answer is exact *with respect to*.
    ///
    /// Centralized methods return `None`: their answer refers to the focal
    /// object's true current position. Distributed methods return the
    /// broadcast-predicted region center — the protocol guarantees it stays
    /// within the configured drift threshold of the true focal position, and
    /// the harness verifies exactness against it.
    fn effective_center(&self, query: QueryId) -> Option<Point> {
        let _ = query;
        None
    }

    /// Whether the maintained answer preserves the *order* of the k
    /// neighbors (`true`) or only the set (`false`). Controls how the
    /// harness verifies answers against the oracle.
    fn ordered_answers(&self) -> bool {
        true
    }

    /// Whether the method guarantees tick-exact answers (with respect to
    /// [`Protocol::effective_center`]). Approximate methods (periodic
    /// re-evaluation) return `false`; the harness then records their
    /// accuracy instead of asserting it.
    fn guarantees_exact(&self) -> bool {
        true
    }

    /// Informs the method that its traffic rides a lossy transport (the
    /// harness calls this once, before [`Protocol::init`], when a non-empty
    /// [`crate::FaultPlan`] is configured). Hardened methods switch on their
    /// recovery machinery — acks, retransmission, leases, resync — which
    /// costs extra traffic and therefore stays off on a perfect link, where
    /// it would change the byte-exact message counts for no benefit. The
    /// default is a no-op: an unhardened method simply degrades.
    fn set_lossy(&mut self, lossy: bool) {
        let _ = lossy;
    }

    /// A server shard covering `block` crashed: all server-side state the
    /// failed node held is gone. `queries` lists the queries that were homed
    /// there (their per-query member/candidate/lease state is wiped); any
    /// object bookkeeping tied to positions inside `block` is lost too.
    ///
    /// The coordinator routes around the dead shard, so the logical server
    /// tier keeps serving — a hardened method re-establishes the wiped
    /// queries through its normal refresh machinery (probe + geocast),
    /// which is exactly the failover cost the experiments measure. The
    /// default is a no-op: a method with no per-query server state (or one
    /// that rebuilds from scratch every tick) loses nothing.
    fn server_crash(&mut self, block: Rect, queries: &[QueryId]) {
        let _ = (block, queries);
    }

    /// The crashed shard covering `block` is back: the coordinator's
    /// state-reconstruction sweep replays the boundary objects the surviving
    /// shards covered for the dead block (`replay`, one entry per object
    /// currently inside `block`). Index-based methods re-learn the replayed
    /// positions; the default is a no-op for methods whose recovery rides
    /// the device-side machinery instead (announce-on-adopt, lease polls,
    /// ack-gated retransmits).
    fn server_recover(&mut self, block: Rect, replay: &[ObjReport]) {
        let _ = (block, replay);
    }
}

/// Below this population, a parallel client phase falls back to the
/// sequential loop: per-tick chunk dispatch overhead beats the win for
/// small worlds, and the small-world golden gates stay trivially on the
/// sequential path.
pub const PAR_MIN_DEVICES: usize = 4096;

/// Runs a *stateless* per-device client body over the whole population,
/// chunked across `ctx.pool`.
///
/// This is the shared harness for protocols whose `client_tick` needs no
/// mutable per-device protocol state (e.g. the centralized baseline's
/// "report position if moved"). Each chunk accumulates its own
/// [`Uplinks`] and [`crate::OpCounters`]; chunks merge in chunk order, so
/// the combined uplink stream and counters are byte-identical to the
/// sequential loop at any thread count or chunk size. Populations below
/// [`PAR_MIN_DEVICES`] (or a one-thread pool) run sequentially.
pub fn parallel_client_phase<F>(
    ctx: &ClientCtx,
    up: &mut Uplinks,
    ops: &mut crate::OpCounters,
    f: F,
) where
    F: Fn(Tick, &MovingObject, &[DownlinkMsg], &mut Uplinks, &mut crate::OpCounters) + Sync,
{
    let n = ctx.len();
    let run_chunk =
        |range: std::ops::Range<usize>, up: &mut Uplinks, ops: &mut crate::OpCounters| {
            for i in range {
                if ctx.is_offline(i) {
                    continue;
                }
                let me = ctx.object(i);
                f(ctx.tick, &me, &ctx.inboxes[i], up, ops);
            }
        };
    if ctx.pool.threads() <= 1 || n < PAR_MIN_DEVICES {
        run_chunk(0..n, up, ops);
        return;
    }
    let chunk = ctx.pool.chunk_size(n);
    let ranges: Vec<std::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(n))
        .collect();
    let parts = ctx.pool.map_indexed(ranges, |_, range| {
        let mut up_c = Uplinks::new();
        let mut ops_c = crate::OpCounters::default();
        run_chunk(range, &mut up_c, &mut ops_c);
        (up_c, ops_c)
    });
    for (mut up_c, ops_c) in parts {
        up.append(&mut up_c);
        *ops += ops_c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgKind;

    #[test]
    fn mailboxes_queue_in_order() {
        let mut up = Uplinks::new();
        assert!(up.is_empty());
        up.send(
            ObjectId(1),
            UplinkMsg::Leave {
                query: QueryId(0),
                ver: 0,
                pos: Point::ORIGIN,
            },
        );
        up.send(
            ObjectId(2),
            UplinkMsg::Enter {
                query: QueryId(0),
                ver: 0,
                pos: Point::ORIGIN,
                vel: Vector::ZERO,
            },
        );
        assert_eq!(up.len(), 2);
        let froms: Vec<_> = up.iter().map(|(id, _)| id.0).collect();
        assert_eq!(froms, vec![1, 2]);
        let kinds: Vec<_> = up.iter().map(|(_, m)| m.kind()).collect();
        assert_eq!(kinds, vec![MsgKind::Leave, MsgKind::Enter]);
        up.clear();
        assert!(up.is_empty());
    }

    #[test]
    fn outbox_addresses_all_recipient_forms() {
        let mut out = Outbox::new();
        out.send(
            Recipient::One(ObjectId(3)),
            DownlinkMsg::ClearBand { query: QueryId(0) },
        );
        out.send(
            Recipient::Geocast(Circle::new(Point::ORIGIN, 5.0)),
            DownlinkMsg::RemoveRegion { query: QueryId(0) },
        );
        out.send(
            Recipient::Broadcast,
            DownlinkMsg::RemoveRegion { query: QueryId(1) },
        );
        assert_eq!(out.len(), 3);
        assert!(matches!(out.iter().next().unwrap().0, Recipient::One(_)));
    }
}
