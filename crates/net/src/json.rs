//! JSON conversions for wire vocabulary and counters.
//!
//! [`MsgKind`] serializes as its variant name (matching the former serde
//! unit-variant encoding), so the per-kind tally map becomes a plain JSON
//! object keyed by kind name.

use crate::{MsgKind, NetStats, OpCounters, QuerySpec, ShardStats};
use mknn_util::impl_json_struct;
use mknn_util::json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

impl_json_struct!(QuerySpec { id, focal, k });

// The shard substructure is emitted by `NetStats` only when some leg was
// actually charged. Hand-written (it used to be a plain full-field struct)
// so the recovery counters appear only when a crash actually ran: sharded
// documents from crash-free episodes stay byte-identical to the format that
// predates the server failure domain, and those old documents still parse.
impl ToJson for ShardStats {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("fanout_msgs", self.fanout_msgs.to_json()),
            ("fanout_bytes", self.fanout_bytes.to_json()),
            ("merge_msgs", self.merge_msgs.to_json()),
            ("merge_bytes", self.merge_bytes.to_json()),
            ("handoff_msgs", self.handoff_msgs.to_json()),
            ("handoff_bytes", self.handoff_bytes.to_json()),
            ("forward_msgs", self.forward_msgs.to_json()),
            ("forward_bytes", self.forward_bytes.to_json()),
            ("migrate_msgs", self.migrate_msgs.to_json()),
            ("migrate_bytes", self.migrate_bytes.to_json()),
            ("retransmits", self.retransmits.to_json()),
            ("retransmit_bytes", self.retransmit_bytes.to_json()),
        ];
        if self.recover_msgs != 0 {
            fields.push(("recover_msgs", self.recover_msgs.to_json()));
            fields.push(("recover_bytes", self.recover_bytes.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for ShardStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ShardStats {
            fanout_msgs: v.parse_field("fanout_msgs")?,
            fanout_bytes: v.parse_field("fanout_bytes")?,
            merge_msgs: v.parse_field("merge_msgs")?,
            merge_bytes: v.parse_field("merge_bytes")?,
            handoff_msgs: v.parse_field("handoff_msgs")?,
            handoff_bytes: v.parse_field("handoff_bytes")?,
            forward_msgs: v.parse_field("forward_msgs")?,
            forward_bytes: v.parse_field("forward_bytes")?,
            migrate_msgs: v.parse_field("migrate_msgs")?,
            migrate_bytes: v.parse_field("migrate_bytes")?,
            retransmits: v.parse_field("retransmits")?,
            retransmit_bytes: v.parse_field("retransmit_bytes")?,
            recover_msgs: v.parse_field_or_default("recover_msgs")?,
            recover_bytes: v.parse_field_or_default("recover_bytes")?,
        })
    }
}

// Hand-written so `retransmits` is emitted only when nonzero: episodes on a
// perfect link serialize byte-identically to documents written before the
// field existed (and those old documents still parse, defaulting to 0).
impl ToJson for OpCounters {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("server_ops", self.server_ops.to_json()),
            ("client_ops", self.client_ops.to_json()),
        ];
        if self.retransmits != 0 {
            fields.push(("retransmits", self.retransmits.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for OpCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(OpCounters {
            server_ops: v.parse_field("server_ops")?,
            client_ops: v.parse_field("client_ops")?,
            retransmits: v.parse_field_or_default("retransmits")?,
        })
    }
}

impl MsgKind {
    /// The variant name, as used in JSON documents.
    pub fn variant_name(self) -> &'static str {
        match self {
            MsgKind::Position => "Position",
            MsgKind::Enter => "Enter",
            MsgKind::Leave => "Leave",
            MsgKind::BandCross => "BandCross",
            MsgKind::ProbeReply => "ProbeReply",
            MsgKind::QueryMove => "QueryMove",
            MsgKind::InstallRegion => "InstallRegion",
            MsgKind::RemoveRegion => "RemoveRegion",
            MsgKind::Probe => "Probe",
            MsgKind::SetBand => "SetBand",
            MsgKind::ClearBand => "ClearBand",
            MsgKind::Ack => "Ack",
            MsgKind::AnswerPush => "AnswerPush",
        }
    }

    /// Inverse of [`MsgKind::variant_name`].
    pub fn from_variant_name(name: &str) -> Option<MsgKind> {
        MsgKind::ALL.into_iter().find(|k| k.variant_name() == name)
    }
}

impl ToJson for MsgKind {
    fn to_json(&self) -> Json {
        Json::Str(self.variant_name().to_string())
    }
}

impl FromJson for MsgKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v.as_str()?;
        MsgKind::from_variant_name(s)
            .ok_or_else(|| JsonError::new(format!("unknown MsgKind `{s}`")))
    }
}

impl ToJson for NetStats {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("uplink_msgs", self.uplink_msgs.to_json()),
            ("uplink_bytes", self.uplink_bytes.to_json()),
            (
                "downlink_unicast_msgs",
                self.downlink_unicast_msgs.to_json(),
            ),
            (
                "downlink_geocast_msgs",
                self.downlink_geocast_msgs.to_json(),
            ),
            (
                "downlink_broadcast_msgs",
                self.downlink_broadcast_msgs.to_json(),
            ),
            ("downlink_bytes", self.downlink_bytes.to_json()),
        ];
        // Fault-layer counters appear only when a fault actually occurred,
        // keeping perfect-link documents byte-identical to the pre-fault
        // format.
        if self.dropped_msgs != 0 {
            fields.push(("dropped_msgs", self.dropped_msgs.to_json()));
        }
        if self.dup_msgs != 0 {
            fields.push(("dup_msgs", self.dup_msgs.to_json()));
        }
        if self.delayed_msgs != 0 {
            fields.push(("delayed_msgs", self.delayed_msgs.to_json()));
        }
        // Like the fault counters: the shard overlay appears only when an
        // inter-shard leg was charged, so single-shard documents stay
        // byte-identical to the pre-shard format.
        if !self.shard.is_empty() {
            fields.push(("shard", self.shard.to_json()));
        }
        // Scoped-downlink counters appear only when the replication layer
        // ran, keeping legacy-mode documents byte-identical to the
        // pre-framing format.
        if self.frames != 0 {
            fields.push(("frames", self.frames.to_json()));
        }
        if self.frame_header_bytes != 0 {
            fields.push(("frame_header_bytes", self.frame_header_bytes.to_json()));
        }
        if self.delta_full_fallbacks != 0 {
            fields.push(("delta_full_fallbacks", self.delta_full_fallbacks.to_json()));
        }
        // The ack-channel byte share exists only in lossy mode; perfect-link
        // documents stay byte-identical to the pre-ack-accounting format.
        if self.ack_bytes != 0 {
            fields.push(("ack_bytes", self.ack_bytes.to_json()));
        }
        fields.push((
            "by_kind",
            Json::object(
                self.by_kind
                    .iter()
                    .map(|(k, v)| (k.variant_name(), v.to_json())),
            ),
        ));
        Json::object(fields)
    }
}

impl FromJson for NetStats {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut by_kind = BTreeMap::new();
        for (key, val) in v.field("by_kind")?.as_obj()? {
            let kind = MsgKind::from_variant_name(key)
                .ok_or_else(|| JsonError::new(format!("unknown MsgKind `{key}` in by_kind")))?;
            by_kind.insert(kind, val.as_u64().map_err(|e| e.context("by_kind tally"))?);
        }
        Ok(NetStats {
            uplink_msgs: v.parse_field("uplink_msgs")?,
            uplink_bytes: v.parse_field("uplink_bytes")?,
            downlink_unicast_msgs: v.parse_field("downlink_unicast_msgs")?,
            downlink_geocast_msgs: v.parse_field("downlink_geocast_msgs")?,
            downlink_broadcast_msgs: v.parse_field("downlink_broadcast_msgs")?,
            downlink_bytes: v.parse_field("downlink_bytes")?,
            by_kind,
            dropped_msgs: v.parse_field_or_default("dropped_msgs")?,
            dup_msgs: v.parse_field_or_default("dup_msgs")?,
            delayed_msgs: v.parse_field_or_default("delayed_msgs")?,
            shard: v.parse_field_or_default("shard")?,
            frames: v.parse_field_or_default("frames")?,
            frame_header_bytes: v.parse_field_or_default("frame_header_bytes")?,
            delta_full_fallbacks: v.parse_field_or_default("delta_full_fallbacks")?,
            ack_bytes: v.parse_field_or_default("ack_bytes")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::{ObjectId, QueryId};
    use mknn_util::{from_str, to_string};

    #[test]
    fn query_spec_round_trips() {
        let q = QuerySpec {
            id: QueryId(3),
            focal: ObjectId(77),
            k: 12,
        };
        let back: QuerySpec = from_str(&to_string(&q)).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn msg_kind_names_are_stable_and_invertible() {
        for k in MsgKind::ALL {
            assert_eq!(MsgKind::from_variant_name(k.variant_name()), Some(k));
            let back: MsgKind = from_str(&to_string(&k)).unwrap();
            assert_eq!(back, k);
        }
        assert!(MsgKind::from_variant_name("Bogus").is_none());
    }

    #[test]
    fn net_stats_round_trip_preserves_tallies() {
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        s.count_uplink(MsgKind::Position, 44);
        s.count_geocast(MsgKind::InstallRegion, 52, 9);
        s.count_broadcast(MsgKind::Probe, 36);
        let json = to_string(&s);
        let back: NetStats = from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(json.contains("\"InstallRegion\":1"), "got: {json}");
    }

    #[test]
    fn op_counters_round_trip() {
        let ops = OpCounters {
            server_ops: 123,
            client_ops: 456_789,
            retransmits: 0,
        };
        let json = to_string(&ops);
        assert!(!json.contains("retransmits"), "zero is omitted: {json}");
        let back: OpCounters = from_str(&json).unwrap();
        assert_eq!(back, ops);
        let lossy = OpCounters {
            retransmits: 7,
            ..ops
        };
        let json = to_string(&lossy);
        assert!(json.contains("\"retransmits\":7"), "got: {json}");
        let back: OpCounters = from_str(&json).unwrap();
        assert_eq!(back, lossy);
    }

    #[test]
    fn shard_counters_round_trip_and_hide_when_empty() {
        use crate::ShardMsg;
        use mknn_geom::{Circle, Point};
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        let single = to_string(&s);
        assert!(!single.contains("shard"), "got: {single}");
        s.shard.count(&ShardMsg::Fanout {
            query: QueryId(0),
            zone: Circle::new(Point::ORIGIN, 3.0),
        });
        s.shard.count_retransmits(1, 36);
        let sharded = to_string(&s);
        assert!(sharded.contains("\"shard\""), "got: {sharded}");
        assert!(sharded.contains("\"fanout_msgs\":1"), "got: {sharded}");
        let back: NetStats = from_str(&sharded).unwrap();
        assert_eq!(back, s);
        // Pre-shard documents (no `shard` key) parse to the empty overlay.
        let old: NetStats = from_str(&single).unwrap();
        assert!(old.shard.is_empty());
        // Crash-free sharded documents hide the recovery counters (the
        // pre-crash format), and recovery legs surface them.
        assert!(!sharded.contains("recover"), "got: {sharded}");
        s.shard.count(&ShardMsg::Recover { shard: 1, count: 3 });
        let crashed = to_string(&s);
        assert!(crashed.contains("\"recover_msgs\":1"), "got: {crashed}");
        assert!(crashed.contains("\"recover_bytes\""), "got: {crashed}");
        let back: NetStats = from_str(&crashed).unwrap();
        assert_eq!(back, s);
        // Pre-crash documents parse with the counters defaulted to zero.
        let old: NetStats = from_str(&sharded).unwrap();
        assert_eq!(old.shard.recover_msgs, 0);
    }

    #[test]
    fn ack_byte_share_round_trips_and_hides_when_zero() {
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        let clean = to_string(&s);
        assert!(!clean.contains("ack_bytes"), "got: {clean}");
        s.count_unicast(MsgKind::Ack, 5);
        s.ack_bytes += 5;
        let lossy = to_string(&s);
        assert!(lossy.contains("\"ack_bytes\":5"), "got: {lossy}");
        let back: NetStats = from_str(&lossy).unwrap();
        assert_eq!(back, s);
        // Pre-ack-accounting documents parse with the share at zero.
        let old: NetStats = from_str(&clean).unwrap();
        assert_eq!(old.ack_bytes, 0);
    }

    #[test]
    fn frame_counters_round_trip_and_hide_when_zero() {
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        let legacy = to_string(&s);
        assert!(!legacy.contains("frames"), "got: {legacy}");
        assert!(!legacy.contains("frame_header_bytes"), "got: {legacy}");
        assert!(!legacy.contains("delta_full_fallbacks"), "got: {legacy}");
        s.count_frame(40, 3);
        s.delta_full_fallbacks += 2;
        let scoped = to_string(&s);
        assert!(scoped.contains("\"frames\":1"), "got: {scoped}");
        assert!(scoped.contains("\"frame_header_bytes\":3"), "got: {scoped}");
        assert!(
            scoped.contains("\"delta_full_fallbacks\":2"),
            "got: {scoped}"
        );
        let back: NetStats = from_str(&scoped).unwrap();
        assert_eq!(back, s);
        // Pre-framing documents parse with the counters defaulted to zero.
        let old: NetStats = from_str(&legacy).unwrap();
        assert_eq!(old.frames, 0);
    }

    #[test]
    fn fault_counters_round_trip_and_hide_when_zero() {
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        let clean = to_string(&s);
        assert!(!clean.contains("dropped_msgs"), "got: {clean}");
        assert!(!clean.contains("dup_msgs"), "got: {clean}");
        assert!(!clean.contains("delayed_msgs"), "got: {clean}");
        s.count_dropped();
        s.count_delayed();
        let faulty = to_string(&s);
        assert!(faulty.contains("\"dropped_msgs\":1"), "got: {faulty}");
        assert!(!faulty.contains("dup_msgs"), "got: {faulty}");
        let back: NetStats = from_str(&faulty).unwrap();
        assert_eq!(back, s);
    }
}
