//! The wire vocabulary: every message any protocol in the workspace sends,
//! with a deterministic byte-size model.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};

/// A registered continuous moving-kNN query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Identity of the query.
    pub id: QueryId,
    /// The focal object the query travels with. The k nearest neighbors are
    /// computed around this object's current position; the focal object
    /// itself is excluded from its own answer.
    pub focal: ObjectId,
    /// Number of neighbors to maintain.
    pub k: usize,
}

/// Bytes on the wire for one *unframed* transmission of `wire_bits` payload
/// bits: modeled link-layer overhead plus the bit-packed body, rounded up to
/// whole bytes. Per-tick frames pay the link overhead once per frame instead
/// (see `crate::downlink`).
fn unframed_bytes(wire_bits: usize) -> usize {
    (crate::wire::LINK_HEADER_BITS + wire_bits).div_ceil(8)
}

/// Device → server messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UplinkMsg {
    /// Periodic full location report (the centralized baseline's firehose,
    /// also used by periodic baselines on their reporting ticks).
    Position {
        /// Current position.
        pos: Point,
        /// Current velocity.
        vel: Vector,
    },
    /// The device crossed *into* a query's monitoring region.
    Enter {
        /// Which query's region was crossed.
        query: QueryId,
        /// Install tick of the region version the device evaluated (lets
        /// the server detect events issued against stale versions).
        ver: mknn_geom::Tick,
        /// Position at the crossing tick.
        pos: Point,
        /// Velocity at the crossing tick.
        vel: Vector,
    },
    /// The device crossed *out of* a query's monitoring region.
    Leave {
        /// Which query's region was left.
        query: QueryId,
        /// Install tick of the region version the device evaluated.
        ver: mknn_geom::Tick,
        /// Position at the crossing tick (lets the server keep a fresh
        /// last-known position for re-entry estimation).
        pos: Point,
    },
    /// The device crossed a boundary of its assigned response band.
    BandCross {
        /// Which query the band belongs to.
        query: QueryId,
        /// Install tick of the region version the band was issued under.
        ver: mknn_geom::Tick,
        /// Position at the crossing tick.
        pos: Point,
        /// Velocity at the crossing tick.
        vel: Vector,
    },
    /// Reply to a server [`DownlinkMsg::Probe`].
    ProbeReply {
        /// Which query's probe is being answered.
        query: QueryId,
        /// Current position.
        pos: Point,
        /// Current velocity.
        vel: Vector,
    },
    /// The query focal object drifted beyond its reporting threshold.
    QueryMove {
        /// Which query moved.
        query: QueryId,
        /// New focal position.
        pos: Point,
        /// Focal velocity.
        vel: Vector,
    },
}

impl UplinkMsg {
    /// Encoded size of one unframed transmission, measured from the
    /// bit-packed wire format ([`crate::Wire`], DESIGN.md §10).
    pub fn size_bytes(&self) -> usize {
        unframed_bytes(crate::Wire::wire_bits(self))
    }

    /// Stable label for per-kind tallies.
    pub fn kind(&self) -> MsgKind {
        match self {
            UplinkMsg::Position { .. } => MsgKind::Position,
            UplinkMsg::Enter { .. } => MsgKind::Enter,
            UplinkMsg::Leave { .. } => MsgKind::Leave,
            UplinkMsg::BandCross { .. } => MsgKind::BandCross,
            UplinkMsg::ProbeReply { .. } => MsgKind::ProbeReply,
            UplinkMsg::QueryMove { .. } => MsgKind::QueryMove,
        }
    }

    /// The query this uplink is addressed to, when it carries one.
    /// [`UplinkMsg::Position`] reports are query-agnostic (the centralized
    /// and periodic baselines' firehose) and are ingested by the sender's
    /// local shard.
    pub fn query(&self) -> Option<QueryId> {
        match *self {
            UplinkMsg::Position { .. } => None,
            UplinkMsg::Enter { query, .. }
            | UplinkMsg::Leave { query, .. }
            | UplinkMsg::BandCross { query, .. }
            | UplinkMsg::ProbeReply { query, .. }
            | UplinkMsg::QueryMove { query, .. } => Some(query),
        }
    }
}

/// Server → device messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DownlinkMsg {
    /// Installs (or refreshes) a query's monitoring region on every device
    /// in the geocast zone. Devices evaluate it locally each tick.
    InstallRegion {
        /// The query being monitored.
        query: QueryId,
        /// Install tick: identifies the region *version*. A heartbeat
        /// re-sends the same version unchanged (so client-side center
        /// prediction stays bit-identical to the server's).
        ver: mknn_geom::Tick,
        /// Region center (the focal position the server last knew).
        center: Point,
        /// Focal velocity at install time; devices advance the center by it
        /// when predicting the region's current placement.
        vel: Vector,
        /// Region radius (`d_k + slack`).
        r_out: f64,
    },
    /// Uninstalls a query's region (query deregistered).
    RemoveRegion {
        /// The query to drop.
        query: QueryId,
    },
    /// One-shot probe: every device in the geocast zone must reply with a
    /// [`UplinkMsg::ProbeReply`]. Used for initial evaluation and region
    /// expansion after answer invalidation.
    Probe {
        /// The query on whose behalf the probe runs.
        query: QueryId,
        /// Probe zone.
        zone: Circle,
    },
    /// Installs a response band (annulus around the region center) on one
    /// candidate device: stay silent while inside it.
    SetBand {
        /// The query the band belongs to.
        query: QueryId,
        /// Install tick of the region version this band belongs to.
        ver: mknn_geom::Tick,
        /// Inner band radius.
        inner: f64,
        /// Outer band radius (may be `f64::INFINITY` for the outermost
        /// non-answer band).
        outer: f64,
    },
    /// Removes a previously installed band from one device.
    ClearBand {
        /// The query whose band to clear.
        query: QueryId,
    },
    /// Acknowledges a critical uplink (`Enter`/`Leave`) so the device can
    /// stop retransmitting it. Only sent in lossy mode (see
    /// [`crate::Protocol::set_lossy`]); a perfect link never carries acks.
    Ack {
        /// The query the acknowledged event belonged to.
        query: QueryId,
        /// Region version the acknowledged event was issued under (the
        /// idempotence token: device and server agree on which crossing
        /// this settles).
        ver: mknn_geom::Tick,
        /// Kind of the acknowledged uplink ([`MsgKind::Enter`] or
        /// [`MsgKind::Leave`]).
        kind: MsgKind,
    },
}

impl DownlinkMsg {
    /// Encoded size of one unframed transmission, measured from the
    /// bit-packed wire format ([`crate::Wire`], DESIGN.md §10).
    pub fn size_bytes(&self) -> usize {
        unframed_bytes(crate::Wire::wire_bits(self))
    }

    /// Stable label for per-kind tallies.
    pub fn kind(&self) -> MsgKind {
        match self {
            DownlinkMsg::InstallRegion { .. } => MsgKind::InstallRegion,
            DownlinkMsg::RemoveRegion { .. } => MsgKind::RemoveRegion,
            DownlinkMsg::Probe { .. } => MsgKind::Probe,
            DownlinkMsg::SetBand { .. } => MsgKind::SetBand,
            DownlinkMsg::ClearBand { .. } => MsgKind::ClearBand,
            DownlinkMsg::Ack { .. } => MsgKind::Ack,
        }
    }

    /// The query this downlink belongs to. Every downlink variant carries
    /// one — the sharded server tier uses it to attribute the transmission
    /// to the query's home shard.
    pub fn query(&self) -> QueryId {
        match *self {
            DownlinkMsg::InstallRegion { query, .. }
            | DownlinkMsg::RemoveRegion { query }
            | DownlinkMsg::Probe { query, .. }
            | DownlinkMsg::SetBand { query, .. }
            | DownlinkMsg::ClearBand { query }
            | DownlinkMsg::Ack { query, .. } => query,
        }
    }
}

/// Shard-tier coordination messages: the legs the grid-partitioned server
/// shards exchange over the backbone when a query or its traffic spans more
/// than one shard. Charged into [`crate::ShardStats`] by the harness —
/// never into the device-facing counters, so a G-shard run reports exactly
/// the same protocol traffic as a single server plus a separately measured
/// coordination overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardMsg {
    /// The coordinating (home) shard fans a zone-scoped task — a region
    /// install, a geocast page, or a probe — out to a covering shard whose
    /// cell block overlaps the zone.
    Fanout {
        /// The query on whose behalf the task runs.
        query: QueryId,
        /// The zone the covering shard must service.
        zone: Circle,
    },
    /// A covering shard returns its partial top-k answer (the candidates it
    /// collected inside its block) to the coordinating shard for the merge.
    PartialAnswer {
        /// The query being answered.
        query: QueryId,
        /// Number of `(object, distance)` candidate entries carried.
        count: usize,
    },
    /// Ownership transfer of an object whose position crossed a shard
    /// boundary: the old owner ships the object's monitoring state to the
    /// new owner.
    Handoff {
        /// The object changing hands.
        object: ObjectId,
        /// Position at the crossing tick.
        pos: Point,
        /// Velocity at the crossing tick.
        vel: Vector,
    },
    /// A message tunneled between shards: an uplink that surfaced at the
    /// sender's local shard but belongs to a query homed elsewhere, or a
    /// unicast downlink delivered through a foreign shard's cell block.
    Forward {
        /// The query the tunneled message belongs to.
        query: QueryId,
        /// Encoded size of the tunneled message (its own header included).
        payload_bytes: usize,
    },
    /// The query's focal object crossed into another shard's block: the
    /// query's server state (members, region version, bands) migrates to
    /// the new home shard.
    Migrate {
        /// The query whose home changed.
        query: QueryId,
        /// Number of member entries shipped with the state.
        members: usize,
    },
    /// State-reconstruction sweep after a shard rebirth: a surviving shard
    /// replays the boundary objects it covered for the crashed block (id,
    /// position, velocity per entry) so the reborn shard can rebuild its
    /// object-home table without waiting for every device to speak.
    Recover {
        /// The reborn shard the replay is addressed to.
        shard: u32,
        /// Number of replayed object entries carried.
        count: usize,
    },
}

impl ShardMsg {
    /// Encoded size of one backbone transmission, measured from the
    /// bit-packed wire format ([`crate::Wire`], DESIGN.md §10): tag and ids
    /// as varints plus the modeled payload the variant carries.
    pub fn size_bytes(&self) -> usize {
        unframed_bytes(crate::Wire::wire_bits(self))
    }

    /// Stable label for the per-category [`crate::ShardStats`] tallies.
    pub fn kind(&self) -> ShardMsgKind {
        match self {
            ShardMsg::Fanout { .. } => ShardMsgKind::Fanout,
            ShardMsg::PartialAnswer { .. } => ShardMsgKind::PartialAnswer,
            ShardMsg::Handoff { .. } => ShardMsgKind::Handoff,
            ShardMsg::Forward { .. } => ShardMsgKind::Forward,
            ShardMsg::Migrate { .. } => ShardMsgKind::Migrate,
            ShardMsg::Recover { .. } => ShardMsgKind::Recover,
        }
    }
}

/// Category labels for the inter-shard legs (one per [`ShardMsg`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum ShardMsgKind {
    Fanout,
    PartialAnswer,
    Handoff,
    Forward,
    Migrate,
    Recover,
}

/// Who a downlink is addressed to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recipient {
    /// One device.
    One(ObjectId),
    /// Every device currently inside the zone. Charged per overlapped grid
    /// cell by the harness (the infrastructure pages each cell once).
    Geocast(Circle),
    /// Every device in the system (charged as one system-wide broadcast per
    /// the byte model; used only by the naive baseline).
    Broadcast,
}

/// Message kind labels for per-kind tallies (Experiment E10's breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum MsgKind {
    Position,
    Enter,
    Leave,
    BandCross,
    ProbeReply,
    QueryMove,
    InstallRegion,
    RemoveRegion,
    Probe,
    SetBand,
    ClearBand,
    Ack,
    /// Answer replication to the focal device (`crate::downlink`): the
    /// harness-synthesized push that ships the current top-k member list to
    /// the device that asked the query.
    AnswerPush,
}

impl MsgKind {
    /// All kinds, uplinks first (for stable table layouts).
    pub const ALL: [MsgKind; 13] = [
        MsgKind::Position,
        MsgKind::Enter,
        MsgKind::Leave,
        MsgKind::BandCross,
        MsgKind::ProbeReply,
        MsgKind::QueryMove,
        MsgKind::InstallRegion,
        MsgKind::RemoveRegion,
        MsgKind::Probe,
        MsgKind::SetBand,
        MsgKind::ClearBand,
        MsgKind::Ack,
        MsgKind::AnswerPush,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Position => "pos",
            MsgKind::Enter => "enter",
            MsgKind::Leave => "leave",
            MsgKind::BandCross => "band",
            MsgKind::ProbeReply => "probe-re",
            MsgKind::QueryMove => "q-move",
            MsgKind::InstallRegion => "install",
            MsgKind::RemoveRegion => "remove",
            MsgKind::Probe => "probe",
            MsgKind::SetBand => "set-band",
            MsgKind::ClearBand => "clr-band",
            MsgKind::Ack => "ack",
            MsgKind::AnswerPush => "answer",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::Point;

    #[test]
    fn sizes_are_measured_wire_bits_plus_link_overhead() {
        // size_bytes is a thin wrapper over the Wire trait: link-layer
        // overhead plus the bit-packed body, rounded up to whole bytes.
        let up = UplinkMsg::Leave {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
        };
        assert_eq!(
            up.size_bytes(),
            (crate::wire::LINK_HEADER_BITS + crate::Wire::wire_bits(&up)).div_ceil(8)
        );
        assert_eq!(up.size_bytes(), 7); // 3 tag + 8 query + 8 ver + 16 origin + 16 link
        let down = DownlinkMsg::RemoveRegion { query: QueryId(0) };
        assert_eq!(down.size_bytes(), 4); // 4 tag + 8 query + 16 link
        let install = DownlinkMsg::InstallRegion {
            query: QueryId(0),
            ver: 0,
            center: Point::ORIGIN,
            vel: Vector::ZERO,
            r_out: 1.0,
        };
        assert!(install.size_bytes() > down.size_bytes());
        // Varint ids: a bigger id costs more bits, never fewer.
        let far = DownlinkMsg::RemoveRegion {
            query: QueryId(u32::MAX),
        };
        assert!(far.size_bytes() > down.size_bytes());
    }

    #[test]
    fn wire_model_undercuts_the_legacy_struct_proxy() {
        // The whole point of the redesign: measured bit-packed sizes are
        // strictly below the old hand-summed struct proxies for every
        // smoke-scale message shape. The proxy model (12 B header + 16 B
        // per coordinate pair + 8 B per scalar) lives only here now — the
        // Wire trait is the single sizing authority in the crate proper.
        const HEADER: usize = 12;
        const COORD: usize = 16;
        const SCALAR: usize = 8;
        let legacy = |m: &DownlinkMsg| match m {
            DownlinkMsg::InstallRegion { .. } => HEADER + 2 * COORD + 2 * SCALAR,
            DownlinkMsg::RemoveRegion { .. } => HEADER,
            DownlinkMsg::Probe { .. } => HEADER + COORD + SCALAR,
            DownlinkMsg::SetBand { .. } => HEADER + 3 * SCALAR,
            DownlinkMsg::ClearBand { .. } => HEADER,
            DownlinkMsg::Ack { .. } => HEADER + SCALAR,
        };
        let msgs = [
            DownlinkMsg::InstallRegion {
                query: QueryId(9),
                ver: 120,
                center: Point::new(812.5, 409.25),
                vel: Vector::new(1.5, -2.0),
                r_out: 155.0,
            },
            DownlinkMsg::SetBand {
                query: QueryId(9),
                ver: 120,
                inner: 40.0,
                outer: f64::INFINITY,
            },
            DownlinkMsg::Ack {
                query: QueryId(9),
                ver: 120,
                kind: MsgKind::Enter,
            },
        ];
        for m in msgs {
            assert!(
                m.size_bytes() < legacy(&m),
                "{m:?}: wire {} >= legacy {}",
                m.size_bytes(),
                legacy(&m)
            );
        }
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        let a = UplinkMsg::Position {
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        }
        .kind();
        let b = UplinkMsg::Enter {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        }
        .kind();
        assert_ne!(a, b);
        assert_eq!(MsgKind::ALL.len(), 13);
        // Labels are unique.
        let mut labels: Vec<_> = MsgKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 13);
    }

    #[test]
    fn every_downlink_names_its_query_and_uplinks_except_position() {
        let q = QueryId(7);
        assert_eq!(DownlinkMsg::RemoveRegion { query: q }.query(), q);
        assert_eq!(
            DownlinkMsg::Probe {
                query: q,
                zone: Circle::new(Point::ORIGIN, 5.0),
            }
            .query(),
            q
        );
        assert_eq!(
            UplinkMsg::Position {
                pos: Point::ORIGIN,
                vel: Vector::ZERO,
            }
            .query(),
            None
        );
        assert_eq!(
            UplinkMsg::QueryMove {
                query: q,
                pos: Point::ORIGIN,
                vel: Vector::ZERO,
            }
            .query(),
            Some(q)
        );
    }

    #[test]
    fn shard_msg_sizes_scale_with_payload() {
        let fanout = ShardMsg::Fanout {
            query: QueryId(0),
            zone: Circle::new(Point::ORIGIN, 9.0),
        };
        assert_eq!(fanout.kind(), ShardMsgKind::Fanout);
        let empty = ShardMsg::PartialAnswer {
            query: QueryId(0),
            count: 0,
        };
        let five = ShardMsg::PartialAnswer {
            query: QueryId(0),
            count: 5,
        };
        // Each modeled candidate entry costs exactly PARTIAL_ENTRY_BITS.
        assert_eq!(
            five.size_bytes(),
            empty.size_bytes() + 5 * crate::wire::PARTIAL_ENTRY_BITS / 8
        );
        // A forward tunnels the original message on top of its own header.
        let inner = UplinkMsg::Leave {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
        };
        let fwd = ShardMsg::Forward {
            query: QueryId(0),
            payload_bytes: inner.size_bytes(),
        };
        assert!(fwd.size_bytes() > inner.size_bytes());
        let handoff = ShardMsg::Handoff {
            object: ObjectId(3),
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        };
        assert!(handoff.size_bytes() >= 6);
        let none = ShardMsg::Migrate {
            query: QueryId(0),
            members: 0,
        };
        let ten = ShardMsg::Migrate {
            query: QueryId(0),
            members: 10,
        };
        assert_eq!(
            ten.size_bytes(),
            none.size_bytes() + 10 * crate::wire::MEMBER_ENTRY_BITS / 8
        );
        // Recovery replay legs scale by the modeled object entry, too.
        let dry = ShardMsg::Recover { shard: 2, count: 0 };
        assert_eq!(dry.kind(), ShardMsgKind::Recover);
        let sweep = ShardMsg::Recover { shard: 2, count: 8 };
        assert_eq!(
            sweep.size_bytes(),
            dry.size_bytes() + 8 * crate::wire::RECOVER_ENTRY_BITS / 8
        );
    }

    #[test]
    fn ack_is_the_smallest_payload_bearing_downlink() {
        let ack = DownlinkMsg::Ack {
            query: QueryId(0),
            ver: 3,
            kind: MsgKind::Enter,
        };
        assert_eq!(ack.size_bytes(), 5); // 4 tag + 8 query + 8 ver + 4 kind + 16 link
        assert_eq!(ack.kind(), MsgKind::Ack);
        let band = DownlinkMsg::SetBand {
            query: QueryId(0),
            ver: 3,
            inner: 10.0,
            outer: 20.0,
        };
        assert!(ack.size_bytes() < band.size_bytes());
    }
}
