//! The wire vocabulary: every message any protocol in the workspace sends,
//! with a deterministic byte-size model.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};

/// A registered continuous moving-kNN query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Identity of the query.
    pub id: QueryId,
    /// The focal object the query travels with. The k nearest neighbors are
    /// computed around this object's current position; the focal object
    /// itself is excluded from its own answer.
    pub focal: ObjectId,
    /// Number of neighbors to maintain.
    pub k: usize,
}

/// Size, in bytes, of the fixed per-message header (ids, kind tag, tick).
const HEADER: usize = 12;
/// Size of an encoded point or vector.
const COORD: usize = 16;
/// Size of an encoded scalar.
const SCALAR: usize = 8;

/// Device → server messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UplinkMsg {
    /// Periodic full location report (the centralized baseline's firehose,
    /// also used by periodic baselines on their reporting ticks).
    Position {
        /// Current position.
        pos: Point,
        /// Current velocity.
        vel: Vector,
    },
    /// The device crossed *into* a query's monitoring region.
    Enter {
        /// Which query's region was crossed.
        query: QueryId,
        /// Install tick of the region version the device evaluated (lets
        /// the server detect events issued against stale versions).
        ver: mknn_geom::Tick,
        /// Position at the crossing tick.
        pos: Point,
        /// Velocity at the crossing tick.
        vel: Vector,
    },
    /// The device crossed *out of* a query's monitoring region.
    Leave {
        /// Which query's region was left.
        query: QueryId,
        /// Install tick of the region version the device evaluated.
        ver: mknn_geom::Tick,
        /// Position at the crossing tick (lets the server keep a fresh
        /// last-known position for re-entry estimation).
        pos: Point,
    },
    /// The device crossed a boundary of its assigned response band.
    BandCross {
        /// Which query the band belongs to.
        query: QueryId,
        /// Install tick of the region version the band was issued under.
        ver: mknn_geom::Tick,
        /// Position at the crossing tick.
        pos: Point,
        /// Velocity at the crossing tick.
        vel: Vector,
    },
    /// Reply to a server [`DownlinkMsg::Probe`].
    ProbeReply {
        /// Which query's probe is being answered.
        query: QueryId,
        /// Current position.
        pos: Point,
        /// Current velocity.
        vel: Vector,
    },
    /// The query focal object drifted beyond its reporting threshold.
    QueryMove {
        /// Which query moved.
        query: QueryId,
        /// New focal position.
        pos: Point,
        /// Focal velocity.
        vel: Vector,
    },
}

impl UplinkMsg {
    /// Encoded size under the byte model (documented in DESIGN.md §S4).
    pub fn size_bytes(&self) -> usize {
        match self {
            UplinkMsg::Position { .. } => HEADER + 2 * COORD,
            UplinkMsg::Enter { .. } => HEADER + 2 * COORD + SCALAR,
            UplinkMsg::Leave { .. } => HEADER + COORD + SCALAR,
            UplinkMsg::BandCross { .. } => HEADER + 2 * COORD + SCALAR,
            UplinkMsg::ProbeReply { .. } => HEADER + 2 * COORD,
            UplinkMsg::QueryMove { .. } => HEADER + 2 * COORD,
        }
    }

    /// Stable label for per-kind tallies.
    pub fn kind(&self) -> MsgKind {
        match self {
            UplinkMsg::Position { .. } => MsgKind::Position,
            UplinkMsg::Enter { .. } => MsgKind::Enter,
            UplinkMsg::Leave { .. } => MsgKind::Leave,
            UplinkMsg::BandCross { .. } => MsgKind::BandCross,
            UplinkMsg::ProbeReply { .. } => MsgKind::ProbeReply,
            UplinkMsg::QueryMove { .. } => MsgKind::QueryMove,
        }
    }
}

/// Server → device messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DownlinkMsg {
    /// Installs (or refreshes) a query's monitoring region on every device
    /// in the geocast zone. Devices evaluate it locally each tick.
    InstallRegion {
        /// The query being monitored.
        query: QueryId,
        /// Install tick: identifies the region *version*. A heartbeat
        /// re-sends the same version unchanged (so client-side center
        /// prediction stays bit-identical to the server's).
        ver: mknn_geom::Tick,
        /// Region center (the focal position the server last knew).
        center: Point,
        /// Focal velocity at install time; devices advance the center by it
        /// when predicting the region's current placement.
        vel: Vector,
        /// Region radius (`d_k + slack`).
        r_out: f64,
    },
    /// Uninstalls a query's region (query deregistered).
    RemoveRegion {
        /// The query to drop.
        query: QueryId,
    },
    /// One-shot probe: every device in the geocast zone must reply with a
    /// [`UplinkMsg::ProbeReply`]. Used for initial evaluation and region
    /// expansion after answer invalidation.
    Probe {
        /// The query on whose behalf the probe runs.
        query: QueryId,
        /// Probe zone.
        zone: Circle,
    },
    /// Installs a response band (annulus around the region center) on one
    /// candidate device: stay silent while inside it.
    SetBand {
        /// The query the band belongs to.
        query: QueryId,
        /// Install tick of the region version this band belongs to.
        ver: mknn_geom::Tick,
        /// Inner band radius.
        inner: f64,
        /// Outer band radius (may be `f64::INFINITY` for the outermost
        /// non-answer band).
        outer: f64,
    },
    /// Removes a previously installed band from one device.
    ClearBand {
        /// The query whose band to clear.
        query: QueryId,
    },
    /// Acknowledges a critical uplink (`Enter`/`Leave`) so the device can
    /// stop retransmitting it. Only sent in lossy mode (see
    /// [`crate::Protocol::set_lossy`]); a perfect link never carries acks.
    Ack {
        /// The query the acknowledged event belonged to.
        query: QueryId,
        /// Region version the acknowledged event was issued under (the
        /// idempotence token: device and server agree on which crossing
        /// this settles).
        ver: mknn_geom::Tick,
        /// Kind of the acknowledged uplink ([`MsgKind::Enter`] or
        /// [`MsgKind::Leave`]).
        kind: MsgKind,
    },
}

impl DownlinkMsg {
    /// Encoded size under the byte model.
    pub fn size_bytes(&self) -> usize {
        match self {
            DownlinkMsg::InstallRegion { .. } => HEADER + 2 * COORD + 2 * SCALAR,
            DownlinkMsg::RemoveRegion { .. } => HEADER,
            DownlinkMsg::Probe { .. } => HEADER + COORD + SCALAR,
            DownlinkMsg::SetBand { .. } => HEADER + 3 * SCALAR,
            DownlinkMsg::ClearBand { .. } => HEADER,
            DownlinkMsg::Ack { .. } => HEADER + SCALAR,
        }
    }

    /// Stable label for per-kind tallies.
    pub fn kind(&self) -> MsgKind {
        match self {
            DownlinkMsg::InstallRegion { .. } => MsgKind::InstallRegion,
            DownlinkMsg::RemoveRegion { .. } => MsgKind::RemoveRegion,
            DownlinkMsg::Probe { .. } => MsgKind::Probe,
            DownlinkMsg::SetBand { .. } => MsgKind::SetBand,
            DownlinkMsg::ClearBand { .. } => MsgKind::ClearBand,
            DownlinkMsg::Ack { .. } => MsgKind::Ack,
        }
    }
}

/// Who a downlink is addressed to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recipient {
    /// One device.
    One(ObjectId),
    /// Every device currently inside the zone. Charged per overlapped grid
    /// cell by the harness (the infrastructure pages each cell once).
    Geocast(Circle),
    /// Every device in the system (charged as one system-wide broadcast per
    /// the byte model; used only by the naive baseline).
    Broadcast,
}

/// Message kind labels for per-kind tallies (Experiment E10's breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum MsgKind {
    Position,
    Enter,
    Leave,
    BandCross,
    ProbeReply,
    QueryMove,
    InstallRegion,
    RemoveRegion,
    Probe,
    SetBand,
    ClearBand,
    Ack,
}

impl MsgKind {
    /// All kinds, uplinks first (for stable table layouts).
    pub const ALL: [MsgKind; 12] = [
        MsgKind::Position,
        MsgKind::Enter,
        MsgKind::Leave,
        MsgKind::BandCross,
        MsgKind::ProbeReply,
        MsgKind::QueryMove,
        MsgKind::InstallRegion,
        MsgKind::RemoveRegion,
        MsgKind::Probe,
        MsgKind::SetBand,
        MsgKind::ClearBand,
        MsgKind::Ack,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            MsgKind::Position => "pos",
            MsgKind::Enter => "enter",
            MsgKind::Leave => "leave",
            MsgKind::BandCross => "band",
            MsgKind::ProbeReply => "probe-re",
            MsgKind::QueryMove => "q-move",
            MsgKind::InstallRegion => "install",
            MsgKind::RemoveRegion => "remove",
            MsgKind::Probe => "probe",
            MsgKind::SetBand => "set-band",
            MsgKind::ClearBand => "clr-band",
            MsgKind::Ack => "ack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::Point;

    #[test]
    fn sizes_are_positive_and_header_dominated() {
        let up = UplinkMsg::Leave {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
        };
        assert_eq!(up.size_bytes(), 36);
        let down = DownlinkMsg::RemoveRegion { query: QueryId(0) };
        assert_eq!(down.size_bytes(), 12);
        let install = DownlinkMsg::InstallRegion {
            query: QueryId(0),
            ver: 0,
            center: Point::ORIGIN,
            vel: Vector::ZERO,
            r_out: 1.0,
        };
        assert!(install.size_bytes() > down.size_bytes());
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        let a = UplinkMsg::Position {
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        }
        .kind();
        let b = UplinkMsg::Enter {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        }
        .kind();
        assert_ne!(a, b);
        assert_eq!(MsgKind::ALL.len(), 12);
        // Labels are unique.
        let mut labels: Vec<_> = MsgKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn ack_is_the_smallest_payload_bearing_downlink() {
        let ack = DownlinkMsg::Ack {
            query: QueryId(0),
            ver: 3,
            kind: MsgKind::Enter,
        };
        assert_eq!(ack.size_bytes(), 20);
        assert_eq!(ack.kind(), MsgKind::Ack);
    }
}
