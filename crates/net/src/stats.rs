//! Metric counters: the quantities every experiment reports.

use crate::{MsgKind, ShardMsg, ShardMsgKind};
use std::collections::BTreeMap;
use std::ops::AddAssign;

/// Inter-shard coordination counters: the backbone legs a grid-partitioned
/// server tier spends on fan-out, partial-answer merges, object handoffs,
/// uplink forwarding and query migration. Kept apart from the device-facing
/// [`NetStats`] counters so shard-coordination overhead is a separately
/// measured curve — a G-shard run reports exactly the same protocol traffic
/// as the single server plus this overlay, and a single-shard run leaves
/// every field zero (the struct then disappears from the JSON encoding).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Zone-task fan-out legs (home shard → covering shard).
    pub fanout_msgs: u64,
    /// Bytes across all fan-out legs.
    pub fanout_bytes: u64,
    /// Partial-answer merge legs (covering shard → home shard).
    pub merge_msgs: u64,
    /// Bytes across all merge legs.
    pub merge_bytes: u64,
    /// Object ownership handoffs across a shard boundary.
    pub handoff_msgs: u64,
    /// Bytes across all handoffs.
    pub handoff_bytes: u64,
    /// Tunneled messages (mis-homed uplinks, foreign-cell unicasts).
    pub forward_msgs: u64,
    /// Bytes across all forwards.
    pub forward_bytes: u64,
    /// Query-state migrations to a new home shard.
    pub migrate_msgs: u64,
    /// Bytes across all migrations.
    pub migrate_bytes: u64,
    /// Inter-shard legs re-sent because the backbone lost the first copy
    /// (the shard tier retransmits until delivery, so faults cost traffic
    /// but never diverge the shards' shared state). Zero on a perfect link.
    pub retransmits: u64,
    /// Bytes spent on those retransmissions.
    pub retransmit_bytes: u64,
    /// Post-crash state-reconstruction sweeps: boundary-object replay legs
    /// from surviving shards to a reborn one. Zero unless a crash was
    /// planned (and absent from the JSON encoding when zero).
    pub recover_msgs: u64,
    /// Bytes across all recovery replay legs.
    pub recover_bytes: u64,
}

impl ShardStats {
    /// `true` when no inter-shard leg was ever charged — a single-shard run
    /// or an episode whose queries never spanned a boundary.
    pub fn is_empty(&self) -> bool {
        *self == ShardStats::default()
    }

    /// Total inter-shard messages (retransmissions included: the backbone
    /// carried them).
    pub fn total_msgs(&self) -> u64 {
        self.fanout_msgs
            + self.merge_msgs
            + self.handoff_msgs
            + self.forward_msgs
            + self.migrate_msgs
            + self.recover_msgs
            + self.retransmits
    }

    /// Total inter-shard bytes.
    pub fn total_bytes(&self) -> u64 {
        self.fanout_bytes
            + self.merge_bytes
            + self.handoff_bytes
            + self.forward_bytes
            + self.migrate_bytes
            + self.recover_bytes
            + self.retransmit_bytes
    }

    /// Records one inter-shard leg under its category.
    pub fn count(&mut self, msg: &ShardMsg) {
        let bytes = msg.size_bytes() as u64;
        match msg.kind() {
            ShardMsgKind::Fanout => {
                self.fanout_msgs += 1;
                self.fanout_bytes += bytes;
            }
            ShardMsgKind::PartialAnswer => {
                self.merge_msgs += 1;
                self.merge_bytes += bytes;
            }
            ShardMsgKind::Handoff => {
                self.handoff_msgs += 1;
                self.handoff_bytes += bytes;
            }
            ShardMsgKind::Forward => {
                self.forward_msgs += 1;
                self.forward_bytes += bytes;
            }
            ShardMsgKind::Migrate => {
                self.migrate_msgs += 1;
                self.migrate_bytes += bytes;
            }
            ShardMsgKind::Recover => {
                self.recover_msgs += 1;
                self.recover_bytes += bytes;
            }
        }
    }

    /// Records `n` retransmissions of a leg of `bytes` each.
    pub fn count_retransmits(&mut self, n: u64, bytes: u64) {
        self.retransmits += n;
        self.retransmit_bytes += n * bytes;
    }
}

impl AddAssign<&ShardStats> for ShardStats {
    fn add_assign(&mut self, rhs: &ShardStats) {
        self.fanout_msgs += rhs.fanout_msgs;
        self.fanout_bytes += rhs.fanout_bytes;
        self.merge_msgs += rhs.merge_msgs;
        self.merge_bytes += rhs.merge_bytes;
        self.handoff_msgs += rhs.handoff_msgs;
        self.handoff_bytes += rhs.handoff_bytes;
        self.forward_msgs += rhs.forward_msgs;
        self.forward_bytes += rhs.forward_bytes;
        self.migrate_msgs += rhs.migrate_msgs;
        self.migrate_bytes += rhs.migrate_bytes;
        self.retransmits += rhs.retransmits;
        self.retransmit_bytes += rhs.retransmit_bytes;
        self.recover_msgs += rhs.recover_msgs;
        self.recover_bytes += rhs.recover_bytes;
    }
}

/// Communication counters, maintained by the simulation harness as it routes
/// messages (protocols cannot under-report their own traffic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Device → server messages.
    pub uplink_msgs: u64,
    /// Device → server bytes.
    pub uplink_bytes: u64,
    /// Server → device unicast messages.
    pub downlink_unicast_msgs: u64,
    /// Geocast *transmissions*: one per grid cell the geocast zone overlaps
    /// (the infrastructure pages each cell once, regardless of how many
    /// devices listen).
    pub downlink_geocast_msgs: u64,
    /// System-wide broadcasts.
    pub downlink_broadcast_msgs: u64,
    /// Server → device bytes across unicast, geocast and broadcast
    /// transmissions.
    pub downlink_bytes: u64,
    /// Per message-kind tallies (logical messages, not transmissions).
    pub by_kind: BTreeMap<MsgKind, u64>,
    /// Deliveries lost by the fault layer (loss draws plus deliveries to
    /// offline devices). The transmission stays charged above — the sender
    /// spent the radio energy; the network just failed to deliver.
    pub dropped_msgs: u64,
    /// Extra copies delivered by the fault layer's duplication. Only this
    /// counter grows: duplicates are accidents of the link, not traffic the
    /// protocol pays for.
    pub dup_msgs: u64,
    /// Deliveries the fault layer held back for one or more ticks.
    pub delayed_msgs: u64,
    /// Inter-shard coordination legs of the sharded server tier. All-zero
    /// (and absent from the JSON encoding) for a single-shard server.
    pub shard: ShardStats,
    /// Per-device downlink frames sent by the interest-scoped replication
    /// layer: all messages to one device in one tick coalesce into one
    /// framed packet. Zero in legacy (unframed) mode.
    pub frames: u64,
    /// The share of `downlink_bytes` spent on frame headers (link-layer
    /// overhead plus tick/count bookkeeping) rather than item payloads:
    /// `downlink_bytes` contributed by frames equals payload bytes plus
    /// this. Zero in legacy mode.
    pub frame_header_bytes: u64,
    /// Full-state re-sends forced by a replication gap: a frame the fault
    /// layer failed to deliver in full voids the device's acked state, and
    /// every subsequent region/band/answer that had to go out whole instead
    /// of as a delta counts here. Zero in legacy mode and on perfect links.
    pub delta_full_fallbacks: u64,
    /// The share of `downlink_bytes` spent on the ack channel
    /// ([`crate::DownlinkMsg::Ack`] transmissions): an informational split,
    /// like `frame_header_bytes`, not an addition to the total. Acks flow
    /// only in lossy mode, so this is zero (and absent from the JSON
    /// encoding) on a perfect link.
    pub ack_bytes: u64,
}

impl NetStats {
    /// Total logical + transmission message count, the paper family's
    /// headline "communication cost" metric.
    pub fn total_msgs(&self) -> u64 {
        self.uplink_msgs
            + self.downlink_unicast_msgs
            + self.downlink_geocast_msgs
            + self.downlink_broadcast_msgs
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }

    /// Records one uplink message.
    pub fn count_uplink(&mut self, kind: MsgKind, bytes: usize) {
        self.uplink_msgs += 1;
        self.uplink_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one unicast downlink.
    pub fn count_unicast(&mut self, kind: MsgKind, bytes: usize) {
        self.downlink_unicast_msgs += 1;
        self.downlink_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one geocast of `cells` cell-transmissions.
    pub fn count_geocast(&mut self, kind: MsgKind, bytes: usize, cells: usize) {
        self.downlink_geocast_msgs += cells as u64;
        self.downlink_bytes += (bytes * cells) as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one system-wide broadcast.
    pub fn count_broadcast(&mut self, kind: MsgKind, bytes: usize) {
        self.downlink_broadcast_msgs += 1;
        self.downlink_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one delivery lost by the fault layer.
    pub fn count_dropped(&mut self) {
        self.dropped_msgs += 1;
    }

    /// Records one extra copy produced by the fault layer.
    pub fn count_duplicated(&mut self) {
        self.dup_msgs += 1;
    }

    /// Records one delivery the fault layer delayed.
    pub fn count_delayed(&mut self) {
        self.delayed_msgs += 1;
    }

    /// Records one per-device downlink frame of `frame_bytes` total, of
    /// which `header_bytes` is framing overhead (the rest is item payload).
    /// Frames feed `downlink_bytes` — they *are* the scoped mode's downlink
    /// transmissions — but not the logical per-kind tallies, which the
    /// harness keeps charging per staged message so both modes report
    /// identical message counts.
    pub fn count_frame(&mut self, frame_bytes: u64, header_bytes: u64) {
        debug_assert!(header_bytes <= frame_bytes);
        self.frames += 1;
        self.downlink_bytes += frame_bytes;
        self.frame_header_bytes += header_bytes;
    }
}

impl AddAssign<&NetStats> for NetStats {
    fn add_assign(&mut self, rhs: &NetStats) {
        self.uplink_msgs += rhs.uplink_msgs;
        self.uplink_bytes += rhs.uplink_bytes;
        self.downlink_unicast_msgs += rhs.downlink_unicast_msgs;
        self.downlink_geocast_msgs += rhs.downlink_geocast_msgs;
        self.downlink_broadcast_msgs += rhs.downlink_broadcast_msgs;
        self.downlink_bytes += rhs.downlink_bytes;
        for (k, v) in &rhs.by_kind {
            *self.by_kind.entry(*k).or_insert(0) += v;
        }
        self.dropped_msgs += rhs.dropped_msgs;
        self.dup_msgs += rhs.dup_msgs;
        self.delayed_msgs += rhs.delayed_msgs;
        self.shard += &rhs.shard;
        self.frames += rhs.frames;
        self.frame_header_bytes += rhs.frame_header_bytes;
        self.delta_full_fallbacks += rhs.delta_full_fallbacks;
        self.ack_bytes += rhs.ack_bytes;
    }
}

/// Computation counters: a hardware-independent proxy for server and client
/// load (distance computations, heap and index operations). Incremented by
/// protocol code; wall-clock equivalents are measured by the
/// micro-benches in `crates/bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Operations performed by server-side logic.
    pub server_ops: u64,
    /// Operations performed across all device-side logic.
    pub client_ops: u64,
    /// Critical uplinks (`Enter`/`Leave`) re-sent by device-side
    /// retransmission after an ack timed out. Zero on a perfect link.
    pub retransmits: u64,
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.server_ops += rhs.server_ops;
        self.client_ops += rhs.client_ops;
        self.retransmits += rhs.retransmits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates() {
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        s.count_uplink(MsgKind::Enter, 44);
        s.count_unicast(MsgKind::SetBand, 28);
        s.count_geocast(MsgKind::InstallRegion, 52, 9);
        s.count_broadcast(MsgKind::Probe, 36);
        assert_eq!(s.uplink_msgs, 2);
        assert_eq!(s.uplink_bytes, 88);
        assert_eq!(s.downlink_unicast_msgs, 1);
        assert_eq!(s.downlink_geocast_msgs, 9);
        assert_eq!(s.downlink_broadcast_msgs, 1);
        assert_eq!(s.downlink_bytes, 28 + 52 * 9 + 36);
        assert_eq!(s.total_msgs(), 2 + 1 + 9 + 1);
        assert_eq!(s.by_kind[&MsgKind::Enter], 2);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = NetStats::default();
        a.count_uplink(MsgKind::Leave, 28);
        let mut b = NetStats::default();
        b.count_uplink(MsgKind::Leave, 28);
        b.count_unicast(MsgKind::ClearBand, 12);
        a += &b;
        assert_eq!(a.uplink_msgs, 2);
        assert_eq!(a.by_kind[&MsgKind::Leave], 2);
        assert_eq!(a.downlink_unicast_msgs, 1);
    }

    #[test]
    fn op_counters_add() {
        let mut a = OpCounters {
            server_ops: 1,
            client_ops: 2,
            retransmits: 3,
        };
        a += OpCounters {
            server_ops: 10,
            client_ops: 20,
            retransmits: 30,
        };
        assert_eq!(
            a,
            OpCounters {
                server_ops: 11,
                client_ops: 22,
                retransmits: 33,
            }
        );
    }

    #[test]
    fn shard_counters_accumulate_by_category_and_merge() {
        use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};
        let mut s = ShardStats::default();
        assert!(s.is_empty());
        s.count(&ShardMsg::Fanout {
            query: QueryId(0),
            zone: Circle::new(Point::ORIGIN, 4.0),
        });
        s.count(&ShardMsg::PartialAnswer {
            query: QueryId(0),
            count: 3,
        });
        s.count(&ShardMsg::Handoff {
            object: ObjectId(1),
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        });
        s.count(&ShardMsg::Forward {
            query: QueryId(0),
            payload_bytes: 36,
        });
        s.count(&ShardMsg::Migrate {
            query: QueryId(0),
            members: 2,
        });
        s.count(&ShardMsg::Recover { shard: 1, count: 4 });
        s.count_retransmits(2, 36);
        assert!(!s.is_empty());
        assert_eq!(s.fanout_msgs, 1);
        assert_eq!(s.merge_msgs, 1);
        assert_eq!(s.handoff_msgs, 1);
        assert_eq!(s.forward_msgs, 1);
        assert_eq!(s.migrate_msgs, 1);
        assert_eq!(s.recover_msgs, 1);
        assert!(s.recover_bytes > 0);
        assert_eq!(s.retransmits, 2);
        assert_eq!(s.retransmit_bytes, 72);
        assert_eq!(s.total_msgs(), 8);
        assert!(s.total_bytes() > 0);
        // Shard legs never feed the device-facing headline counters.
        let mut net = NetStats::default();
        net.shard = s.clone();
        assert_eq!(net.total_msgs(), 0);
        assert_eq!(net.total_bytes(), 0);
        let mut merged = ShardStats::default();
        merged += &s;
        merged += &s;
        assert_eq!(merged.total_msgs(), 2 * s.total_msgs());
        assert_eq!(merged.total_bytes(), 2 * s.total_bytes());
    }

    #[test]
    fn frame_counters_conserve_bytes_and_merge() {
        let mut s = NetStats::default();
        // Two frames: total bytes split into payload and header shares.
        s.count_frame(40, 3);
        s.count_frame(9, 3);
        s.delta_full_fallbacks += 1;
        assert_eq!(s.frames, 2);
        assert_eq!(s.downlink_bytes, 49);
        assert_eq!(s.frame_header_bytes, 6);
        // Conservation: frame bytes = payload bytes + header bytes.
        let payload = s.downlink_bytes - s.frame_header_bytes;
        assert_eq!(payload, 43);
        // Frames are transmissions (bytes), not logical messages.
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.total_bytes(), 49);
        let mut merged = NetStats::default();
        merged += &s;
        merged += &s;
        assert_eq!(merged.frames, 4);
        assert_eq!(merged.frame_header_bytes, 12);
        assert_eq!(merged.delta_full_fallbacks, 2);
    }

    #[test]
    fn fault_counters_accumulate_and_merge() {
        let mut a = NetStats::default();
        a.count_dropped();
        a.count_dropped();
        a.count_duplicated();
        a.count_delayed();
        assert_eq!((a.dropped_msgs, a.dup_msgs, a.delayed_msgs), (2, 1, 1));
        // Fault counters never feed the headline communication-cost metric.
        assert_eq!(a.total_msgs(), 0);
        assert_eq!(a.total_bytes(), 0);
        let mut b = NetStats::default();
        b.count_delayed();
        a += &b;
        assert_eq!(a.delayed_msgs, 2);
    }
}
