//! Metric counters: the quantities every experiment reports.

use crate::MsgKind;
use std::collections::BTreeMap;
use std::ops::AddAssign;

/// Communication counters, maintained by the simulation harness as it routes
/// messages (protocols cannot under-report their own traffic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Device → server messages.
    pub uplink_msgs: u64,
    /// Device → server bytes.
    pub uplink_bytes: u64,
    /// Server → device unicast messages.
    pub downlink_unicast_msgs: u64,
    /// Geocast *transmissions*: one per grid cell the geocast zone overlaps
    /// (the infrastructure pages each cell once, regardless of how many
    /// devices listen).
    pub downlink_geocast_msgs: u64,
    /// System-wide broadcasts.
    pub downlink_broadcast_msgs: u64,
    /// Server → device bytes across unicast, geocast and broadcast
    /// transmissions.
    pub downlink_bytes: u64,
    /// Per message-kind tallies (logical messages, not transmissions).
    pub by_kind: BTreeMap<MsgKind, u64>,
    /// Deliveries lost by the fault layer (loss draws plus deliveries to
    /// offline devices). The transmission stays charged above — the sender
    /// spent the radio energy; the network just failed to deliver.
    pub dropped_msgs: u64,
    /// Extra copies delivered by the fault layer's duplication. Only this
    /// counter grows: duplicates are accidents of the link, not traffic the
    /// protocol pays for.
    pub dup_msgs: u64,
    /// Deliveries the fault layer held back for one or more ticks.
    pub delayed_msgs: u64,
}

impl NetStats {
    /// Total logical + transmission message count, the paper family's
    /// headline "communication cost" metric.
    pub fn total_msgs(&self) -> u64 {
        self.uplink_msgs
            + self.downlink_unicast_msgs
            + self.downlink_geocast_msgs
            + self.downlink_broadcast_msgs
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }

    /// Records one uplink message.
    pub fn count_uplink(&mut self, kind: MsgKind, bytes: usize) {
        self.uplink_msgs += 1;
        self.uplink_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one unicast downlink.
    pub fn count_unicast(&mut self, kind: MsgKind, bytes: usize) {
        self.downlink_unicast_msgs += 1;
        self.downlink_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one geocast of `cells` cell-transmissions.
    pub fn count_geocast(&mut self, kind: MsgKind, bytes: usize, cells: usize) {
        self.downlink_geocast_msgs += cells as u64;
        self.downlink_bytes += (bytes * cells) as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one system-wide broadcast.
    pub fn count_broadcast(&mut self, kind: MsgKind, bytes: usize) {
        self.downlink_broadcast_msgs += 1;
        self.downlink_bytes += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records one delivery lost by the fault layer.
    pub fn count_dropped(&mut self) {
        self.dropped_msgs += 1;
    }

    /// Records one extra copy produced by the fault layer.
    pub fn count_duplicated(&mut self) {
        self.dup_msgs += 1;
    }

    /// Records one delivery the fault layer delayed.
    pub fn count_delayed(&mut self) {
        self.delayed_msgs += 1;
    }
}

impl AddAssign<&NetStats> for NetStats {
    fn add_assign(&mut self, rhs: &NetStats) {
        self.uplink_msgs += rhs.uplink_msgs;
        self.uplink_bytes += rhs.uplink_bytes;
        self.downlink_unicast_msgs += rhs.downlink_unicast_msgs;
        self.downlink_geocast_msgs += rhs.downlink_geocast_msgs;
        self.downlink_broadcast_msgs += rhs.downlink_broadcast_msgs;
        self.downlink_bytes += rhs.downlink_bytes;
        for (k, v) in &rhs.by_kind {
            *self.by_kind.entry(*k).or_insert(0) += v;
        }
        self.dropped_msgs += rhs.dropped_msgs;
        self.dup_msgs += rhs.dup_msgs;
        self.delayed_msgs += rhs.delayed_msgs;
    }
}

/// Computation counters: a hardware-independent proxy for server and client
/// load (distance computations, heap and index operations). Incremented by
/// protocol code; wall-clock equivalents are measured by the
/// micro-benches in `crates/bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Operations performed by server-side logic.
    pub server_ops: u64,
    /// Operations performed across all device-side logic.
    pub client_ops: u64,
    /// Critical uplinks (`Enter`/`Leave`) re-sent by device-side
    /// retransmission after an ack timed out. Zero on a perfect link.
    pub retransmits: u64,
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.server_ops += rhs.server_ops;
        self.client_ops += rhs.client_ops;
        self.retransmits += rhs.retransmits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates() {
        let mut s = NetStats::default();
        s.count_uplink(MsgKind::Enter, 44);
        s.count_uplink(MsgKind::Enter, 44);
        s.count_unicast(MsgKind::SetBand, 28);
        s.count_geocast(MsgKind::InstallRegion, 52, 9);
        s.count_broadcast(MsgKind::Probe, 36);
        assert_eq!(s.uplink_msgs, 2);
        assert_eq!(s.uplink_bytes, 88);
        assert_eq!(s.downlink_unicast_msgs, 1);
        assert_eq!(s.downlink_geocast_msgs, 9);
        assert_eq!(s.downlink_broadcast_msgs, 1);
        assert_eq!(s.downlink_bytes, 28 + 52 * 9 + 36);
        assert_eq!(s.total_msgs(), 2 + 1 + 9 + 1);
        assert_eq!(s.by_kind[&MsgKind::Enter], 2);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = NetStats::default();
        a.count_uplink(MsgKind::Leave, 28);
        let mut b = NetStats::default();
        b.count_uplink(MsgKind::Leave, 28);
        b.count_unicast(MsgKind::ClearBand, 12);
        a += &b;
        assert_eq!(a.uplink_msgs, 2);
        assert_eq!(a.by_kind[&MsgKind::Leave], 2);
        assert_eq!(a.downlink_unicast_msgs, 1);
    }

    #[test]
    fn op_counters_add() {
        let mut a = OpCounters {
            server_ops: 1,
            client_ops: 2,
            retransmits: 3,
        };
        a += OpCounters {
            server_ops: 10,
            client_ops: 20,
            retransmits: 30,
        };
        assert_eq!(
            a,
            OpCounters {
                server_ops: 11,
                client_ops: 22,
                retransmits: 33,
            }
        );
    }

    #[test]
    fn fault_counters_accumulate_and_merge() {
        let mut a = NetStats::default();
        a.count_dropped();
        a.count_dropped();
        a.count_duplicated();
        a.count_delayed();
        assert_eq!((a.dropped_msgs, a.dup_msgs, a.delayed_msgs), (2, 1, 1));
        // Fault counters never feed the headline communication-cost metric.
        assert_eq!(a.total_msgs(), 0);
        assert_eq!(a.total_bytes(), 0);
        let mut b = NetStats::default();
        b.count_delayed();
        a += &b;
        assert_eq!(a.delayed_msgs, 2);
    }
}
