//! Property tests for the bit-packed wire format: every message variant
//! round-trips through encode/decode, and the analytical `wire_bits` model
//! matches the measured encoded length bit for bit.
//!
//! Coordinates are generated on the quantization lattice (multiples of
//! `1/QUANT_SCALE`, exactly representable in an f64), so decoded geometry is
//! *equal* to what was encoded, not merely close; the quantization error
//! bound for off-lattice values is covered by the unit tests in
//! `mknn_net::wire`.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};
use mknn_net::{DownlinkMsg, MsgKind, ShardMsg, UplinkMsg, Wire, QUANT_SCALE};
use mknn_util::bits::{BitReader, BitWriter};
use mknn_util::check::forall;
use mknn_util::Rng;

const CASES: u64 = 256;

/// A coordinate on the quantization lattice, spanning negative values and
/// magnitudes far beyond the simulation arena.
fn lattice(rng: &mut Rng) -> f64 {
    rng.gen_range(-2_560_000i64..2_560_000) as f64 / QUANT_SCALE
}

fn lattice_pt(rng: &mut Rng) -> Point {
    Point::new(lattice(rng), lattice(rng))
}

fn lattice_vec(rng: &mut Rng) -> Vector {
    Vector::new(lattice(rng), lattice(rng))
}

/// Ids spanning the full u32 range (not just small simulation ids), so the
/// varint length ladder is exercised end to end.
fn any_id(rng: &mut Rng) -> u32 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0u32..16),
        1 => rng.gen_range(0u32..100_000),
        2 => u32::MAX - rng.gen_range(0u32..16),
        _ => rng.next_u64() as u32,
    }
}

fn any_ver(rng: &mut Rng) -> u64 {
    match rng.gen_range(0u32..3) {
        0 => rng.gen_range(0u64..100),
        1 => rng.next_u64() >> rng.gen_range(0u32..60),
        _ => u64::MAX - rng.gen_range(0u64..4),
    }
}

fn any_radius(rng: &mut Rng) -> f64 {
    rng.gen_range(0i64..2_560_000) as f64 / QUANT_SCALE
}

fn any_uplink(rng: &mut Rng) -> UplinkMsg {
    let query = QueryId(any_id(rng));
    match rng.gen_range(0u32..6) {
        0 => UplinkMsg::Position {
            pos: lattice_pt(rng),
            vel: lattice_vec(rng),
        },
        1 => UplinkMsg::Enter {
            query,
            ver: any_ver(rng),
            pos: lattice_pt(rng),
            vel: lattice_vec(rng),
        },
        2 => UplinkMsg::Leave {
            query,
            ver: any_ver(rng),
            pos: lattice_pt(rng),
        },
        3 => UplinkMsg::BandCross {
            query,
            ver: any_ver(rng),
            pos: lattice_pt(rng),
            vel: lattice_vec(rng),
        },
        4 => UplinkMsg::ProbeReply {
            query,
            pos: lattice_pt(rng),
            vel: lattice_vec(rng),
        },
        _ => UplinkMsg::QueryMove {
            query,
            pos: lattice_pt(rng),
            vel: lattice_vec(rng),
        },
    }
}

fn any_downlink(rng: &mut Rng) -> DownlinkMsg {
    let query = QueryId(any_id(rng));
    match rng.gen_range(0u32..6) {
        0 => DownlinkMsg::InstallRegion {
            query,
            ver: any_ver(rng),
            center: lattice_pt(rng),
            vel: lattice_vec(rng),
            r_out: any_radius(rng),
        },
        1 => DownlinkMsg::RemoveRegion { query },
        2 => DownlinkMsg::Probe {
            query,
            zone: Circle::new(lattice_pt(rng), any_radius(rng)),
        },
        3 => {
            let inner = any_radius(rng);
            // The outer radius exercises the infinity flag bit.
            let outer = if rng.gen_bool(0.25) {
                f64::INFINITY
            } else {
                inner + any_radius(rng)
            };
            DownlinkMsg::SetBand {
                query,
                ver: any_ver(rng),
                inner,
                outer,
            }
        }
        4 => DownlinkMsg::ClearBand { query },
        _ => DownlinkMsg::Ack {
            query,
            ver: any_ver(rng),
            kind: MsgKind::ALL[rng.gen_range(0usize..MsgKind::ALL.len())],
        },
    }
}

fn any_shard(rng: &mut Rng) -> ShardMsg {
    let query = QueryId(any_id(rng));
    match rng.gen_range(0u32..6) {
        0 => ShardMsg::Fanout {
            query,
            zone: Circle::new(lattice_pt(rng), any_radius(rng)),
        },
        1 => ShardMsg::PartialAnswer {
            query,
            count: rng.gen_range(0usize..500),
        },
        2 => ShardMsg::Handoff {
            object: ObjectId(any_id(rng)),
            pos: lattice_pt(rng),
            vel: lattice_vec(rng),
        },
        3 => ShardMsg::Forward {
            query,
            payload_bytes: rng.gen_range(0usize..200),
        },
        4 => ShardMsg::Migrate {
            query,
            members: rng.gen_range(0usize..100),
        },
        _ => ShardMsg::Recover {
            shard: rng.gen_range(0u64..64) as u32,
            count: rng.gen_range(0usize..500),
        },
    }
}

/// Encodes, checks the analytical bit count against the measured length,
/// decodes, and checks both equality and that the reader consumed exactly
/// the message's bits (so messages can be concatenated in frames).
fn round_trip<M: Wire + PartialEq + std::fmt::Debug>(m: &M) {
    let mut w = BitWriter::new();
    m.encode(&mut w);
    assert_eq!(
        w.bit_len(),
        m.wire_bits(),
        "wire_bits must equal the measured encoding: {m:?}"
    );
    let (bytes, bits) = w.finish();
    assert_eq!(bytes.len(), bits.div_ceil(8));
    let mut r = BitReader::new(&bytes);
    let back = M::decode(&mut r).unwrap_or_else(|| panic!("decode failed: {m:?}"));
    assert_eq!(&back, m);
    assert_eq!(r.bits_read(), m.wire_bits(), "exact consumption: {m:?}");
}

#[test]
fn uplink_messages_round_trip_exactly() {
    forall(CASES, |rng| round_trip(&any_uplink(rng)));
}

#[test]
fn downlink_messages_round_trip_exactly() {
    forall(CASES, |rng| round_trip(&any_downlink(rng)));
}

#[test]
fn shard_messages_round_trip_exactly() {
    forall(CASES, |rng| round_trip(&any_shard(rng)));
}

#[test]
fn concatenated_messages_decode_in_sequence() {
    // Frames carry many messages back to back with no padding between
    // them; decoding must resynchronize on exact bit boundaries.
    forall(CASES, |rng| {
        let msgs: Vec<DownlinkMsg> = (0..rng.gen_range(1usize..10))
            .map(|_| any_downlink(rng))
            .collect();
        let mut w = BitWriter::new();
        for m in &msgs {
            m.encode(&mut w);
        }
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        for m in &msgs {
            assert_eq!(DownlinkMsg::decode(&mut r).as_ref(), Some(m));
        }
    });
}

#[test]
fn boundary_values_round_trip() {
    let cases: Vec<DownlinkMsg> = vec![
        DownlinkMsg::InstallRegion {
            query: QueryId(u32::MAX),
            ver: u64::MAX,
            center: Point::new(-2_560_000.0 / QUANT_SCALE, 2_560_000.0 / QUANT_SCALE),
            vel: Vector::ZERO,
            r_out: 0.0,
        },
        DownlinkMsg::SetBand {
            query: QueryId(0),
            ver: 0,
            inner: 0.0,
            outer: f64::INFINITY,
        },
        DownlinkMsg::RemoveRegion {
            query: QueryId(u32::MAX),
        },
        DownlinkMsg::Ack {
            query: QueryId(0),
            ver: u64::MAX,
            kind: MsgKind::AnswerPush,
        },
    ];
    for m in &cases {
        round_trip(m);
    }
    let ups = vec![
        UplinkMsg::Position {
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        },
        UplinkMsg::Enter {
            query: QueryId(u32::MAX),
            ver: u64::MAX,
            pos: Point::new(-1.0 / QUANT_SCALE, 1.0 / QUANT_SCALE),
            vel: Vector::new(-0.00390625, 0.00390625),
        },
    ];
    for m in &ups {
        round_trip(m);
    }
    let shards = vec![
        ShardMsg::PartialAnswer {
            query: QueryId(0),
            count: 0,
        },
        ShardMsg::Migrate {
            query: QueryId(u32::MAX),
            members: 0,
        },
        ShardMsg::Forward {
            query: QueryId(7),
            payload_bytes: 0,
        },
        ShardMsg::Recover {
            shard: u32::MAX,
            count: 0,
        },
    ];
    for m in &shards {
        round_trip(m);
    }
}

#[test]
fn size_bytes_is_the_wire_model_plus_link_header() {
    // Satellite check: the Wire trait is the single sizing authority —
    // `size_bytes` is a thin wrapper over measured bits, never separate
    // field arithmetic.
    forall(CASES, |rng| {
        let m = any_downlink(rng);
        let mut w = BitWriter::new();
        m.encode(&mut w);
        assert_eq!(
            m.size_bytes(),
            (mknn_net::LINK_HEADER_BITS + w.bit_len()).div_ceil(8)
        );
        let u = any_uplink(rng);
        let mut w = BitWriter::new();
        u.encode(&mut w);
        assert_eq!(
            u.size_bytes(),
            (mknn_net::LINK_HEADER_BITS + w.bit_len()).div_ceil(8)
        );
        let s = any_shard(rng);
        let mut w = BitWriter::new();
        s.encode(&mut w);
        assert_eq!(
            s.size_bytes(),
            (mknn_net::LINK_HEADER_BITS + w.bit_len()).div_ceil(8)
        );
    });
}
