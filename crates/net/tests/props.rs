//! Property tests for the network substrate: counter conservation and the
//! byte model.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};
use mknn_net::{DownlinkMsg, MsgKind, NetStats, UplinkMsg};
use proptest::prelude::*;

fn uplink() -> impl Strategy<Value = UplinkMsg> {
    let pt = (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y));
    let q = (0u32..8).prop_map(QueryId);
    (q, pt, 0u64..100).prop_flat_map(|(q, p, ver)| {
        prop_oneof![
            Just(UplinkMsg::Position { pos: p, vel: Vector::ZERO }),
            Just(UplinkMsg::Enter { query: q, ver, pos: p, vel: Vector::ZERO }),
            Just(UplinkMsg::Leave { query: q, ver, pos: p }),
            Just(UplinkMsg::BandCross { query: q, ver, pos: p, vel: Vector::ZERO }),
            Just(UplinkMsg::ProbeReply { query: q, pos: p, vel: Vector::ZERO }),
            Just(UplinkMsg::QueryMove { query: q, pos: p, vel: Vector::ZERO }),
        ]
    })
}

fn downlink() -> impl Strategy<Value = DownlinkMsg> {
    let pt = (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y));
    let q = (0u32..8).prop_map(QueryId);
    (q, pt, 0u64..100, 0.0..50.0f64).prop_flat_map(|(q, p, ver, r)| {
        prop_oneof![
            Just(DownlinkMsg::InstallRegion { query: q, ver, center: p, vel: Vector::ZERO, r_out: r }),
            Just(DownlinkMsg::RemoveRegion { query: q }),
            Just(DownlinkMsg::Probe { query: q, zone: Circle::new(p, r) }),
            Just(DownlinkMsg::SetBand { query: q, ver, inner: r, outer: r + 1.0 }),
            Just(DownlinkMsg::ClearBand { query: q }),
        ]
    })
}

proptest! {
    #[test]
    fn uplink_byte_model_is_positive_and_bounded(m in uplink()) {
        let s = m.size_bytes();
        prop_assert!(s >= 12, "at least a header");
        prop_assert!(s <= 64, "no uplink should exceed 64 bytes");
    }

    #[test]
    fn downlink_byte_model_is_positive_and_bounded(m in downlink()) {
        let s = m.size_bytes();
        prop_assert!((12..=72).contains(&s));
    }

    #[test]
    fn stats_totals_equal_sum_of_parts(ups in prop::collection::vec(uplink(), 0..50),
                                       downs in prop::collection::vec(downlink(), 0..50),
                                       cells in 1usize..20) {
        let mut s = NetStats::default();
        let mut expect_msgs = 0u64;
        let mut expect_bytes = 0u64;
        for m in &ups {
            s.count_uplink(m.kind(), m.size_bytes());
            expect_msgs += 1;
            expect_bytes += m.size_bytes() as u64;
        }
        for (i, m) in downs.iter().enumerate() {
            match i % 3 {
                0 => {
                    s.count_unicast(m.kind(), m.size_bytes());
                    expect_msgs += 1;
                    expect_bytes += m.size_bytes() as u64;
                }
                1 => {
                    s.count_geocast(m.kind(), m.size_bytes(), cells);
                    expect_msgs += cells as u64;
                    expect_bytes += (m.size_bytes() * cells) as u64;
                }
                _ => {
                    s.count_broadcast(m.kind(), m.size_bytes());
                    expect_msgs += 1;
                    expect_bytes += m.size_bytes() as u64;
                }
            }
        }
        prop_assert_eq!(s.total_msgs(), expect_msgs);
        prop_assert_eq!(s.total_bytes(), expect_bytes);
        // Per-kind tallies count logical messages: one per call.
        let logical: u64 = s.by_kind.values().sum();
        prop_assert_eq!(logical, (ups.len() + downs.len()) as u64);
    }

    #[test]
    fn stats_merge_is_additive(ups_a in prop::collection::vec(uplink(), 0..30),
                               ups_b in prop::collection::vec(uplink(), 0..30)) {
        let count = |msgs: &[UplinkMsg]| {
            let mut s = NetStats::default();
            for m in msgs {
                s.count_uplink(m.kind(), m.size_bytes());
            }
            s
        };
        let mut merged = count(&ups_a);
        merged += &count(&ups_b);
        let mut both = ups_a.clone();
        both.extend(ups_b.iter().cloned());
        let expected = count(&both);
        prop_assert_eq!(merged, expected);
    }

    #[test]
    fn kind_is_stable_under_payload_changes(q in 0u32..8, ver in 0u64..100,
                                            x in 0.0..100.0f64, y in 0.0..100.0f64) {
        let a = UplinkMsg::Enter { query: QueryId(q), ver, pos: Point::new(x, y), vel: Vector::ZERO };
        let b = UplinkMsg::Enter { query: QueryId(0), ver: 0, pos: Point::ORIGIN, vel: Vector::ZERO };
        prop_assert_eq!(a.kind(), b.kind());
        prop_assert_eq!(a.kind(), MsgKind::Enter);
        prop_assert_eq!(a.size_bytes(), b.size_bytes());
    }
}

#[test]
fn object_and_query_message_sizes_are_order_independent() {
    // The same logical content must cost the same regardless of ids.
    let a = UplinkMsg::Leave { query: QueryId(0), ver: 1, pos: Point::ORIGIN };
    let b = UplinkMsg::Leave { query: QueryId(999), ver: u64::MAX, pos: Point::new(1e4, 1e4) };
    assert_eq!(a.size_bytes(), b.size_bytes());
    let _ = ObjectId(3); // silence unused import lint in non-prop test
}
