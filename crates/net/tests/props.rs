//! Property tests for the network substrate: counter conservation and the
//! byte model (mknn-util `check` harness).

use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};
use mknn_net::{DownlinkMsg, FaultPlan, MsgKind, NetStats, UplinkMsg};
use mknn_util::check::forall;
use mknn_util::Rng;

/// Cases per property (matches the former proptest default of 256).
const CASES: u64 = 256;

fn pt(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
}

fn uplink(rng: &mut Rng) -> UplinkMsg {
    let q = QueryId(rng.gen_range(0u32..8));
    let p = pt(rng);
    let ver = rng.gen_range(0u64..100);
    match rng.gen_range(0u32..6) {
        0 => UplinkMsg::Position {
            pos: p,
            vel: Vector::ZERO,
        },
        1 => UplinkMsg::Enter {
            query: q,
            ver,
            pos: p,
            vel: Vector::ZERO,
        },
        2 => UplinkMsg::Leave {
            query: q,
            ver,
            pos: p,
        },
        3 => UplinkMsg::BandCross {
            query: q,
            ver,
            pos: p,
            vel: Vector::ZERO,
        },
        4 => UplinkMsg::ProbeReply {
            query: q,
            pos: p,
            vel: Vector::ZERO,
        },
        _ => UplinkMsg::QueryMove {
            query: q,
            pos: p,
            vel: Vector::ZERO,
        },
    }
}

fn downlink(rng: &mut Rng) -> DownlinkMsg {
    let q = QueryId(rng.gen_range(0u32..8));
    let p = pt(rng);
    let ver = rng.gen_range(0u64..100);
    let r = rng.gen_range(0.0..50.0);
    match rng.gen_range(0u32..5) {
        0 => DownlinkMsg::InstallRegion {
            query: q,
            ver,
            center: p,
            vel: Vector::ZERO,
            r_out: r,
        },
        1 => DownlinkMsg::RemoveRegion { query: q },
        2 => DownlinkMsg::Probe {
            query: q,
            zone: Circle::new(p, r),
        },
        3 => DownlinkMsg::SetBand {
            query: q,
            ver,
            inner: r,
            outer: r + 1.0,
        },
        _ => DownlinkMsg::ClearBand { query: q },
    }
}

#[test]
fn uplink_byte_model_is_positive_and_bounded() {
    forall(CASES, |rng| {
        let m = uplink(rng);
        let s = m.size_bytes();
        // At least the link header, at most the old fixed-struct proxy:
        // bit-packing may only undercut the legacy model.
        assert!(s >= 3, "at least a link header: {s}");
        assert!(s <= 64, "no uplink should exceed 64 bytes: {s}");
    });
}

#[test]
fn downlink_byte_model_is_positive_and_bounded() {
    forall(CASES, |rng| {
        let m = downlink(rng);
        let s = m.size_bytes();
        assert!((3..=72).contains(&s), "{s}");
    });
}

#[test]
fn stats_totals_equal_sum_of_parts() {
    forall(CASES, |rng| {
        let n_ups = rng.gen_range(0usize..50);
        let ups: Vec<UplinkMsg> = (0..n_ups).map(|_| uplink(rng)).collect();
        let n_downs = rng.gen_range(0usize..50);
        let downs: Vec<DownlinkMsg> = (0..n_downs).map(|_| downlink(rng)).collect();
        let cells = rng.gen_range(1usize..20);

        let mut s = NetStats::default();
        let mut expect_msgs = 0u64;
        let mut expect_bytes = 0u64;
        for m in &ups {
            s.count_uplink(m.kind(), m.size_bytes());
            expect_msgs += 1;
            expect_bytes += m.size_bytes() as u64;
        }
        for (i, m) in downs.iter().enumerate() {
            match i % 3 {
                0 => {
                    s.count_unicast(m.kind(), m.size_bytes());
                    expect_msgs += 1;
                    expect_bytes += m.size_bytes() as u64;
                }
                1 => {
                    s.count_geocast(m.kind(), m.size_bytes(), cells);
                    expect_msgs += cells as u64;
                    expect_bytes += (m.size_bytes() * cells) as u64;
                }
                _ => {
                    s.count_broadcast(m.kind(), m.size_bytes());
                    expect_msgs += 1;
                    expect_bytes += m.size_bytes() as u64;
                }
            }
        }
        assert_eq!(s.total_msgs(), expect_msgs);
        assert_eq!(s.total_bytes(), expect_bytes);
        // Per-kind tallies count logical messages: one per call.
        let logical: u64 = s.by_kind.values().sum();
        assert_eq!(logical, (ups.len() + downs.len()) as u64);
    });
}

#[test]
fn stats_merge_is_additive() {
    forall(CASES, |rng| {
        let n_a = rng.gen_range(0usize..30);
        let ups_a: Vec<UplinkMsg> = (0..n_a).map(|_| uplink(rng)).collect();
        let n_b = rng.gen_range(0usize..30);
        let ups_b: Vec<UplinkMsg> = (0..n_b).map(|_| uplink(rng)).collect();

        let count = |msgs: &[UplinkMsg]| {
            let mut s = NetStats::default();
            for m in msgs {
                s.count_uplink(m.kind(), m.size_bytes());
            }
            s
        };
        let mut merged = count(&ups_a);
        merged += &count(&ups_b);
        let mut both = ups_a.clone();
        both.extend(ups_b.iter().cloned());
        let expected = count(&both);
        assert_eq!(merged, expected);
    });
}

#[test]
fn kind_is_stable_under_payload_changes() {
    forall(CASES, |rng| {
        let q = rng.gen_range(0u32..8);
        let ver = rng.gen_range(0u64..100);
        let p = pt(rng);
        let a = UplinkMsg::Enter {
            query: QueryId(q),
            ver,
            pos: p,
            vel: Vector::ZERO,
        };
        let b = UplinkMsg::Enter {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        };
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.kind(), MsgKind::Enter);
        // Sizes are content-dependent under varint encoding, but the
        // all-zero payload is the floor for the variant.
        assert!(b.size_bytes() <= a.size_bytes());
    });
}

#[test]
fn fault_counters_never_enter_the_conserved_totals() {
    // `total_msgs`/`total_bytes` count *transmissions*; drops, duplicates
    // and delays are observations about deliveries and must never feed the
    // conserved totals — only their own counters, which merge additively.
    forall(CASES, |rng| {
        let mut s = NetStats::default();
        let n_ups = rng.gen_range(0usize..40);
        for _ in 0..n_ups {
            let m = uplink(rng);
            s.count_uplink(m.kind(), m.size_bytes());
        }
        let msgs = s.total_msgs();
        let bytes = s.total_bytes();
        let drops = rng.gen_range(0u64..20);
        let dups = rng.gen_range(0u64..20);
        let delays = rng.gen_range(0u64..20);
        for _ in 0..drops {
            s.count_dropped();
        }
        for _ in 0..dups {
            s.count_duplicated();
        }
        for _ in 0..delays {
            s.count_delayed();
        }
        assert_eq!(s.total_msgs(), msgs, "drops must not change transmissions");
        assert_eq!(s.total_bytes(), bytes);
        assert_eq!(
            (s.dropped_msgs, s.dup_msgs, s.delayed_msgs),
            (drops, dups, delays)
        );

        let mut other = NetStats::default();
        other.count_dropped();
        other.count_delayed();
        let mut merged = s.clone();
        merged += &other;
        assert_eq!(merged.dropped_msgs, drops + 1);
        assert_eq!(merged.dup_msgs, dups);
        assert_eq!(merged.delayed_msgs, delays + 1);
        assert_eq!(merged.total_msgs(), msgs);
    });
}

/// A random *valid* fault plan: every draw stays inside the builder's
/// documented ranges, so `build` must accept it.
fn fault_plan(rng: &mut Rng) -> FaultPlan {
    let mut b = FaultPlan::builder()
        .up_loss(rng.gen_range(0.0..1.0))
        .down_loss(rng.gen_range(0.0..1.0))
        .duplication(rng.gen_range(0.0..0.3));
    if rng.gen_bool(0.7) {
        b = b.delay(rng.gen_range(0.0..1.0), rng.gen_range(1u64..=5));
    }
    if rng.gen_bool(0.7) {
        let min = rng.gen_range(1u64..=4);
        let max = rng.gen_range(min..=min + 6);
        b = b.churn(rng.gen_range(0.0..0.05), min, max);
    }
    if rng.gen_bool(0.5) {
        let min = rng.gen_range(1u64..=8);
        let max = rng.gen_range(min..=min + 12);
        b = b.crashes(rng.gen_range(1u64..=5) as u32, min, max);
    }
    if rng.gen_bool(0.5) {
        b = b.horizon(rng.gen_range(0u64..=1_000));
    }
    b.build()
        .expect("generated knobs are valid by construction")
}

#[test]
fn fault_plans_round_trip_through_json() {
    forall(CASES, |rng| {
        let p = fault_plan(rng);
        let s = mknn_util::to_string(&p);
        let back: FaultPlan = mknn_util::from_str(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
        assert_eq!(back, p, "round trip through {s}");
        back.validate().expect("parsed plans arrive validated");
    });
}

#[test]
fn message_sizes_grow_with_payload_magnitude() {
    // Varints charge for the bits actually carried: a message full of
    // large values costs at least as much as its all-small twin, and the
    // wire model is what `size_bytes` reports (single sizing authority).
    let a = UplinkMsg::Leave {
        query: QueryId(0),
        ver: 1,
        pos: Point::ORIGIN,
    };
    let b = UplinkMsg::Leave {
        query: QueryId(999),
        ver: u64::MAX,
        pos: Point::new(1e4, 1e4),
    };
    assert!(a.size_bytes() < b.size_bytes());
    let _ = ObjectId(3); // silence unused import lint in non-prop test
}
