//! Property tests for the network substrate: counter conservation and the
//! byte model (mknn-util `check` harness).

use mknn_geom::{Circle, ObjectId, Point, QueryId, Vector};
use mknn_net::{DownlinkMsg, MsgKind, NetStats, UplinkMsg};
use mknn_util::check::forall;
use mknn_util::Rng;

/// Cases per property (matches the former proptest default of 256).
const CASES: u64 = 256;

fn pt(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))
}

fn uplink(rng: &mut Rng) -> UplinkMsg {
    let q = QueryId(rng.gen_range(0u32..8));
    let p = pt(rng);
    let ver = rng.gen_range(0u64..100);
    match rng.gen_range(0u32..6) {
        0 => UplinkMsg::Position {
            pos: p,
            vel: Vector::ZERO,
        },
        1 => UplinkMsg::Enter {
            query: q,
            ver,
            pos: p,
            vel: Vector::ZERO,
        },
        2 => UplinkMsg::Leave {
            query: q,
            ver,
            pos: p,
        },
        3 => UplinkMsg::BandCross {
            query: q,
            ver,
            pos: p,
            vel: Vector::ZERO,
        },
        4 => UplinkMsg::ProbeReply {
            query: q,
            pos: p,
            vel: Vector::ZERO,
        },
        _ => UplinkMsg::QueryMove {
            query: q,
            pos: p,
            vel: Vector::ZERO,
        },
    }
}

fn downlink(rng: &mut Rng) -> DownlinkMsg {
    let q = QueryId(rng.gen_range(0u32..8));
    let p = pt(rng);
    let ver = rng.gen_range(0u64..100);
    let r = rng.gen_range(0.0..50.0);
    match rng.gen_range(0u32..5) {
        0 => DownlinkMsg::InstallRegion {
            query: q,
            ver,
            center: p,
            vel: Vector::ZERO,
            r_out: r,
        },
        1 => DownlinkMsg::RemoveRegion { query: q },
        2 => DownlinkMsg::Probe {
            query: q,
            zone: Circle::new(p, r),
        },
        3 => DownlinkMsg::SetBand {
            query: q,
            ver,
            inner: r,
            outer: r + 1.0,
        },
        _ => DownlinkMsg::ClearBand { query: q },
    }
}

#[test]
fn uplink_byte_model_is_positive_and_bounded() {
    forall(CASES, |rng| {
        let m = uplink(rng);
        let s = m.size_bytes();
        assert!(s >= 12, "at least a header");
        assert!(s <= 64, "no uplink should exceed 64 bytes");
    });
}

#[test]
fn downlink_byte_model_is_positive_and_bounded() {
    forall(CASES, |rng| {
        let m = downlink(rng);
        let s = m.size_bytes();
        assert!((12..=72).contains(&s));
    });
}

#[test]
fn stats_totals_equal_sum_of_parts() {
    forall(CASES, |rng| {
        let n_ups = rng.gen_range(0usize..50);
        let ups: Vec<UplinkMsg> = (0..n_ups).map(|_| uplink(rng)).collect();
        let n_downs = rng.gen_range(0usize..50);
        let downs: Vec<DownlinkMsg> = (0..n_downs).map(|_| downlink(rng)).collect();
        let cells = rng.gen_range(1usize..20);

        let mut s = NetStats::default();
        let mut expect_msgs = 0u64;
        let mut expect_bytes = 0u64;
        for m in &ups {
            s.count_uplink(m.kind(), m.size_bytes());
            expect_msgs += 1;
            expect_bytes += m.size_bytes() as u64;
        }
        for (i, m) in downs.iter().enumerate() {
            match i % 3 {
                0 => {
                    s.count_unicast(m.kind(), m.size_bytes());
                    expect_msgs += 1;
                    expect_bytes += m.size_bytes() as u64;
                }
                1 => {
                    s.count_geocast(m.kind(), m.size_bytes(), cells);
                    expect_msgs += cells as u64;
                    expect_bytes += (m.size_bytes() * cells) as u64;
                }
                _ => {
                    s.count_broadcast(m.kind(), m.size_bytes());
                    expect_msgs += 1;
                    expect_bytes += m.size_bytes() as u64;
                }
            }
        }
        assert_eq!(s.total_msgs(), expect_msgs);
        assert_eq!(s.total_bytes(), expect_bytes);
        // Per-kind tallies count logical messages: one per call.
        let logical: u64 = s.by_kind.values().sum();
        assert_eq!(logical, (ups.len() + downs.len()) as u64);
    });
}

#[test]
fn stats_merge_is_additive() {
    forall(CASES, |rng| {
        let n_a = rng.gen_range(0usize..30);
        let ups_a: Vec<UplinkMsg> = (0..n_a).map(|_| uplink(rng)).collect();
        let n_b = rng.gen_range(0usize..30);
        let ups_b: Vec<UplinkMsg> = (0..n_b).map(|_| uplink(rng)).collect();

        let count = |msgs: &[UplinkMsg]| {
            let mut s = NetStats::default();
            for m in msgs {
                s.count_uplink(m.kind(), m.size_bytes());
            }
            s
        };
        let mut merged = count(&ups_a);
        merged += &count(&ups_b);
        let mut both = ups_a.clone();
        both.extend(ups_b.iter().cloned());
        let expected = count(&both);
        assert_eq!(merged, expected);
    });
}

#[test]
fn kind_is_stable_under_payload_changes() {
    forall(CASES, |rng| {
        let q = rng.gen_range(0u32..8);
        let ver = rng.gen_range(0u64..100);
        let p = pt(rng);
        let a = UplinkMsg::Enter {
            query: QueryId(q),
            ver,
            pos: p,
            vel: Vector::ZERO,
        };
        let b = UplinkMsg::Enter {
            query: QueryId(0),
            ver: 0,
            pos: Point::ORIGIN,
            vel: Vector::ZERO,
        };
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.kind(), MsgKind::Enter);
        assert_eq!(a.size_bytes(), b.size_bytes());
    });
}

#[test]
fn object_and_query_message_sizes_are_order_independent() {
    // The same logical content must cost the same regardless of ids.
    let a = UplinkMsg::Leave {
        query: QueryId(0),
        ver: 1,
        pos: Point::ORIGIN,
    };
    let b = UplinkMsg::Leave {
        query: QueryId(999),
        ver: u64::MAX,
        pos: Point::new(1e4, 1e4),
    };
    assert_eq!(a.size_bytes(), b.size_bytes());
    let _ = ObjectId(3); // silence unused import lint in non-prop test
}
