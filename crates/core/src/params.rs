//! Tunable parameters of the distributed protocols.

use mknn_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A rejected [`DknnParams`] construction: which knob was out of range and
/// the offending value.
///
/// Produced by [`DknnParams::validate`] and [`DknnParamsBuilder::build`];
/// the JSON path surfaces it as a parse error, so an invalid config file
/// fails with a message instead of silently mis-running an episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// `alpha` outside the open interval `(0, 1)`.
    AlphaOutOfRange(f64),
    /// `query_drift` was zero or negative (a region that re-centers on
    /// every report defeats the protocol's silence mechanism).
    NonPositiveQueryDrift(f64),
    /// `heartbeat` was 0 ticks: devices approaching from afar would never
    /// learn the region and soundness collapses.
    ZeroHeartbeat,
    /// `expand_factor` did not exceed 1, so expansion probes could loop
    /// without growing.
    ExpandFactorTooSmall(f64),
    /// A negative global speed bound (`v_max_obj` or `v_max_q`).
    NegativeSpeedBound(f64),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParamError::AlphaOutOfRange(v) => write!(f, "alpha must be in (0, 1), got {v}"),
            ParamError::NonPositiveQueryDrift(v) => {
                write!(f, "query_drift must be positive, got {v}")
            }
            ParamError::ZeroHeartbeat => write!(f, "heartbeat must be at least 1 tick"),
            ParamError::ExpandFactorTooSmall(v) => {
                write!(f, "expand_factor must exceed 1, got {v}")
            }
            ParamError::NegativeSpeedBound(v) => {
                write!(f, "speed bounds must be non-negative, got {v}")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Parameters of the DKNN protocols (both set and ordered mode).
///
/// The defaults are sized for the default workload (10 km × 10 km space,
/// object speeds ≤ 20 m/tick) and are swept by the ablation experiments.
///
/// Construct validated instances with [`DknnParams::builder`]; the struct
/// fields stay public for the experiment sweeps that perturb a copy, and
/// the protocol constructors re-validate at adoption time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DknnParams {
    /// Threshold placement inside the gap between the k-th and (k+1)-th
    /// neighbor distance, in `(0, 1)`: the monitoring threshold is
    /// `t = d_k + alpha · (d_{k+1} − d_k)`. `0.5` (midpoint) maximizes the
    /// hysteresis on both sides.
    pub alpha: f64,
    /// Query drift threshold δ_q, in meters: the server re-centers and
    /// re-broadcasts the region when the focal object's reported position
    /// deviates more than this from the broadcast-predicted center. Smaller
    /// values keep the *effective* query point closer to the true one at
    /// the cost of more frequent region refreshes.
    pub query_drift: f64,
    /// Heartbeat period H, in ticks: the server re-geocasts the (unchanged)
    /// region every H ticks so that devices approaching from afar learn it
    /// before they can possibly enter. Part of the protocol's soundness
    /// margin.
    pub heartbeat: u64,
    /// Known global bound on data-object speed, meters/tick (protocol
    /// soundness input, not a tuning knob).
    pub v_max_obj: f64,
    /// Known global bound on query focal speed, meters/tick.
    pub v_max_q: f64,
    /// Growth factor for region-expansion probes when a probe zone yields
    /// fewer than k+1 devices.
    pub expand_factor: f64,
    /// In ordered mode, the number of band events for one query in one tick
    /// above which the server stops patching locally and performs a full
    /// refresh instead.
    pub band_escalation: u32,
}

impl Default for DknnParams {
    fn default() -> Self {
        DknnParams {
            alpha: 0.5,
            query_drift: 40.0,
            heartbeat: 5,
            v_max_obj: 20.0,
            v_max_q: 20.0,
            expand_factor: 2.0,
            band_escalation: 3,
        }
    }
}

impl DknnParams {
    /// Starts a validating builder, seeded with the defaults.
    pub fn builder() -> DknnParamsBuilder {
        DknnParamsBuilder {
            params: DknnParams::default(),
        }
    }

    /// The geocast safety margin added around every region install zone.
    ///
    /// Soundness: a device that does not hear an install is at distance
    /// > `t + margin` from the broadcast center; within the next `H + 1`
    /// > ticks (heartbeat period plus one tick of delivery lag) the relative
    /// > displacement between the device and the predicted center is at most
    /// > `(H + 1)(v_max_obj + v_max_q)`, so the device remains at distance
    /// > `t + query_drift` — strictly outside the region — until a heartbeat
    /// > reaches it.
    pub fn margin(&self) -> f64 {
        self.query_drift + (self.heartbeat as f64 + 1.0) * (self.v_max_obj + self.v_max_q)
    }

    /// Ticks after which a device drops a region it has not heard about.
    /// Must exceed the heartbeat period plus delivery lag.
    pub fn evict_after(&self) -> u64 {
        self.heartbeat + 2
    }

    /// Lossy-mode member lease: ticks of silence after which the server
    /// actively polls a member to check it is still alive and in band.
    /// Two full heartbeat periods plus slack, so a member that merely has
    /// nothing to say is never suspected before a retransmitting event or a
    /// heartbeat-triggered announcement could have reached the server.
    pub fn lease_ttl(&self) -> u64 {
        2 * self.heartbeat + 3
    }

    /// Validates parameter sanity; returns the first problem found.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Err(ParamError::AlphaOutOfRange(self.alpha));
        }
        if self.query_drift <= 0.0 {
            return Err(ParamError::NonPositiveQueryDrift(self.query_drift));
        }
        if self.heartbeat == 0 {
            return Err(ParamError::ZeroHeartbeat);
        }
        if self.expand_factor <= 1.0 {
            return Err(ParamError::ExpandFactorTooSmall(self.expand_factor));
        }
        if self.v_max_obj < 0.0 {
            return Err(ParamError::NegativeSpeedBound(self.v_max_obj));
        }
        if self.v_max_q < 0.0 {
            return Err(ParamError::NegativeSpeedBound(self.v_max_q));
        }
        Ok(())
    }
}

/// Builder for [`DknnParams`] whose [`build`](DknnParamsBuilder::build)
/// rejects out-of-range knobs with a typed [`ParamError`].
#[derive(Debug, Clone, Copy)]
pub struct DknnParamsBuilder {
    params: DknnParams,
}

impl DknnParamsBuilder {
    /// Sets the threshold placement α (must end up in `(0, 1)`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.alpha = alpha;
        self
    }

    /// Sets the query-drift threshold δ_q in meters (must be positive).
    pub fn query_drift(mut self, meters: f64) -> Self {
        self.params.query_drift = meters;
        self
    }

    /// Sets the heartbeat period in ticks (must be ≥ 1).
    pub fn heartbeat(mut self, ticks: u64) -> Self {
        self.params.heartbeat = ticks;
        self
    }

    /// Sets both global speed bounds to `v` meters/tick.
    pub fn speed_bounds(mut self, v: f64) -> Self {
        self.params.v_max_obj = v;
        self.params.v_max_q = v;
        self
    }

    /// Sets the data-object speed bound in meters/tick.
    pub fn v_max_obj(mut self, v: f64) -> Self {
        self.params.v_max_obj = v;
        self
    }

    /// Sets the query-focal speed bound in meters/tick.
    pub fn v_max_q(mut self, v: f64) -> Self {
        self.params.v_max_q = v;
        self
    }

    /// Sets the probe-zone growth factor (must exceed 1).
    pub fn expand_factor(mut self, factor: f64) -> Self {
        self.params.expand_factor = factor;
        self
    }

    /// Sets the ordered-mode band-event escalation threshold.
    pub fn band_escalation(mut self, events: u32) -> Self {
        self.params.band_escalation = events;
        self
    }

    /// Validates and returns the parameters.
    pub fn build(self) -> Result<DknnParams, ParamError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

// Hand-written (rather than `impl_json_struct!`) so that deserialization
// routes through validation: a config file with `alpha: 1.5` fails the
// parse with the `ParamError` message instead of constructing parameters
// that would mis-run or panic deep inside a protocol constructor.
impl ToJson for DknnParams {
    fn to_json(&self) -> Json {
        Json::object([
            ("alpha", self.alpha.to_json()),
            ("query_drift", self.query_drift.to_json()),
            ("heartbeat", self.heartbeat.to_json()),
            ("v_max_obj", self.v_max_obj.to_json()),
            ("v_max_q", self.v_max_q.to_json()),
            ("expand_factor", self.expand_factor.to_json()),
            ("band_escalation", self.band_escalation.to_json()),
        ])
    }
}

impl FromJson for DknnParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let params = DknnParams {
            alpha: v.parse_field("alpha")?,
            query_drift: v.parse_field("query_drift")?,
            heartbeat: v.parse_field("heartbeat")?,
            v_max_obj: v.parse_field("v_max_obj")?,
            v_max_q: v.parse_field("v_max_q")?,
            expand_factor: v.parse_field("expand_factor")?,
            band_escalation: v.parse_field("band_escalation")?,
        };
        params
            .validate()
            .map_err(|e| JsonError::new(format!("invalid DknnParams: {e}")))?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        DknnParams::default().validate().unwrap();
    }

    #[test]
    fn margin_covers_heartbeat_travel() {
        let p = DknnParams::default();
        assert!(p.margin() >= (p.heartbeat + 1) as f64 * (p.v_max_obj + p.v_max_q));
        assert!(p.evict_after() > p.heartbeat);
        assert!(p.lease_ttl() > p.evict_after());
    }

    #[test]
    fn params_round_trip_through_json() {
        let p = DknnParams {
            alpha: 0.25,
            heartbeat: 9,
            ..Default::default()
        };
        let back: DknnParams = mknn_util::from_str(&mknn_util::to_string(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn builder_accepts_valid_knobs() {
        let p = DknnParams::builder()
            .alpha(0.3)
            .query_drift(25.0)
            .heartbeat(7)
            .speed_bounds(12.0)
            .expand_factor(1.5)
            .band_escalation(5)
            .build()
            .unwrap();
        assert_eq!(p.alpha, 0.3);
        assert_eq!(p.query_drift, 25.0);
        assert_eq!(p.heartbeat, 7);
        assert_eq!(p.v_max_obj, 12.0);
        assert_eq!(p.v_max_q, 12.0);
        assert_eq!(p.expand_factor, 1.5);
        assert_eq!(p.band_escalation, 5);
    }

    #[test]
    fn builder_rejects_each_bad_knob_with_the_typed_error() {
        assert_eq!(
            DknnParams::builder().alpha(0.0).build(),
            Err(ParamError::AlphaOutOfRange(0.0))
        );
        assert_eq!(
            DknnParams::builder().alpha(1.0).build(),
            Err(ParamError::AlphaOutOfRange(1.0))
        );
        assert_eq!(
            DknnParams::builder().query_drift(0.0).build(),
            Err(ParamError::NonPositiveQueryDrift(0.0))
        );
        assert_eq!(
            DknnParams::builder().query_drift(-1.0).build(),
            Err(ParamError::NonPositiveQueryDrift(-1.0))
        );
        assert_eq!(
            DknnParams::builder().heartbeat(0).build(),
            Err(ParamError::ZeroHeartbeat)
        );
        assert_eq!(
            DknnParams::builder().expand_factor(1.0).build(),
            Err(ParamError::ExpandFactorTooSmall(1.0))
        );
        assert_eq!(
            DknnParams::builder().v_max_obj(-4.0).build(),
            Err(ParamError::NegativeSpeedBound(-4.0))
        );
        assert_eq!(
            DknnParams::builder().v_max_q(-2.0).build(),
            Err(ParamError::NegativeSpeedBound(-2.0))
        );
    }

    #[test]
    fn param_error_messages_name_the_offender() {
        let msg = ParamError::AlphaOutOfRange(1.5).to_string();
        assert!(msg.contains("alpha") && msg.contains("1.5"), "{msg}");
        let msg = ParamError::ZeroHeartbeat.to_string();
        assert!(msg.contains("heartbeat"), "{msg}");
    }

    #[test]
    fn invalid_json_params_fail_the_parse_with_a_message() {
        let mut doc = mknn_util::to_string(&DknnParams::default());
        doc = doc.replace("\"alpha\":0.5", "\"alpha\":1.5");
        let err = mknn_util::from_str::<DknnParams>(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("alpha") && msg.contains("1.5"), "{msg}");

        let doc = mknn_util::to_string(&DknnParams::default())
            .replace("\"heartbeat\":5", "\"heartbeat\":0");
        assert!(mknn_util::from_str::<DknnParams>(&doc).is_err());
    }
}
