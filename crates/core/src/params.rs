//! Tunable parameters of the distributed protocols.

use mknn_util::impl_json_struct;

/// Parameters of the DKNN protocols (both set and ordered mode).
///
/// The defaults are sized for the default workload (10 km × 10 km space,
/// object speeds ≤ 20 m/tick) and are swept by the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DknnParams {
    /// Threshold placement inside the gap between the k-th and (k+1)-th
    /// neighbor distance, in `(0, 1)`: the monitoring threshold is
    /// `t = d_k + alpha · (d_{k+1} − d_k)`. `0.5` (midpoint) maximizes the
    /// hysteresis on both sides.
    pub alpha: f64,
    /// Query drift threshold δ_q, in meters: the server re-centers and
    /// re-broadcasts the region when the focal object's reported position
    /// deviates more than this from the broadcast-predicted center. Smaller
    /// values keep the *effective* query point closer to the true one at
    /// the cost of more frequent region refreshes.
    pub query_drift: f64,
    /// Heartbeat period H, in ticks: the server re-geocasts the (unchanged)
    /// region every H ticks so that devices approaching from afar learn it
    /// before they can possibly enter. Part of the protocol's soundness
    /// margin.
    pub heartbeat: u64,
    /// Known global bound on data-object speed, meters/tick (protocol
    /// soundness input, not a tuning knob).
    pub v_max_obj: f64,
    /// Known global bound on query focal speed, meters/tick.
    pub v_max_q: f64,
    /// Growth factor for region-expansion probes when a probe zone yields
    /// fewer than k+1 devices.
    pub expand_factor: f64,
    /// In ordered mode, the number of band events for one query in one tick
    /// above which the server stops patching locally and performs a full
    /// refresh instead.
    pub band_escalation: u32,
}

impl_json_struct!(DknnParams {
    alpha,
    query_drift,
    heartbeat,
    v_max_obj,
    v_max_q,
    expand_factor,
    band_escalation,
});

impl Default for DknnParams {
    fn default() -> Self {
        DknnParams {
            alpha: 0.5,
            query_drift: 40.0,
            heartbeat: 5,
            v_max_obj: 20.0,
            v_max_q: 20.0,
            expand_factor: 2.0,
            band_escalation: 3,
        }
    }
}

impl DknnParams {
    /// The geocast safety margin added around every region install zone.
    ///
    /// Soundness: a device that does not hear an install is at distance
    /// > `t + margin` from the broadcast center; within the next `H + 1`
    /// > ticks (heartbeat period plus one tick of delivery lag) the relative
    /// > displacement between the device and the predicted center is at most
    /// > `(H + 1)(v_max_obj + v_max_q)`, so the device remains at distance
    /// > `t + query_drift` — strictly outside the region — until a heartbeat
    /// > reaches it.
    pub fn margin(&self) -> f64 {
        self.query_drift + (self.heartbeat as f64 + 1.0) * (self.v_max_obj + self.v_max_q)
    }

    /// Ticks after which a device drops a region it has not heard about.
    /// Must exceed the heartbeat period plus delivery lag.
    pub fn evict_after(&self) -> u64 {
        self.heartbeat + 2
    }

    /// Validates parameter sanity; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Err(format!("alpha must be in (0, 1), got {}", self.alpha));
        }
        if self.query_drift < 0.0 {
            return Err("query_drift must be non-negative".into());
        }
        if self.heartbeat == 0 {
            return Err("heartbeat must be at least 1 tick".into());
        }
        if self.expand_factor <= 1.0 {
            return Err("expand_factor must exceed 1".into());
        }
        if self.v_max_obj < 0.0 || self.v_max_q < 0.0 {
            return Err("speed bounds must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        DknnParams::default().validate().unwrap();
    }

    #[test]
    fn margin_covers_heartbeat_travel() {
        let p = DknnParams::default();
        assert!(p.margin() >= (p.heartbeat + 1) as f64 * (p.v_max_obj + p.v_max_q));
        assert!(p.evict_after() > p.heartbeat);
    }

    #[test]
    fn params_round_trip_through_json() {
        let p = DknnParams {
            alpha: 0.25,
            heartbeat: 9,
            ..Default::default()
        };
        let back: DknnParams = mknn_util::from_str(&mknn_util::to_string(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(DknnParams {
            alpha: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DknnParams {
            alpha: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DknnParams {
            heartbeat: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DknnParams {
            expand_factor: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(DknnParams {
            query_drift: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
