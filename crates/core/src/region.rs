//! The versioned monitoring region shared by server and clients.

use mknn_geom::{Point, Tick, Vector};

/// One broadcast *version* of a query's monitoring region.
///
/// Both halves of the protocol evaluate region membership against the same
/// predicted center, computed with the identical expression below, so their
/// geometric decisions agree bit-for-bit. Heartbeats re-send a version
/// unchanged (same `ver`, `center`, `vel`) precisely to preserve this
/// property — re-deriving the center at a later tick would perturb the
/// floating-point trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionVersion {
    /// Install tick — doubles as the version number (strictly increasing
    /// per query).
    pub ver: Tick,
    /// Focal position the server knew at install time.
    pub center: Point,
    /// Focal velocity at install time; extrapolates the center.
    pub vel: Vector,
    /// Monitoring threshold: devices at distance ≤ `t` from the predicted
    /// center are inside the region.
    pub t: f64,
}

impl RegionVersion {
    /// The region center predicted for tick `now` (≥ the install tick).
    #[inline]
    pub fn pred_center(&self, now: Tick) -> Point {
        self.center + self.vel * (now.saturating_sub(self.ver)) as f64
    }

    /// Returns `true` when `p` is inside the region at tick `now`.
    #[inline]
    pub fn contains(&self, p: Point, now: Tick) -> bool {
        p.dist_sq(self.pred_center(now)) <= self.t * self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_extrapolates_linearly() {
        let r = RegionVersion {
            ver: 10,
            center: Point::new(100.0, 100.0),
            vel: Vector::new(2.0, -1.0),
            t: 50.0,
        };
        assert_eq!(r.pred_center(10), Point::new(100.0, 100.0));
        assert_eq!(r.pred_center(15), Point::new(110.0, 95.0));
    }

    #[test]
    fn contains_uses_predicted_center() {
        let r = RegionVersion {
            ver: 0,
            center: Point::new(0.0, 0.0),
            vel: Vector::new(10.0, 0.0),
            t: 5.0,
        };
        assert!(r.contains(Point::new(0.0, 0.0), 0));
        assert!(!r.contains(Point::new(0.0, 0.0), 1));
        assert!(r.contains(Point::new(10.0, 3.0), 1));
    }
}
