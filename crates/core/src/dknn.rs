//! The assembled DKNN protocol (client half + server half).

use crate::{ClientHalf, DknnParams, Mode, ParamError, ServerHalf};
use mknn_geom::{ObjectId, Point, QueryId, Rect, Tick};
use mknn_mobility::MovingObject;
use mknn_net::{
    run_shard_tasks, DownlinkMsg, OpCounters, Outbox, ProbeService, Protocol, QuerySpec,
    ServerPhase, Uplinks,
};

/// Distributed processing of moving k-nearest-neighbor queries — the
/// reproduction of the target paper's contribution.
///
/// Two semantics levels share one machinery:
///
/// * **Set mode** ([`Dknn::set`]) maintains the exact kNN *set* using only
///   region boundary crossings: a midpoint threshold `t` between the k-th
///   and (k+1)-th neighbor makes the set invariant under silent movement on
///   either side, so no position reports are needed until something crosses.
/// * **Ordered mode** ([`Dknn::ordered`]) additionally maintains the exact
///   neighbor *order* by assigning each member a response band (annulus);
///   internal order changes surface as band crossings, which the server
///   patches locally with at most one poll and two band installs.
///
/// Answers are exact with respect to the [effective query
/// center](Protocol::effective_center), which the protocol keeps within
/// [`DknnParams::query_drift`] meters of the focal object's true position.
#[derive(Debug)]
pub struct Dknn {
    params: DknnParams,
    mode: Mode,
    client: ClientHalf,
    /// One [`ServerHalf`] per shard of the deployed server tier. A single
    /// entry until the first partitioned [`Protocol::server_phase`] forks
    /// the tier lazily to the deployment width; each partition owns exactly
    /// the per-query server state homed at its shard.
    servers: Vec<ServerHalf>,
    /// Hosting shard per query id — the protocol-side mirror of the
    /// coordinator's query-home directory, updated as queries migrate.
    home_of: Vec<u32>,
    lossy: bool,
}

impl Dknn {
    /// Set-semantics protocol (cheapest messaging).
    ///
    /// # Panics
    ///
    /// Panics when `params` fail [`DknnParams::validate`]; use
    /// [`Dknn::try_set`] to handle invalid parameters gracefully.
    pub fn set(params: DknnParams) -> Self {
        Self::try_set(params).expect("invalid DknnParams")
    }

    /// Order-preserving protocol.
    ///
    /// # Panics
    ///
    /// Panics when `params` fail [`DknnParams::validate`]; use
    /// [`Dknn::try_ordered`] to handle invalid parameters gracefully.
    pub fn ordered(params: DknnParams) -> Self {
        Self::try_ordered(params).expect("invalid DknnParams")
    }

    /// Fallible [`Dknn::set`]: rejects invalid parameters with the typed
    /// error instead of panicking.
    pub fn try_set(params: DknnParams) -> Result<Self, ParamError> {
        Self::with_mode(params, Mode::Set)
    }

    /// Fallible [`Dknn::ordered`].
    pub fn try_ordered(params: DknnParams) -> Result<Self, ParamError> {
        Self::with_mode(params, Mode::Ordered)
    }

    fn with_mode(params: DknnParams, mode: Mode) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Dknn {
            params,
            mode,
            client: ClientHalf::new(params, 0),
            servers: vec![ServerHalf::new(params, mode)],
            home_of: Vec::new(),
            lossy: false,
        })
    }

    /// The configured parameters.
    pub fn params(&self) -> &DknnParams {
        &self.params
    }

    /// Number of full refreshes performed so far (diagnostics).
    pub fn refreshes(&self) -> u64 {
        self.servers.iter().map(|s| s.total_refreshes()).sum()
    }

    /// Number of locally patched band events (ordered mode diagnostics).
    pub fn band_fixes(&self) -> u64 {
        self.servers.iter().map(|s| s.total_band_fixes()).sum()
    }

    /// Diagnostic: regions installed on device `idx` right now.
    pub fn client_regions(&self, idx: usize) -> usize {
        self.client.installed_regions(idx)
    }

    /// The partition hosting `query` (partition 0 until first homed).
    fn server_of(&self, query: QueryId) -> &ServerHalf {
        let h = self.home_of.get(query.index()).copied().unwrap_or(0) as usize;
        &self.servers[h.min(self.servers.len() - 1)]
    }
}

impl Protocol for Dknn {
    fn name(&self) -> &'static str {
        match self.mode {
            Mode::Set => "dknn-set",
            Mode::Ordered => "dknn-order",
        }
    }

    fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
        self.client.set_lossy(lossy);
        for server in &mut self.servers {
            server.set_lossy(lossy);
        }
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        _probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.client = ClientHalf::new(self.params, objects.len());
        self.client.set_lossy(self.lossy);
        for spec in queries {
            self.client.set_focal(spec.focal.index(), spec.id);
        }
        // Registration is a single-server act: the tier forks into its
        // partitions lazily at the first partitioned server phase.
        self.servers.truncate(1);
        self.servers[0].init(bounds, objects, queries, outbox, ops);
        self.home_of = vec![0; queries.len()];
    }

    fn client_tick(
        &mut self,
        tick: Tick,
        me: &MovingObject,
        inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        self.client.tick(tick, me, inbox, up, ops);
    }

    fn client_phase(&mut self, ctx: &mknn_net::ClientCtx, up: &mut Uplinks, ops: &mut OpCounters) {
        // Per-device band/region checks are independent: chunk them over
        // the pool (byte-identical to the sequential loop by chunk-order
        // merge; see ClientHalf::tick_batch).
        self.client.tick_batch(ctx, up, ops);
    }

    fn server_tick(
        &mut self,
        tick: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.servers[0].tick(tick, uplinks, probe, outbox, ops);
    }

    fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        debug_assert!(
            phase
                .tasks
                .iter()
                .enumerate()
                .all(|(i, t)| t.shard as usize == i),
            "tasks must be dense ascending shard ids"
        );
        // Fork the tier lazily to the deployment width.
        while self.servers.len() < phase.tasks.len() {
            let next = self.servers[0].fork_empty();
            self.servers.push(next);
        }
        // Migrate per-query server state to this tick's coordinator homes.
        // Each query lives in exactly one partition, so a move is a map
        // remove + insert — this is the state the Migrate leg ships.
        if self.home_of.len() < phase.homes.len() {
            self.home_of.resize(phase.homes.len(), 0);
        }
        for (q, (&new_home, old_home)) in
            phase.homes.iter().zip(self.home_of.iter_mut()).enumerate()
        {
            if *old_home != new_home {
                if let Some(state) = self.servers[*old_home as usize].take_query(q as u32) {
                    self.servers[new_home as usize].insert_query(q as u32, state);
                }
                *old_home = new_home;
            }
        }
        // Every partition ticks independently on the uplinks homed at its
        // shard; per-query state never crosses partitions mid-phase, so the
        // parallel dispatch is deterministic at any thread count.
        let tick = phase.tick;
        run_shard_tasks(
            phase.pool,
            &mut self.servers,
            phase.tasks,
            |server, task| {
                let up = std::mem::take(&mut task.uplinks);
                server.tick(
                    tick,
                    &up,
                    task.probe.as_mut(),
                    &mut task.outbox,
                    &mut task.ops,
                );
            },
        );
    }

    fn server_crash(&mut self, _shard: u32, _block: Rect, queries: &[QueryId]) {
        // The crashed shard's member/band/answer state is gone; the focal
        // registry survives (durable coordinator metadata). Recovery rides
        // the ordinary refresh machinery: the next server tick probes and
        // re-establishes each wiped query. Each query lives in exactly one
        // partition, so wiping across the tier touches exactly its holder.
        for server in &mut self.servers {
            server.crash_queries(queries);
        }
    }

    // `server_recover` stays the default no-op: DKNN's server holds no
    // object index to re-learn — the reconstruction sweep's replayed
    // boundary objects only matter to methods that track positions.

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.server_of(query).answer(query)
    }

    fn effective_center(&self, query: QueryId) -> Option<Point> {
        self.server_of(query).effective_center(query)
    }

    fn ordered_answers(&self) -> bool {
        self.mode == Mode::Ordered
    }
}
