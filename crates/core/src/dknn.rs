//! The assembled DKNN protocol (client half + server half).

use crate::{ClientHalf, DknnParams, Mode, ParamError, ServerHalf};
use mknn_geom::{ObjectId, Point, QueryId, Rect, Tick};
use mknn_mobility::MovingObject;
use mknn_net::{DownlinkMsg, OpCounters, Outbox, ProbeService, Protocol, QuerySpec, Uplinks};

/// Distributed processing of moving k-nearest-neighbor queries — the
/// reproduction of the target paper's contribution.
///
/// Two semantics levels share one machinery:
///
/// * **Set mode** ([`Dknn::set`]) maintains the exact kNN *set* using only
///   region boundary crossings: a midpoint threshold `t` between the k-th
///   and (k+1)-th neighbor makes the set invariant under silent movement on
///   either side, so no position reports are needed until something crosses.
/// * **Ordered mode** ([`Dknn::ordered`]) additionally maintains the exact
///   neighbor *order* by assigning each member a response band (annulus);
///   internal order changes surface as band crossings, which the server
///   patches locally with at most one poll and two band installs.
///
/// Answers are exact with respect to the [effective query
/// center](Protocol::effective_center), which the protocol keeps within
/// [`DknnParams::query_drift`] meters of the focal object's true position.
#[derive(Debug)]
pub struct Dknn {
    params: DknnParams,
    mode: Mode,
    client: ClientHalf,
    server: ServerHalf,
    lossy: bool,
}

impl Dknn {
    /// Set-semantics protocol (cheapest messaging).
    ///
    /// # Panics
    ///
    /// Panics when `params` fail [`DknnParams::validate`]; use
    /// [`Dknn::try_set`] to handle invalid parameters gracefully.
    pub fn set(params: DknnParams) -> Self {
        Self::try_set(params).expect("invalid DknnParams")
    }

    /// Order-preserving protocol.
    ///
    /// # Panics
    ///
    /// Panics when `params` fail [`DknnParams::validate`]; use
    /// [`Dknn::try_ordered`] to handle invalid parameters gracefully.
    pub fn ordered(params: DknnParams) -> Self {
        Self::try_ordered(params).expect("invalid DknnParams")
    }

    /// Fallible [`Dknn::set`]: rejects invalid parameters with the typed
    /// error instead of panicking.
    pub fn try_set(params: DknnParams) -> Result<Self, ParamError> {
        Self::with_mode(params, Mode::Set)
    }

    /// Fallible [`Dknn::ordered`].
    pub fn try_ordered(params: DknnParams) -> Result<Self, ParamError> {
        Self::with_mode(params, Mode::Ordered)
    }

    fn with_mode(params: DknnParams, mode: Mode) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Dknn {
            params,
            mode,
            client: ClientHalf::new(params, 0),
            server: ServerHalf::new(params, mode),
            lossy: false,
        })
    }

    /// The configured parameters.
    pub fn params(&self) -> &DknnParams {
        &self.params
    }

    /// Number of full refreshes performed so far (diagnostics).
    pub fn refreshes(&self) -> u64 {
        self.server.total_refreshes()
    }

    /// Number of locally patched band events (ordered mode diagnostics).
    pub fn band_fixes(&self) -> u64 {
        self.server.total_band_fixes()
    }

    /// Diagnostic: regions installed on device `idx` right now.
    pub fn client_regions(&self, idx: usize) -> usize {
        self.client.installed_regions(idx)
    }
}

impl Protocol for Dknn {
    fn name(&self) -> &'static str {
        match self.mode {
            Mode::Set => "dknn-set",
            Mode::Ordered => "dknn-order",
        }
    }

    fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
        self.client.set_lossy(lossy);
        self.server.set_lossy(lossy);
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        _probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.client = ClientHalf::new(self.params, objects.len());
        self.client.set_lossy(self.lossy);
        for spec in queries {
            self.client.set_focal(spec.focal.index(), spec.id);
        }
        self.server.init(bounds, objects, queries, outbox, ops);
    }

    fn client_tick(
        &mut self,
        tick: Tick,
        me: &MovingObject,
        inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        self.client.tick(tick, me, inbox, up, ops);
    }

    fn client_phase(&mut self, ctx: &mknn_net::ClientCtx, up: &mut Uplinks, ops: &mut OpCounters) {
        // Per-device band/region checks are independent: chunk them over
        // the pool (byte-identical to the sequential loop by chunk-order
        // merge; see ClientHalf::tick_batch).
        self.client.tick_batch(ctx, up, ops);
    }

    fn server_tick(
        &mut self,
        tick: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.server.tick(tick, uplinks, probe, outbox, ops);
    }

    fn server_crash(&mut self, _block: Rect, queries: &[QueryId]) {
        // The crashed shard's member/band/answer state is gone; the focal
        // registry survives (durable coordinator metadata). Recovery rides
        // the ordinary refresh machinery: the next server tick probes and
        // re-establishes each wiped query.
        self.server.crash_queries(queries);
    }

    // `server_recover` stays the default no-op: DKNN's server holds no
    // object index to re-learn — the reconstruction sweep's replayed
    // boundary objects only matter to methods that track positions.

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.server.answer(query)
    }

    fn effective_center(&self, query: QueryId) -> Option<Point> {
        self.server.effective_center(query)
    }

    fn ordered_answers(&self) -> bool {
        self.mode == Mode::Ordered
    }
}
