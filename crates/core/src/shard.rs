//! Grid-partitioned server shards and the thin coordinator that routes
//! between them (DESIGN.md §9).
//!
//! The server tier is split into `G` [`ServerShard`]s, each owning a
//! rectangular block of the world. An object belongs to the shard whose
//! block contains its position; a query is *homed* at the shard that owns
//! its focal object. Work that spans blocks travels over an inter-shard
//! backbone as explicit [`ShardMsg`]s:
//!
//! * a zone-scoped task (geocast, probe, broadcast) whose zone overlaps a
//!   foreign block **fans out** to each covering shard;
//! * covering shards return **partial answers** that the home shard merges;
//! * uplinks surfacing at a foreign shard and unicasts delivered through a
//!   foreign block are **forwarded**;
//! * an object crossing a block boundary is **handed off** to the new
//!   owner, and a focal crossing **migrates** the query's server state.
//!
//! The backbone is an accounting overlay: the protocol logic itself is
//! unchanged (every shard evaluates the same deterministic `ServerHalf`
//! code on the same inputs), so the maintained answers are byte-identical
//! for every `G` — only the separately-tallied coordination overhead
//! ([`mknn_net::ShardStats`]) and the per-shard load distribution vary.
//! Under a [`FaultPlan`](mknn_net::FaultPlan) the backbone is *reliable but
//! lossy*: a lost leg is retransmitted until delivered (drawn from a
//! dedicated RNG stream so device-side fault fates are unperturbed), which
//! preserves answer equivalence while still charging chaos-mode overhead.
//!
//! # Crash windows & failover (DESIGN.md §11)
//!
//! A [`CrashWindow`](mknn_net::CrashWindow) takes one shard down for a
//! planned span of ticks. While down, the coordinator routes *around* it:
//! every role the dead shard played is covered by its **fallback** — the
//! nearest up shard by block-center distance (ties to the lowest id).
//! Ownership tracked into the dead block silently homes at the fallback;
//! `Handoff`/`Migrate` legs whose geometric target is down are **queued**
//! until rebirth; geocast fan-outs and probe gathers are remapped through
//! the fallback and deduplicated. At rebirth, [`ShardCoordinator::recover`]
//! runs the counted reconstruction sweep: still-relevant queued handoffs
//! are delivered, and each surviving shard replays the boundary objects it
//! adopted as one [`ShardMsg::Recover`] leg, after which the objects are
//! re-homed to the reborn owner (the sweep *is* the handoff, so the next
//! tracking pass charges nothing extra).

use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Vector};
use mknn_net::{FaultyLink, NetStats, ObjReport, ShardMsg};
use std::collections::{BTreeMap, BTreeSet};

/// The spatial partition: the world rectangle cut into a near-square grid
/// of `rows × cols = G` equal blocks.
#[derive(Debug, Clone)]
pub struct ShardGrid {
    bounds: Rect,
    rows: u32,
    cols: u32,
}

impl ShardGrid {
    /// Partition `bounds` into `shards` blocks. The factorization keeps the
    /// blocks as square as possible: `rows` is the largest divisor of
    /// `shards` that is at most `√shards` (so 2 → 1×2, 8 → 2×4, 16 → 4×4;
    /// primes degrade to a 1×G strip).
    pub fn new(bounds: Rect, shards: u32) -> Self {
        let g = shards.max(1);
        let mut rows = 1;
        let mut d = (g as f64).sqrt().floor() as u32;
        while d >= 1 {
            if g.is_multiple_of(d) {
                rows = d;
                break;
            }
            d -= 1;
        }
        ShardGrid {
            bounds,
            rows,
            cols: g / rows,
        }
    }

    /// Number of shards in the partition.
    pub fn count(&self) -> u32 {
        self.rows * self.cols
    }

    /// Grid shape as `(rows, cols)`.
    pub fn shape(&self) -> (u32, u32) {
        (self.rows, self.cols)
    }

    /// The shard owning `p`. Positions outside the world rectangle clamp to
    /// the nearest block, so every point has exactly one owner.
    pub fn shard_of(&self, p: Point) -> u32 {
        let fx = (p.x - self.bounds.min.x) / self.bounds.width() * self.cols as f64;
        let fy = (p.y - self.bounds.min.y) / self.bounds.height() * self.rows as f64;
        let col = (fx.floor() as i64).clamp(0, self.cols as i64 - 1) as u32;
        let row = (fy.floor() as i64).clamp(0, self.rows as i64 - 1) as u32;
        row * self.cols + col
    }

    /// The rectangular block owned by shard `id`.
    pub fn rect_of(&self, id: u32) -> Rect {
        let row = id / self.cols;
        let col = id % self.cols;
        let w = self.bounds.width() / self.cols as f64;
        let h = self.bounds.height() / self.rows as f64;
        Rect::from_coords(
            self.bounds.min.x + col as f64 * w,
            self.bounds.min.y + row as f64 * h,
            self.bounds.min.x + (col + 1) as f64 * w,
            self.bounds.min.y + (row + 1) as f64 * h,
        )
    }

    /// Shard ids whose blocks intersect `zone`, ascending. `G` is small, so
    /// a linear scan over the blocks is simpler than walking the grid.
    pub fn overlapping(&self, zone: &Circle) -> Vec<u32> {
        (0..self.count())
            .filter(|&s| self.rect_of(s).intersects_circle(zone))
            .collect()
    }
}

/// One partition of the server tier: ownership tallies and the load counter
/// used for the per-shard balance metric.
#[derive(Debug, Clone)]
pub struct ServerShard {
    /// Position of this shard's block in the grid.
    pub id: u32,
    /// Objects currently owned (position inside the block).
    pub objects: usize,
    /// Queries currently homed here (focal object owned here).
    pub queries: usize,
    /// Messages this shard has processed: device traffic it terminated plus
    /// backbone legs it sent or received.
    pub load: u64,
}

/// The thin routing tier in front of the shards: tracks ownership, detects
/// boundary crossings, and charges every inter-shard leg into
/// [`NetStats::shard`] (and through the [`FaultyLink`] when one is active).
#[derive(Debug)]
pub struct ShardCoordinator {
    grid: ShardGrid,
    shards: Vec<ServerShard>,
    /// Owner per object, indexed by `id.index()` (`UNTRACKED` until the
    /// first sighting). A dense vector, not a map: this is touched once per
    /// object per tick, and the north-star population is 10⁶ objects.
    object_home: Vec<u32>,
    query_home: BTreeMap<QueryId, u32>,
    /// Smallest circle covering the world rectangle — the zone a broadcast
    /// fans out over (every shard covers part of it).
    world_zone: Circle,
    /// Crash state per shard: `true` while inside a planned crash window.
    down: Vec<bool>,
    /// Covering shard per shard: self while up; while down, the nearest up
    /// shard by block-center distance (ties to the lowest id), or self when
    /// every shard is down (the G=1 degenerate crash).
    fallback: Vec<u32>,
    /// `Handoff`/`Migrate` legs whose geometric target was down when they
    /// arose, held until that shard's rebirth.
    queued: Vec<(u32, ShardMsg)>,
}

/// Sentinel owner for objects not yet sighted ([`ShardCoordinator`] ids are
/// grid indices, far below this).
const UNTRACKED: u32 = u32::MAX;

impl ShardCoordinator {
    /// A coordinator over `shards` blocks of `bounds`. `shards = 1`
    /// degenerates to the single-server deployment: every routing method
    /// becomes a no-op charge-wise, so the overlay stays empty.
    pub fn new(bounds: Rect, shards: u32) -> Self {
        let grid = ShardGrid::new(bounds, shards);
        let shards = (0..grid.count())
            .map(|id| ServerShard {
                id,
                objects: 0,
                queries: 0,
                load: 0,
            })
            .collect();
        let half_diag = bounds.center().dist(bounds.max);
        let count = grid.count();
        ShardCoordinator {
            grid,
            shards,
            object_home: Vec::new(),
            query_home: BTreeMap::new(),
            world_zone: Circle::new(bounds.center(), half_diag),
            down: vec![false; count as usize],
            fallback: (0..count).collect(),
            queued: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn count(&self) -> u32 {
        self.grid.count()
    }

    /// The shard owning position `p`.
    pub fn shard_of(&self, p: Point) -> u32 {
        self.grid.shard_of(p)
    }

    /// The home shard of query `q` (0 until first tracked).
    pub fn query_home(&self, q: QueryId) -> u32 {
        self.query_home.get(&q).copied().unwrap_or(0)
    }

    /// The shard of query `q` resolved through crash failover: its home
    /// while up, the home's fallback while down. This is the shard whose
    /// partition actually hosts the query's server state this tick.
    pub fn effective_home(&self, q: QueryId) -> u32 {
        self.effective(self.query_home(q))
    }

    /// The shard covering position `p` resolved through crash failover —
    /// the partition a device report surfacing at `p` terminates in.
    pub fn effective_shard_of(&self, p: Point) -> u32 {
        self.effective(self.grid.shard_of(p))
    }

    /// Per-shard load counters, indexed by shard id.
    pub fn loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.load).collect()
    }

    /// Read access to a shard's tallies (tests, reporting).
    pub fn shard(&self, id: u32) -> &ServerShard {
        &self.shards[id as usize]
    }

    /// The rectangular block owned by shard `id` (the failure domain a
    /// crash wipes and a recovery sweep replays).
    pub fn block_of(&self, id: u32) -> Rect {
        self.grid.rect_of(id)
    }

    /// True while `id` is inside a planned crash window.
    pub fn is_down(&self, id: u32) -> bool {
        self.down[id as usize]
    }

    /// Backbone legs held for a down shard's rebirth (test hook).
    pub fn queued_legs(&self) -> usize {
        self.queued.len()
    }

    /// Resolves a geometric owner to the shard actually covering its role:
    /// itself while up, its fallback while down.
    fn effective(&self, shard: u32) -> u32 {
        self.fallback[shard as usize]
    }

    /// Recomputes every down shard's covering fallback. Called on each
    /// crash/recover transition — O(G²) on a tier of at most a few dozen
    /// shards, and only at window edges.
    fn recompute_fallbacks(&mut self) {
        for s in 0..self.grid.count() {
            self.fallback[s as usize] = if self.down[s as usize] {
                self.nearest_up(s)
            } else {
                s
            };
        }
    }

    /// The nearest up shard to `s` by block-center distance, ties to the
    /// lowest id; `s` itself when no shard is up.
    fn nearest_up(&self, s: u32) -> u32 {
        let c = self.grid.rect_of(s).center();
        let mut best = s;
        let mut best_d = f64::INFINITY;
        for t in 0..self.grid.count() {
            if t != s && !self.down[t as usize] {
                let d = self.grid.rect_of(t).center().dist(c);
                if d < best_d {
                    best_d = d;
                    best = t;
                }
            }
        }
        best
    }

    /// Takes `shard` down at the start of its crash window: its object-home
    /// entries revert to untracked, its homed queries are dropped (returned
    /// ascending so the caller can wipe the matching protocol state), and
    /// routing fails over to the fallback shard until [`Self::recover`].
    /// The load counter survives — it is a cumulative episode metric.
    pub fn crash(&mut self, shard: u32) -> Vec<QueryId> {
        self.down[shard as usize] = true;
        self.recompute_fallbacks();
        for home in self.object_home.iter_mut() {
            if *home == shard {
                *home = UNTRACKED;
            }
        }
        self.shards[shard as usize].objects = 0;
        let wiped: Vec<QueryId> = self
            .query_home
            .iter()
            .filter(|&(_, &h)| h == shard)
            .map(|(&q, _)| q)
            .collect();
        for q in &wiped {
            self.query_home.remove(q);
        }
        self.shards[shard as usize].queries = 0;
        wiped
    }

    /// Rebirths `shard` and runs the counted state-reconstruction sweep.
    /// `replay` is the set of objects currently inside the reborn block
    /// (the coordinator cannot know positions it never stores):
    ///
    /// 1. queued `Handoff` legs addressed to `shard` are delivered if their
    ///    object is still in the block, dropped otherwise; queued `Migrate`
    ///    legs are dropped (the next focal tracking re-migrates naturally);
    /// 2. each surviving shard replays the boundary objects it adopted as
    ///    one [`ShardMsg::Recover`] leg;
    /// 3. the replayed objects re-home to the reborn owner, so the next
    ///    tracking pass sees no crossing.
    ///
    /// Returns the number of `Recover` legs charged.
    pub fn recover(
        &mut self,
        shard: u32,
        replay: &[ObjReport],
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) -> usize {
        self.down[shard as usize] = false;
        self.recompute_fallbacks();

        let in_block: BTreeSet<u32> = replay.iter().map(|r| r.id.0).collect();
        let held = std::mem::take(&mut self.queued);
        for (target, msg) in held {
            if target != shard {
                self.queued.push((target, msg));
                continue;
            }
            if let ShardMsg::Handoff { object, .. } = msg {
                if in_block.contains(&object.0) {
                    let from = self.object_home[object.index()];
                    if from != UNTRACKED {
                        self.shards[from as usize].load += 1;
                    }
                    self.shards[shard as usize].load += 1;
                    self.charge(msg, stats, &mut fault);
                }
            }
        }

        let mut by_source: BTreeMap<u32, usize> = BTreeMap::new();
        for r in replay {
            let idx = r.id.index();
            let src = match self.object_home.get(idx) {
                Some(&h) if h != UNTRACKED => self.effective(h),
                _ => shard,
            };
            *by_source.entry(src).or_insert(0) += 1;
        }
        let mut legs = 0;
        for (&src, &count) in &by_source {
            if src != shard {
                self.charge(ShardMsg::Recover { shard, count }, stats, &mut fault);
                self.shards[src as usize].load += 1;
                self.shards[shard as usize].load += 1;
                legs += 1;
            }
        }
        for r in replay {
            let idx = r.id.index();
            if idx >= self.object_home.len() {
                self.object_home.resize(idx + 1, UNTRACKED);
            }
            let prev = std::mem::replace(&mut self.object_home[idx], shard);
            if prev == UNTRACKED {
                self.shards[shard as usize].objects += 1;
            } else if prev != shard {
                self.shards[prev as usize].objects -= 1;
                self.shards[shard as usize].objects += 1;
            }
        }
        legs
    }

    fn charge(&mut self, msg: ShardMsg, stats: &mut NetStats, fault: &mut Option<&mut FaultyLink>) {
        stats.shard.count(&msg);
        if let Some(link) = fault.as_deref_mut() {
            link.shard_leg(msg.size_bytes(), stats);
        }
    }

    /// Observe object `id` at `pos` this tick. A block crossing charges a
    /// [`ShardMsg::Handoff`] from the old owner to the new one. While the
    /// geometric owner is down the fallback shard adopts the object, and
    /// the leg to the dead shard is queued for its rebirth.
    pub fn track_object(
        &mut self,
        id: ObjectId,
        pos: Point,
        vel: Vector,
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) {
        let geo = self.grid.shard_of(pos);
        let now = self.effective(geo);
        let idx = id.index();
        if idx >= self.object_home.len() {
            self.object_home.resize(idx + 1, UNTRACKED);
        }
        let prev = std::mem::replace(&mut self.object_home[idx], now);
        if prev == UNTRACKED {
            self.shards[now as usize].objects += 1;
        } else if prev != now {
            self.shards[prev as usize].objects -= 1;
            self.shards[now as usize].objects += 1;
            let msg = ShardMsg::Handoff {
                object: id,
                pos,
                vel,
            };
            if geo != now {
                self.queued.push((geo, msg));
            }
            self.charge(msg, stats, &mut fault);
            self.shards[prev as usize].load += 1;
            self.shards[now as usize].load += 1;
        }
    }

    /// Observe query `q` with its focal object at `focal_pos`. A focal
    /// block crossing re-homes the query and charges a
    /// [`ShardMsg::Migrate`] shipping its `members`-entry server state.
    /// While the geometric home is down the fallback shard hosts the query,
    /// and the migrate leg to the dead shard is queued for its rebirth.
    pub fn track_query(
        &mut self,
        q: QueryId,
        focal_pos: Point,
        members: usize,
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) {
        let geo = self.grid.shard_of(focal_pos);
        let now = self.effective(geo);
        match self.query_home.insert(q, now) {
            None => self.shards[now as usize].queries += 1,
            Some(prev) if prev != now => {
                self.shards[prev as usize].queries -= 1;
                self.shards[now as usize].queries += 1;
                let msg = ShardMsg::Migrate { query: q, members };
                if geo != now {
                    self.queued.push((geo, msg));
                }
                self.charge(msg, stats, &mut fault);
                self.shards[prev as usize].load += 1;
                self.shards[now as usize].load += 1;
            }
            Some(_) => {}
        }
    }

    /// An uplink from a device at `sender_pos` arrived at its local shard.
    /// If it belongs to a query homed elsewhere it is forwarded over the
    /// backbone ([`ShardMsg::Forward`]). Returns the shard the uplink
    /// terminates at — the query's home for query-scoped traffic, the
    /// local shard for position reports — which is the partition whose
    /// server instance consumes the message.
    pub fn route_uplink(
        &mut self,
        q: Option<QueryId>,
        sender_pos: Point,
        payload_bytes: usize,
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) -> u32 {
        let local = self.effective(self.grid.shard_of(sender_pos));
        self.shards[local as usize].load += 1;
        if let Some(q) = q {
            let home = self.effective(self.query_home(q));
            if home != local {
                self.charge(
                    ShardMsg::Forward {
                        query: q,
                        payload_bytes,
                    },
                    stats,
                    &mut fault,
                );
                self.shards[home as usize].load += 1;
            }
            home
        } else {
            local
        }
    }

    /// Query `q`'s home shard sends a unicast to a device at
    /// `recipient_pos`; delivery through a foreign block is forwarded.
    pub fn route_unicast(
        &mut self,
        q: QueryId,
        recipient_pos: Point,
        payload_bytes: usize,
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) {
        let home = self.effective(self.query_home(q));
        self.shards[home as usize].load += 1;
        let local = self.effective(self.grid.shard_of(recipient_pos));
        if local != home {
            self.charge(
                ShardMsg::Forward {
                    query: q,
                    payload_bytes,
                },
                stats,
                &mut fault,
            );
            self.shards[local as usize].load += 1;
        }
    }

    /// Query `q`'s home shard services a zone-scoped task; each foreign
    /// covering shard receives a [`ShardMsg::Fanout`]. Returns the foreign
    /// covering shards, ascending. Down shards in the covering set are
    /// remapped to their fallback and deduplicated, so a fan-out never
    /// addresses a dead shard (and shrinks while one is down).
    pub fn route_geocast(
        &mut self,
        q: QueryId,
        zone: &Circle,
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) -> Vec<u32> {
        let home = self.effective(self.query_home(q));
        self.shards[home as usize].load += 1;
        let mut foreign: Vec<u32> = self
            .grid
            .overlapping(zone)
            .into_iter()
            .map(|s| self.effective(s))
            .filter(|&s| s != home)
            .collect();
        foreign.sort_unstable();
        foreign.dedup();
        for &s in &foreign {
            self.charge(
                ShardMsg::Fanout {
                    query: q,
                    zone: *zone,
                },
                stats,
                &mut fault,
            );
            self.shards[s as usize].load += 1;
        }
        foreign
    }

    /// A broadcast fans out to every shard: the zone is the circumscribed
    /// world circle.
    pub fn route_broadcast(
        &mut self,
        q: QueryId,
        stats: &mut NetStats,
        fault: Option<&mut FaultyLink>,
    ) -> Vec<u32> {
        let zone = self.world_zone;
        self.route_geocast(q, &zone, stats, fault)
    }

    /// A probe for `q` over `zone` scatters like a geocast fan-out.
    pub fn probe_scatter(
        &mut self,
        q: QueryId,
        zone: &Circle,
        stats: &mut NetStats,
        fault: Option<&mut FaultyLink>,
    ) -> Vec<u32> {
        self.route_geocast(q, zone, stats, fault)
    }

    /// A covering shard returns its `count`-candidate partial answer for
    /// `q` to the home shard for the merge ([`ShardMsg::PartialAnswer`]).
    /// No-op when the replies already surfaced at the home shard.
    pub fn probe_gather(
        &mut self,
        q: QueryId,
        from_shard: u32,
        count: usize,
        stats: &mut NetStats,
        mut fault: Option<&mut FaultyLink>,
    ) {
        let home = self.effective(self.query_home(q));
        if from_shard != home {
            self.charge(
                ShardMsg::PartialAnswer { query: q, count },
                stats,
                &mut fault,
            );
            self.shards[from_shard as usize].load += 1;
            self.shards[home as usize].load += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::square(1000.0)
    }

    #[test]
    fn factorization_is_near_square() {
        let cases = [
            (1, (1, 1)),
            (2, (1, 2)),
            (4, (2, 2)),
            (6, (2, 3)),
            (7, (1, 7)),
            (8, (2, 4)),
            (12, (3, 4)),
            (16, (4, 4)),
        ];
        for (g, shape) in cases {
            let grid = ShardGrid::new(world(), g);
            assert_eq!(grid.shape(), shape, "G={g}");
            assert_eq!(grid.count(), g);
        }
        assert_eq!(ShardGrid::new(world(), 0).count(), 1, "0 clamps to 1");
    }

    #[test]
    fn shard_of_clamps_and_blocks_tile_the_world() {
        let grid = ShardGrid::new(world(), 8); // 2 rows × 4 cols
        assert_eq!(grid.shard_of(Point::new(-50.0, -50.0)), 0);
        assert_eq!(grid.shard_of(Point::new(2000.0, 2000.0)), 7);
        assert_eq!(grid.shard_of(Point::new(10.0, 10.0)), 0);
        assert_eq!(grid.shard_of(Point::new(990.0, 10.0)), 3);
        assert_eq!(grid.shard_of(Point::new(10.0, 990.0)), 4);
        // Every block center maps back to its own shard.
        for s in 0..grid.count() {
            assert_eq!(grid.shard_of(grid.rect_of(s).center()), s);
        }
    }

    #[test]
    fn overlapping_is_sorted_and_tight() {
        let grid = ShardGrid::new(world(), 4); // 2×2, blocks of 500
        let inside = Circle::new(Point::new(250.0, 250.0), 100.0);
        assert_eq!(grid.overlapping(&inside), vec![0]);
        let spanning = Circle::new(Point::new(500.0, 250.0), 60.0);
        assert_eq!(grid.overlapping(&spanning), vec![0, 1]);
        let everywhere = Circle::new(Point::new(500.0, 500.0), 800.0);
        assert_eq!(grid.overlapping(&everywhere), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_shard_never_charges_the_overlay() {
        let mut coord = ShardCoordinator::new(world(), 1);
        let mut stats = NetStats::default();
        coord.track_object(
            ObjectId(0),
            Point::new(10.0, 10.0),
            Vector::ZERO,
            &mut stats,
            None,
        );
        coord.track_object(
            ObjectId(0),
            Point::new(990.0, 990.0),
            Vector::ZERO,
            &mut stats,
            None,
        );
        coord.track_query(QueryId(0), Point::new(10.0, 10.0), 4, &mut stats, None);
        coord.track_query(QueryId(0), Point::new(990.0, 990.0), 4, &mut stats, None);
        coord.route_uplink(Some(QueryId(0)), Point::new(5.0, 5.0), 44, &mut stats, None);
        coord.route_unicast(QueryId(0), Point::new(900.0, 5.0), 52, &mut stats, None);
        let zone = Circle::new(Point::new(500.0, 500.0), 400.0);
        assert!(coord
            .route_geocast(QueryId(0), &zone, &mut stats, None)
            .is_empty());
        assert!(coord
            .route_broadcast(QueryId(0), &mut stats, None)
            .is_empty());
        coord.probe_gather(QueryId(0), 0, 5, &mut stats, None);
        assert!(stats.shard.is_empty());
        assert_eq!(coord.loads(), vec![4]); // uplink + unicast + geocast + broadcast
    }

    #[test]
    fn boundary_crossings_charge_handoff_and_migrate() {
        let mut coord = ShardCoordinator::new(world(), 4);
        let mut stats = NetStats::default();
        let left = Point::new(100.0, 100.0);
        let right = Point::new(900.0, 100.0);
        coord.track_object(ObjectId(7), left, Vector::ZERO, &mut stats, None);
        assert_eq!(
            stats.shard.handoff_msgs, 0,
            "first sighting is not a crossing"
        );
        coord.track_object(ObjectId(7), right, Vector::ZERO, &mut stats, None);
        assert_eq!(stats.shard.handoff_msgs, 1);
        assert_eq!(coord.shard(0).objects, 0);
        assert_eq!(coord.shard(1).objects, 1);

        coord.track_query(QueryId(3), left, 4, &mut stats, None);
        assert_eq!(coord.query_home(QueryId(3)), 0);
        coord.track_query(QueryId(3), right, 4, &mut stats, None);
        assert_eq!(stats.shard.migrate_msgs, 1);
        assert_eq!(coord.query_home(QueryId(3)), 1);
        assert_eq!(coord.loads(), vec![2, 2, 0, 0]);
    }

    #[test]
    fn routing_charges_only_cross_shard_legs() {
        let mut coord = ShardCoordinator::new(world(), 4); // 2×2
        let mut stats = NetStats::default();
        let home_pos = Point::new(100.0, 100.0); // shard 0
        coord.track_query(QueryId(0), home_pos, 4, &mut stats, None);

        // Uplink from the home block: no forward.
        coord.route_uplink(
            Some(QueryId(0)),
            Point::new(50.0, 50.0),
            44,
            &mut stats,
            None,
        );
        assert_eq!(stats.shard.forward_msgs, 0);
        // Uplink from a foreign block: forwarded.
        coord.route_uplink(
            Some(QueryId(0)),
            Point::new(900.0, 900.0),
            44,
            &mut stats,
            None,
        );
        assert_eq!(stats.shard.forward_msgs, 1);
        // Position reports carry no query: never forwarded.
        coord.route_uplink(None, Point::new(900.0, 900.0), 44, &mut stats, None);
        assert_eq!(stats.shard.forward_msgs, 1);

        // Unicast into a foreign block: forwarded.
        coord.route_unicast(QueryId(0), Point::new(900.0, 100.0), 52, &mut stats, None);
        assert_eq!(stats.shard.forward_msgs, 2);

        // Geocast zone covering shards 0 and 1: one fan-out leg.
        let zone = Circle::new(Point::new(500.0, 100.0), 80.0);
        assert_eq!(
            coord.route_geocast(QueryId(0), &zone, &mut stats, None),
            vec![1]
        );
        assert_eq!(stats.shard.fanout_msgs, 1);

        // Broadcast reaches all three foreign shards.
        assert_eq!(
            coord.route_broadcast(QueryId(0), &mut stats, None),
            vec![1, 2, 3]
        );
        assert_eq!(stats.shard.fanout_msgs, 4);

        // Partial answers: home replies are free, foreign ones are merged.
        coord.probe_gather(QueryId(0), 0, 9, &mut stats, None);
        assert_eq!(stats.shard.merge_msgs, 0);
        coord.probe_gather(QueryId(0), 3, 9, &mut stats, None);
        assert_eq!(stats.shard.merge_msgs, 1);
    }

    #[test]
    fn faulty_backbone_charges_retransmits_per_leg() {
        use mknn_net::FaultPlan;
        let mut coord = ShardCoordinator::new(world(), 4);
        let mut stats = NetStats::default();
        let plan = FaultPlan::builder().loss(1.0).build().unwrap();
        let mut link = FaultyLink::new(plan, 42);
        link.begin_tick(1, 0);
        coord.track_query(
            QueryId(0),
            Point::new(100.0, 100.0),
            4,
            &mut stats,
            Some(&mut link),
        );
        coord.route_broadcast(QueryId(0), &mut stats, Some(&mut link));
        assert_eq!(stats.shard.fanout_msgs, 3);
        assert_eq!(
            stats.shard.retransmits,
            3 * 8,
            "every leg hits the retry cap"
        );
    }
}
