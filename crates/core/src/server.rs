//! Server-side half of the DKNN protocols.
//!
//! The server holds *no* per-tick object positions. Per query it keeps only:
//! the current broadcast region version, the latest reported focal state,
//! and the member list established at the last refresh (augmented, in
//! ordered mode, with the response-band intervals). Everything else it
//! learns through the sparse event messages, and when an event invalidates
//! the answer it re-establishes it with an expanding probe.

use crate::{DknnParams, Mode, RegionVersion};
use mknn_geom::{Circle, ObjectId, Point, QueryId, Tick, Vector};
use mknn_net::{
    DownlinkMsg, MsgKind, ObjReport, OpCounters, Outbox, ProbeService, QuerySpec, Recipient,
    UplinkMsg, Uplinks,
};
use std::collections::BTreeMap;

/// One maintained member of a query answer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Member {
    pub id: ObjectId,
    /// Response-band interval `(inner, outer]` (ordered mode; in set mode
    /// the interval is unused bookkeeping from the last refresh).
    pub inner: f64,
    pub outer: f64,
    /// Last tick the server heard from (or successfully polled) this
    /// member. Lossy mode only: members silent past
    /// [`DknnParams::lease_ttl`] get a recovery poll, so a device whose
    /// `Leave` was lost — or that went offline entirely — cannot linger in
    /// the answer forever.
    pub heard: Tick,
}

/// Server state for one registered query.
#[derive(Debug)]
pub(crate) struct ServerQuery {
    pub spec: QuerySpec,
    pub ver: RegionVersion,
    /// Latest reported focal position/velocity.
    pub q_pos: Point,
    pub q_vel: Vector,
    /// Members ordered by band interval (ordered mode: this *is* the
    /// maintained neighbor order).
    pub members: Vec<Member>,
    /// Cached answer ids in member order.
    pub answer: Vec<ObjectId>,
    pub last_broadcast: Tick,
    pub needs_refresh: bool,
    band_events_tick: u32,
    /// Cumulative protocol health counters (used by tests and experiments).
    pub refreshes: u64,
    pub local_band_fixes: u64,
}

/// The server half of the protocol — one *partition* of the server tier.
///
/// Under a sharded deployment each shard runs its own `ServerHalf` holding
/// exactly the queries homed there (keyed by query id; the `BTreeMap`
/// iterates ascending, which at G=1 is the historical dense-`Vec` order, so
/// the single-shard byte trace is unchanged). Queries move between
/// partitions via [`Self::take_query`] / [`Self::insert_query`] when the
/// coordinator migrates them.
#[derive(Debug)]
pub struct ServerHalf {
    params: DknnParams,
    mode: Mode,
    pub(crate) queries: BTreeMap<u32, ServerQuery>,
    space_diag: f64,
    empty: Vec<ObjectId>,
    current_tick: Tick,
    /// Lossy-transport hardening switch: acks for critical events,
    /// idempotent duplicate handling, and member leases. Off by default so
    /// the perfect-link message trace stays byte-identical.
    lossy: bool,
}

impl ServerHalf {
    /// Creates the server half; queries are installed via [`Self::init`].
    pub fn new(params: DknnParams, mode: Mode) -> Self {
        ServerHalf {
            params,
            mode,
            queries: BTreeMap::new(),
            space_diag: 1.0,
            empty: Vec::new(),
            current_tick: 0,
            lossy: false,
        }
    }

    /// A fresh partition with this half's configuration (parameters, mode,
    /// world diagonal, lossy switch, clock) and no queries — the starting
    /// point for a sibling shard when the tier is split.
    pub fn fork_empty(&self) -> ServerHalf {
        ServerHalf {
            params: self.params,
            mode: self.mode,
            queries: BTreeMap::new(),
            space_diag: self.space_diag,
            empty: Vec::new(),
            current_tick: self.current_tick,
            lossy: self.lossy,
        }
    }

    /// Removes query `id`'s server state from this partition (a migrate leg
    /// shipping it to another shard).
    pub(crate) fn take_query(&mut self, id: u32) -> Option<ServerQuery> {
        self.queries.remove(&id)
    }

    /// Installs migrated server state for query `id` into this partition.
    pub(crate) fn insert_query(&mut self, id: u32, q: ServerQuery) {
        self.queries.insert(id, q);
    }

    /// Number of queries homed in this partition.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Enables (or disables) the lossy-transport recovery machinery. Call
    /// once, before [`Self::init`], when the episode runs over a faulty
    /// link.
    pub fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
    }

    /// Installs the queries from the registration snapshot (tick 0): the
    /// initial answers come from the registered positions — devices report
    /// their location when they register, so no probe is needed — and the
    /// initial regions and bands are broadcast.
    pub fn init(
        &mut self,
        bounds: mknn_geom::Rect,
        objects: &[mknn_mobility::MovingObject],
        queries: &[QuerySpec],
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.space_diag = bounds.min.dist(bounds.max);
        self.queries.clear();
        // One kd-tree over the registration snapshot answers every query's
        // initial selection in O(k log N), replacing the former per-query
        // full scan-and-sort (O(N·Q) across the batch). `establish` reads
        // only the k nearest non-focal reports plus the (k+1)-th for
        // threshold placement, so the over-fetch-and-filter list below is
        // behaviorally identical to the full sorted population.
        let tree = mknn_index::KdTree::build(objects.iter().map(|o| (o.id, o.pos)).collect());
        for (i, spec) in queries.iter().enumerate() {
            assert_eq!(spec.id.index(), i, "query ids must be dense and in order");
            let focal = &objects[spec.focal.index()];
            let mut reports: Vec<ObjReport> = tree
                .knn(focal.pos, spec.k.saturating_add(2))
                .into_iter()
                .filter(|n| n.id != spec.focal)
                .take(spec.k + 1)
                .map(|n| {
                    let o = &objects[n.id.index()];
                    debug_assert_eq!(o.id, n.id, "registration ids must be dense");
                    ObjReport {
                        id: o.id,
                        pos: o.pos,
                        vel: o.vel,
                    }
                })
                .collect();
            // The *modeled* registration cost is unchanged: the server still
            // ingests every device's registration and runs the selection
            // pass over it (`establish` charges its own input below) — only
            // the harness-side materialization got cheaper.
            let n_reg = (objects.len() as u64).saturating_sub(1);
            ops.server_ops += 2 * n_reg - reports.len() as u64;
            let mut q = ServerQuery {
                spec: *spec,
                ver: RegionVersion {
                    ver: 0,
                    center: focal.pos,
                    vel: focal.vel,
                    t: 0.0,
                },
                q_pos: focal.pos,
                q_vel: focal.vel,
                members: Vec::new(),
                answer: Vec::new(),
                last_broadcast: 0,
                needs_refresh: false,
                band_events_tick: 0,
                refreshes: 0,
                local_band_fixes: 0,
            };
            establish(
                &mut q,
                &mut reports,
                focal.pos,
                focal.vel,
                0,
                self.params,
                self.mode,
                outbox,
                ops,
            );
            self.queries.insert(spec.id.0, q);
        }
    }

    /// The maintained answer of `query` (member order).
    pub fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.queries
            .get(&query.0)
            .map_or(&self.empty, |q| q.answer.as_slice())
    }

    /// The effective query center the current answer refers to.
    pub fn effective_center(&self, query: QueryId) -> Option<Point> {
        self.queries
            .get(&query.0)
            .map(|q| q.ver.pred_center(self.current_tick))
    }

    /// Total refreshes across queries (experiments/diagnostics).
    pub fn total_refreshes(&self) -> u64 {
        self.queries.values().map(|q| q.refreshes).sum()
    }

    /// Total locally patched band events (ordered mode diagnostics).
    pub fn total_band_fixes(&self) -> u64 {
        self.queries.values().map(|q| q.local_band_fixes).sum()
    }

    /// Wipes the per-query state a crashed shard held (DESIGN.md §11): the
    /// member list, band intervals, and cached answer are gone, so the next
    /// server tick re-establishes each query with an expanding probe. The
    /// focal registry entry (`spec`, last reported position/velocity, region
    /// version counter) survives — it is re-announced by the device's
    /// per-tick focal report before the refresh pass runs, so keeping it
    /// models the coordinator's durable query registry without shortcutting
    /// the member-state rebuild the experiments measure.
    pub fn crash_queries(&mut self, queries: &[QueryId]) {
        for &id in queries {
            if let Some(q) = self.queries.get_mut(&id.0) {
                q.members.clear();
                q.answer.clear();
                q.needs_refresh = true;
            }
        }
    }

    /// One server tick: ingest events, patch or refresh answers, heartbeat.
    pub fn tick(
        &mut self,
        now: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.current_tick = now;
        for q in self.queries.values_mut() {
            q.band_events_tick = 0;
        }
        let mut heals: Vec<(ObjectId, QueryId)> = Vec::new();

        for (from, msg) in uplinks.iter() {
            match *msg {
                UplinkMsg::QueryMove { query, pos, vel } => {
                    if let Some(q) = self.queries.get_mut(&query.0) {
                        if q.spec.focal == from {
                            q.q_pos = pos;
                            q.q_vel = vel;
                        }
                    }
                }
                UplinkMsg::Enter { query, ver, .. } => {
                    let Some(q) = self.queries.get_mut(&query.0) else {
                        continue;
                    };
                    ops.server_ops += 1;
                    if ver != q.ver.ver {
                        heals.push((from, query));
                        continue;
                    }
                    if self.lossy {
                        // Stop the device's retransmission loop; the ack
                        // carries the version as an idempotence token.
                        outbox.send(
                            Recipient::One(from),
                            DownlinkMsg::Ack {
                                query,
                                ver,
                                kind: MsgKind::Enter,
                            },
                        );
                        if let Some(m) = q.members.iter_mut().find(|m| m.id == from) {
                            // Duplicate or re-announced Enter from a current
                            // member: idempotent — renew its lease, nothing
                            // about the answer changed.
                            m.heard = now;
                            continue;
                        }
                    }
                    // A device crossed into the region: it may now be among
                    // the k nearest — re-establish.
                    q.needs_refresh = true;
                }
                UplinkMsg::Leave { query, ver, .. } => {
                    let Some(q) = self.queries.get_mut(&query.0) else {
                        continue;
                    };
                    ops.server_ops += 1;
                    if ver != q.ver.ver {
                        heals.push((from, query));
                        continue;
                    }
                    if self.lossy {
                        outbox.send(
                            Recipient::One(from),
                            DownlinkMsg::Ack {
                                query,
                                ver,
                                kind: MsgKind::Leave,
                            },
                        );
                    }
                    if q.members.iter().any(|m| m.id == from) {
                        q.needs_refresh = true;
                    }
                    // A non-member inside the region (distance tie at the
                    // threshold) leaving is irrelevant to the answer.
                }
                UplinkMsg::BandCross {
                    query, ver, pos, ..
                } => {
                    let Some(qi) = self.queries.get_mut(&query.0) else {
                        continue;
                    };
                    if ver != qi.ver.ver {
                        heals.push((from, query));
                        continue;
                    }
                    if self.lossy {
                        // Any current-version event is evidence of life.
                        if let Some(m) = qi.members.iter_mut().find(|m| m.id == from) {
                            m.heard = now;
                        }
                    }
                    if self.mode != Mode::Ordered || qi.needs_refresh {
                        continue;
                    }
                    qi.band_events_tick += 1;
                    if qi.band_events_tick > self.params.band_escalation {
                        qi.needs_refresh = true;
                        continue;
                    }
                    handle_band_cross(qi, from, pos, now, probe, outbox, ops);
                }
                // Stray synchronous-channel replies / centralized reports:
                // not part of this protocol's mailbox traffic.
                UplinkMsg::ProbeReply { .. } | UplinkMsg::Position { .. } => {}
            }
        }

        // Lease pass (lossy mode): a member the server has not heard from
        // for longer than the lease is suspect — its Leave may have been
        // lost, or the device may be offline. One recovery poll per query
        // per tick (the stalest member) bounds the probe budget; a poll
        // that fails, or that finds the member out of region / out of
        // band, escalates to a refresh which rebuilds the answer from
        // devices that actually respond.
        if self.lossy {
            let ttl = self.params.lease_ttl();
            let mode = self.mode;
            for q in self.queries.values_mut() {
                if q.needs_refresh {
                    continue; // the refresh below re-leases every member
                }
                let Some(idx) = (0..q.members.len()).min_by_key(|&i| q.members[i].heard) else {
                    continue;
                };
                if now.saturating_sub(q.members[idx].heard) <= ttl {
                    continue;
                }
                ops.server_ops += 1;
                match probe.poll(q.spec.id, q.members[idx].id) {
                    None => q.needs_refresh = true,
                    Some(rep) => {
                        let d = rep.pos.dist(q.ver.pred_center(now));
                        let m = &mut q.members[idx];
                        let broken =
                            d > q.ver.t || (mode == Mode::Ordered && (d <= m.inner || d > m.outer));
                        if broken {
                            q.needs_refresh = true;
                        } else {
                            m.heard = now;
                        }
                    }
                }
            }
        }

        // Refresh / heartbeat pass.
        for q in self.queries.values_mut() {
            ops.server_ops += 1;
            let drift = q.q_pos.dist(q.ver.pred_center(now));
            if drift > self.params.query_drift {
                q.needs_refresh = true;
            }
            if q.needs_refresh {
                refresh(
                    q,
                    now,
                    drift,
                    self.space_diag,
                    self.params,
                    self.mode,
                    probe,
                    outbox,
                    ops,
                );
            } else if now.saturating_sub(q.last_broadcast) >= self.params.heartbeat {
                // Heartbeat: re-send the *identical* version; only the
                // geocast zone is re-centered on the predicted position.
                let zone = Circle::new(q.ver.pred_center(now), q.ver.t + self.params.margin());
                outbox.send(
                    Recipient::Geocast(zone),
                    DownlinkMsg::InstallRegion {
                        query: q.spec.id,
                        ver: q.ver.ver,
                        center: q.ver.center,
                        vel: q.ver.vel,
                        r_out: q.ver.t,
                    },
                );
                q.last_broadcast = now;
            }
        }

        // Heal devices that evaluated a stale version.
        for (id, query) in heals {
            let q = &self.queries[&query.0];
            outbox.send(
                Recipient::One(id),
                DownlinkMsg::InstallRegion {
                    query,
                    ver: q.ver.ver,
                    center: q.ver.center,
                    vel: q.ver.vel,
                    r_out: q.ver.t,
                },
            );
        }
    }
}

/// Full refresh: expanding probe, re-selection, new version broadcast.
#[allow(clippy::too_many_arguments)]
fn refresh(
    q: &mut ServerQuery,
    now: Tick,
    drift: f64,
    space_diag: f64,
    params: DknnParams,
    mode: Mode,
    probe: &mut dyn ProbeService,
    outbox: &mut Outbox,
    ops: &mut OpCounters,
) {
    let c = q.q_pos;
    let vel = q.q_vel;
    let k = q.spec.k;
    let slack = 2.0 * (params.v_max_obj + params.v_max_q);
    let mut r = (q.ver.t + drift + slack).clamp(slack.max(1.0), space_diag);
    let mut reports = loop {
        let reports = probe.probe(q.spec.id, Circle::new(c, r), q.spec.focal);
        ops.server_ops += reports.len() as u64 + 1;
        if reports.len() > k || r >= space_diag {
            break reports;
        }
        r = (r * params.expand_factor).min(space_diag);
    };
    establish(q, &mut reports, c, vel, now, params, mode, outbox, ops);
    q.refreshes += 1;
}

/// Shared by `init` and `refresh`: selects the k nearest reports, places the
/// threshold, broadcasts the region, assigns bands.
#[allow(clippy::too_many_arguments)]
pub(crate) fn establish(
    q: &mut ServerQuery,
    reports: &mut [ObjReport],
    c: Point,
    vel: Vector,
    now: Tick,
    params: DknnParams,
    mode: Mode,
    outbox: &mut Outbox,
    ops: &mut OpCounters,
) {
    let k = q.spec.k;
    ops.server_ops += reports.len() as u64;
    reports.sort_unstable_by(|a, b| {
        let da = a.pos.dist_sq(c);
        let db = b.pos.dist_sq(c);
        // total_cmp: report positions come off the wire, so a NaN (however
        // unlikely) must order deterministically rather than panic mid-sort.
        da.total_cmp(&db).then(a.id.cmp(&b.id))
    });
    let kept = reports.len().min(k);
    let dists: Vec<f64> = reports[..kept].iter().map(|r| r.pos.dist(c)).collect();
    let d_k = dists.last().copied().unwrap_or(0.0);
    let t = match reports.get(k) {
        Some(next) => {
            let d_k1 = next.pos.dist(c);
            d_k + params.alpha * (d_k1 - d_k)
        }
        // Fewer than k+1 devices exist: any threshold beyond d_k is sound.
        None => d_k + (0.1 * d_k).max(1.0),
    };
    q.ver = RegionVersion {
        ver: now,
        center: c,
        vel,
        t,
    };
    q.last_broadcast = now;
    q.needs_refresh = false;
    outbox.send(
        Recipient::Geocast(Circle::new(c, t + params.margin())),
        DownlinkMsg::InstallRegion {
            query: q.spec.id,
            ver: now,
            center: c,
            vel,
            r_out: t,
        },
    );
    // Band intervals partition (0, t]: boundaries at midpoints between
    // consecutive member distances.
    q.members.clear();
    for i in 0..kept {
        let inner = if i == 0 {
            0.0
        } else {
            (dists[i - 1] + dists[i]) * 0.5
        };
        let outer = if i + 1 == kept {
            t
        } else {
            (dists[i] + dists[i + 1]) * 0.5
        };
        q.members.push(Member {
            id: reports[i].id,
            inner,
            outer,
            heard: now,
        });
        if mode == Mode::Ordered {
            outbox.send(
                Recipient::One(reports[i].id),
                DownlinkMsg::SetBand {
                    query: q.spec.id,
                    ver: now,
                    inner,
                    outer,
                },
            );
        }
    }
    q.answer = q.members.iter().map(|m| m.id).collect();
}

/// Ordered-mode local patch: one member moved out of its band; restore a
/// total order with at most one poll and two band installs.
fn handle_band_cross(
    q: &mut ServerQuery,
    from: ObjectId,
    pos: Point,
    now: Tick,
    probe: &mut dyn ProbeService,
    outbox: &mut Outbox,
    ops: &mut OpCounters,
) {
    ops.server_ops += 1;
    let center = q.ver.pred_center(now);
    let d_i = pos.dist(center);
    if d_i > q.ver.t {
        // Actually left the region (the Leave may be in the same batch).
        q.needs_refresh = true;
        return;
    }
    let Some(idx) = q.members.iter().position(|m| m.id == from) else {
        // Band event from a non-member: stale state on the device; heal.
        outbox.send(
            Recipient::One(from),
            DownlinkMsg::InstallRegion {
                query: q.spec.id,
                ver: q.ver.ver,
                center: q.ver.center,
                vel: q.ver.vel,
                r_out: q.ver.t,
            },
        );
        return;
    };
    let me = q.members.remove(idx);
    // Where did it land?
    match q
        .members
        .iter()
        .position(|m| d_i > m.inner && d_i <= m.outer)
    {
        None => {
            // A hole left by an earlier departure: claim it.
            let at = q
                .members
                .iter()
                .position(|m| m.inner >= d_i)
                .unwrap_or(q.members.len());
            let inner = if at == 0 {
                0.0
            } else {
                q.members[at - 1].outer
            };
            let outer = if at == q.members.len() {
                q.ver.t
            } else {
                q.members[at].inner
            };
            q.members.insert(
                at,
                Member {
                    id: me.id,
                    inner,
                    outer,
                    heard: now,
                },
            );
            outbox.send(
                Recipient::One(me.id),
                DownlinkMsg::SetBand {
                    query: q.spec.id,
                    ver: q.ver.ver,
                    inner,
                    outer,
                },
            );
            q.local_band_fixes += 1;
        }
        Some(j) => {
            // Shares a band with member j: one poll disambiguates the pair.
            let owner = q.members[j];
            let Some(rep) = probe.poll(q.spec.id, owner.id) else {
                q.needs_refresh = true;
                q.members.insert(idx.min(q.members.len()), me);
                return;
            };
            ops.server_ops += 1;
            let d_j = rep.pos.dist(center);
            if d_j <= owner.inner || d_j > owner.outer {
                // The polled owner has itself drifted out of its band this
                // tick (its own crossing event is elsewhere in the batch):
                // a midpoint of stale intervals could corrupt the order, so
                // fall back to a full refresh.
                q.needs_refresh = true;
                q.members.insert(idx.min(q.members.len()), me);
                return;
            }
            if (d_i - d_j).abs() < 1e-9 {
                // Distance tie: no band boundary can separate them.
                q.needs_refresh = true;
                q.members.insert(idx.min(q.members.len()), me);
                return;
            }
            let mid = (d_i + d_j) * 0.5;
            let (lo_id, hi_id) = if d_i < d_j {
                (me.id, owner.id)
            } else {
                (owner.id, me.id)
            };
            // Both devices were heard from this tick: the crosser sent the
            // event, the owner answered the poll.
            let lo = Member {
                id: lo_id,
                inner: owner.inner,
                outer: mid,
                heard: now,
            };
            let hi = Member {
                id: hi_id,
                inner: mid,
                outer: owner.outer,
                heard: now,
            };
            q.members[j] = lo;
            q.members.insert(j + 1, hi);
            for m in [lo, hi] {
                outbox.send(
                    Recipient::One(m.id),
                    DownlinkMsg::SetBand {
                        query: q.spec.id,
                        ver: q.ver.ver,
                        inner: m.inner,
                        outer: m.outer,
                    },
                );
            }
            q.local_band_fixes += 1;
        }
    }
    q.answer = q.members.iter().map(|m| m.id).collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::Rect;
    use mknn_mobility::MovingObject;

    /// A probe service over a fixed position table.
    struct TableProbe {
        positions: Vec<Point>,
    }

    impl ProbeService for TableProbe {
        fn probe(&mut self, _q: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport> {
            self.positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| ObjectId(i as u32) != exclude && zone.contains(*p))
                .map(|(i, p)| ObjReport {
                    id: ObjectId(i as u32),
                    pos: *p,
                    vel: Vector::ZERO,
                })
                .collect()
        }

        fn poll(&mut self, _q: QueryId, id: ObjectId) -> Option<ObjReport> {
            self.positions.get(id.index()).map(|p| ObjReport {
                id,
                pos: *p,
                vel: Vector::ZERO,
            })
        }
    }

    fn world() -> Vec<MovingObject> {
        // Focal (id 0) at origin; objects on the x axis at 10, 20, …, 90.
        let mut v = vec![MovingObject::at(ObjectId(0), Point::ORIGIN, 20.0)];
        for i in 1..10u32 {
            v.push(MovingObject::at(
                ObjectId(i),
                Point::new(i as f64 * 10.0, 0.0),
                20.0,
            ));
        }
        v
    }

    fn setup(k: usize, mode: Mode) -> (ServerHalf, Outbox, OpCounters) {
        let mut s = ServerHalf::new(DknnParams::default(), mode);
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k,
        }];
        s.init(
            Rect::square(10_000.0),
            &world(),
            &queries,
            &mut outbox,
            &mut ops,
        );
        (s, outbox, ops)
    }

    #[test]
    fn init_establishes_knn_and_threshold() {
        let (s, outbox, _) = setup(3, Mode::Set);
        assert_eq!(
            s.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        let q = &s.queries[&0];
        // d_3 = 30, d_4 = 40 → midpoint threshold 35.
        assert!((q.ver.t - 35.0).abs() < 1e-9);
        // One geocast install, no bands in set mode.
        let kinds: Vec<_> = outbox.iter().map(|(_, m)| m.kind()).collect();
        assert_eq!(kinds, vec![mknn_net::MsgKind::InstallRegion]);
    }

    #[test]
    fn init_ordered_mode_assigns_bands() {
        let (s, outbox, _) = setup(3, Mode::Ordered);
        let bands: Vec<_> = outbox
            .iter()
            .filter_map(|(r, m)| match (r, m) {
                (Recipient::One(id), DownlinkMsg::SetBand { inner, outer, .. }) => {
                    Some((id.0, *inner, *outer))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            bands,
            vec![(1, 0.0, 15.0), (2, 15.0, 25.0), (3, 25.0, 35.0)]
        );
        assert_eq!(s.answer(QueryId(0)).len(), 3);
    }

    #[test]
    fn member_leave_triggers_refresh() {
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        let mut probe = TableProbe {
            // Object 1 fled to x = 500; the rest as registered.
            positions: std::iter::once(Point::ORIGIN)
                .chain((1..10).map(|i| {
                    if i == 1 {
                        Point::new(500.0, 0.0)
                    } else {
                        Point::new(i as f64 * 10.0, 0.0)
                    }
                }))
                .collect(),
        };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(1),
            UplinkMsg::Leave {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(40.0, 0.0),
            },
        );
        let mut outbox = Outbox::new();
        s.tick(5, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(
            s.answer(QueryId(0)),
            &[ObjectId(2), ObjectId(3), ObjectId(4)]
        );
        assert_eq!(s.total_refreshes(), 1);
        // A new install must have been broadcast under version 5.
        assert!(outbox
            .iter()
            .any(|(_, m)| matches!(m, DownlinkMsg::InstallRegion { ver: 5, .. })));
    }

    #[test]
    fn enter_triggers_refresh_and_admits_newcomer() {
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        let mut positions: Vec<Point> = world().iter().map(|o| o.pos).collect();
        positions.push(Point::new(5.0, 0.0)); // new closest object, id 10
        let mut probe = TableProbe { positions };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(10),
            UplinkMsg::Enter {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(5.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        let mut outbox = Outbox::new();
        s.tick(3, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(
            s.answer(QueryId(0)),
            &[ObjectId(10), ObjectId(1), ObjectId(2)]
        );
    }

    #[test]
    fn stale_version_event_is_healed_not_refreshed() {
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(7),
            UplinkMsg::Leave {
                query: QueryId(0),
                ver: 99,
                pos: Point::ORIGIN,
            },
        );
        let mut outbox = Outbox::new();
        s.tick(4, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(s.total_refreshes(), 0);
        let heals: Vec<_> = outbox
            .iter()
            .filter(|(r, m)| {
                matches!(r, Recipient::One(ObjectId(7)))
                    && matches!(m, DownlinkMsg::InstallRegion { ver: 0, .. })
            })
            .collect();
        assert_eq!(heals.len(), 1);
    }

    #[test]
    fn query_drift_forces_recenter() {
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        let mut up = Uplinks::new();
        // Focal reports a big jump (beyond query_drift = 40).
        up.send(
            ObjectId(0),
            UplinkMsg::QueryMove {
                query: QueryId(0),
                pos: Point::new(85.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        let mut outbox = Outbox::new();
        s.tick(2, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(s.total_refreshes(), 1);
        // New nearest from x = 85: objects at 80, 90, 70.
        assert_eq!(
            s.answer(QueryId(0)),
            &[ObjectId(8), ObjectId(9), ObjectId(7)]
        );
        assert_eq!(s.effective_center(QueryId(0)), Some(Point::new(85.0, 0.0)));
    }

    #[test]
    fn heartbeat_rebroadcasts_same_version() {
        let p = DknnParams::default();
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        let up = Uplinks::new();
        let mut saw_heartbeat = false;
        for now in 1..=(p.heartbeat + 1) {
            let mut outbox = Outbox::new();
            s.tick(now, &up, &mut probe, &mut outbox, &mut ops);
            for (r, m) in outbox.iter() {
                if let DownlinkMsg::InstallRegion { ver, .. } = m {
                    assert_eq!(*ver, 0, "heartbeat must not mint a new version");
                    assert!(matches!(r, Recipient::Geocast(_)));
                    saw_heartbeat = true;
                }
            }
        }
        assert!(saw_heartbeat);
        assert_eq!(s.total_refreshes(), 0);
    }

    #[test]
    fn band_cross_is_patched_locally() {
        let (mut s, _, mut ops) = setup(3, Mode::Ordered);
        // Member 3 (band (25, 35]) moved to x = 12 — into member 1's band
        // (0, 15]. Member 1 polls at its registered x = 10.
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(3),
            UplinkMsg::BandCross {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(12.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        let mut outbox = Outbox::new();
        s.tick(2, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(s.total_refreshes(), 0, "local patch expected");
        assert_eq!(s.total_band_fixes(), 1);
        // New order: 1 (d=10), 3 (d=12), 2 (d=20).
        assert_eq!(
            s.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(3), ObjectId(2)]
        );
        // Both affected devices got fresh bands.
        let band_targets: Vec<u32> = outbox
            .iter()
            .filter_map(|(r, m)| match (r, m) {
                (Recipient::One(id), DownlinkMsg::SetBand { .. }) => Some(id.0),
                _ => None,
            })
            .collect();
        assert_eq!(band_targets, vec![1, 3]);
    }

    #[test]
    fn band_cross_out_of_region_escalates() {
        let (mut s, _, mut ops) = setup(3, Mode::Ordered);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(3),
            UplinkMsg::BandCross {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(400.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        let mut outbox = Outbox::new();
        s.tick(2, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(s.total_refreshes(), 1);
    }

    #[test]
    fn k_larger_than_population() {
        let (s, _, _) = setup(20, Mode::Set);
        // Only 9 non-focal objects exist.
        assert_eq!(s.answer(QueryId(0)).len(), 9);
    }

    #[test]
    fn lossy_duplicate_enter_from_member_is_acked_not_refreshed() {
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        s.set_lossy(true);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        // Member 1 re-announces itself (a retransmission the original of
        // which the server already processed at init).
        let mut up = Uplinks::new();
        up.send(
            ObjectId(1),
            UplinkMsg::Enter {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(10.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        let mut outbox = Outbox::new();
        s.tick(1, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(s.total_refreshes(), 0, "duplicate must be idempotent");
        let acks: Vec<_> = outbox
            .iter()
            .filter(|(r, m)| {
                matches!(r, Recipient::One(ObjectId(1)))
                    && matches!(
                        m,
                        DownlinkMsg::Ack {
                            kind: MsgKind::Enter,
                            ver: 0,
                            ..
                        }
                    )
            })
            .collect();
        assert_eq!(acks.len(), 1, "the retransmission loop needs its ack");
        assert_eq!(s.queries[&0].members[0].heard, 1, "lease renewed");
    }

    #[test]
    fn lossy_lease_polls_silent_member_and_recovers_a_lost_leave() {
        let p = DknnParams::default();
        let (mut s, _, mut ops) = setup(3, Mode::Set);
        s.set_lossy(true);
        // Member 1 fled to x = 500 but its Leave never arrived (and the
        // device stays unreachable for events). The lease must notice.
        let mut probe = TableProbe {
            positions: std::iter::once(Point::ORIGIN)
                .chain((1..10).map(|i| {
                    if i == 1 {
                        Point::new(500.0, 0.0)
                    } else {
                        Point::new(i as f64 * 10.0, 0.0)
                    }
                }))
                .collect(),
        };
        let up = Uplinks::new();
        for now in 1..=(p.lease_ttl() + 1) {
            let mut outbox = Outbox::new();
            s.tick(now, &up, &mut probe, &mut outbox, &mut ops);
        }
        assert_eq!(s.total_refreshes(), 1, "one lease-triggered refresh");
        assert_eq!(
            s.answer(QueryId(0)),
            &[ObjectId(2), ObjectId(3), ObjectId(4)]
        );
    }
}
