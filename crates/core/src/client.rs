//! Device-side (client) half of the DKNN protocols.
//!
//! Every device runs the same small state machine per installed monitoring
//! region, driven exclusively by its own position and the downlinks it has
//! heard. It stays silent unless one of three things happens:
//!
//! 1. it crosses a region boundary (→ `Enter` / `Leave`),
//! 2. it violates its assigned response band (ordered mode, → `BandCross`),
//! 3. it is a query's focal object and it moved (→ `QueryMove`).
//!
//! In **lossy mode** (see [`mknn_net::Protocol::set_lossy`]) the client
//! additionally runs recovery machinery for unreliable transports:
//! critical events (`Enter`/`Leave`) are retransmitted with doubling
//! backoff until the server acks them, freshly adopted regions announce
//! the device's side so a membership lost to the network is re-declared,
//! a device returning from an offline gap invalidates its cached
//! crossing state, and the focal object reports its position every tick.
//! All of it is off by default: on a perfect link the traffic is
//! byte-identical to the unhardened protocol.

use crate::{DknnParams, RegionVersion};
use mknn_geom::{LinearMotion, Point, QueryId, ThresholdCrossing, Tick, Vector};
use mknn_mobility::MovingObject;
use mknn_net::{DownlinkMsg, MsgKind, OpCounters, UplinkMsg, Uplinks};

/// Resend timer start: one round trip is two ticks (uplink consumed this
/// tick, ack routed at tick end, read next tick).
const RESEND_AFTER: Tick = 2;
/// Backoff cap in ticks: keeps worst-case repair latency bounded while a
/// persistently unlucky event stops hammering the uplink.
const RESEND_CAP: Tick = 8;

/// A critical event awaiting its server ack (lossy mode only).
#[derive(Debug, Clone, Copy)]
struct PendingEvent {
    query: QueryId,
    /// [`MsgKind::Enter`] or [`MsgKind::Leave`].
    kind: MsgKind,
    next_resend: Tick,
    backoff: Tick,
}

/// One monitored region as a device sees it.
#[derive(Debug, Clone, Copy)]
struct ClientRegion {
    query: QueryId,
    ver: RegionVersion,
    /// Last tick any install/heartbeat for this region was heard; drives
    /// eviction.
    last_heard: Tick,
    /// Which side of the boundary the device was on at the last evaluation.
    /// `None` right after adopting a version: the first evaluation derives
    /// the previous side from the device's previous position so that a
    /// crossing during the adoption tick is still reported.
    inside: Option<bool>,
    /// Assigned response band (ordered mode): stay silent while the
    /// distance to the predicted center lies in `(inner, outer]`.
    band: Option<(f64, f64)>,
    /// Safe period: geometric checks are provably event-free for ticks
    /// strictly before this, *as long as the device's own velocity stays
    /// equal to [`ClientRegion::safe_vel`]* (both trajectories are then
    /// linear, so the first possible crossing time is known in closed
    /// form). Reset on any install or band change.
    safe_until: Tick,
    /// Own velocity when the safe period was computed.
    safe_vel: Vector,
    /// Lossy mode: declare the device's side at the next evaluation even
    /// without a crossing. Set on fresh adoption (and offline-gap resync):
    /// if the device is already *inside* a region it just (re)learned
    /// about, the server may have lost the original `Enter`, so it is sent
    /// again — the server treats member re-`Enter`s idempotently.
    announce: bool,
}

/// Per-device protocol state.
#[derive(Debug, Clone, Default)]
pub struct ClientState {
    regions: Vec<ClientRegion>,
    /// Queries this device is the focal object of (it reports its movement
    /// for them and ignores their region installs).
    focal_of: Vec<QueryId>,
    /// Critical events not yet acked by the server (lossy mode only; empty
    /// otherwise).
    pending: Vec<PendingEvent>,
    /// Last tick this device ran. A gap bigger than one tick means the
    /// device was offline; its cached crossing state is then suspect.
    last_seen: Tick,
}

/// The client half: per-device states plus the shared static parameters.
#[derive(Debug)]
pub struct ClientHalf {
    params: DknnParams,
    states: Vec<ClientState>,
    lossy: bool,
}

impl ClientHalf {
    /// Creates client state for `n` devices.
    pub fn new(params: DknnParams, n: usize) -> Self {
        ClientHalf {
            params,
            states: vec![ClientState::default(); n],
            lossy: false,
        }
    }

    /// Switches the recovery machinery (retransmits, announcements, gap
    /// resync, per-tick focal reports) on or off.
    pub fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
    }

    /// Registers `device` as the focal object of `query` (done at query
    /// registration time, before the first tick).
    pub fn set_focal(&mut self, device: usize, query: QueryId) {
        self.states[device].focal_of.push(query);
    }

    /// Number of regions device `idx` currently has installed (diagnostics
    /// and tests).
    pub fn installed_regions(&self, idx: usize) -> usize {
        self.states[idx].regions.len()
    }

    /// Runs one device's tick: ingest downlinks, do focal duties, evaluate
    /// regions and bands, emit uplinks.
    pub fn tick(
        &mut self,
        now: Tick,
        me: &MovingObject,
        inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        tick_device(
            &self.params,
            self.lossy,
            &mut self.states[me.id.index()],
            now,
            me,
            inbox,
            up,
            ops,
        );
    }

    /// Runs the whole population's client ticks for one engine tick,
    /// chunked over `ctx.pool` when the world is big enough to pay for it.
    ///
    /// Per-device work touches only that device's [`ClientState`], so
    /// chunks of the state array are independent; each chunk accumulates
    /// its own [`Uplinks`] and [`OpCounters`] and the chunks merge in
    /// chunk (= device id) order. The merged uplink stream is therefore
    /// byte-identical to the sequential loop at any `MKNN_THREADS` or
    /// chunk size, and the counters are sums of the same integers.
    /// Populations below [`mknn_net::PAR_MIN_DEVICES`] (or a one-thread
    /// pool) take the sequential path outright.
    pub fn tick_batch(
        &mut self,
        ctx: &mknn_net::ClientCtx,
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        let n = ctx.len();
        debug_assert_eq!(self.states.len(), n, "one ClientState per device");
        if ctx.pool.threads() <= 1 || n < mknn_net::PAR_MIN_DEVICES {
            for (i, st) in self.states.iter_mut().enumerate() {
                if ctx.is_offline(i) {
                    continue;
                }
                let me = ctx.object(i);
                tick_device(
                    &self.params,
                    self.lossy,
                    st,
                    ctx.tick,
                    &me,
                    &ctx.inboxes[i],
                    up,
                    ops,
                );
            }
            return;
        }
        let params = self.params;
        let lossy = self.lossy;
        let chunk = ctx.pool.chunk_size(n);
        let parts = ctx
            .pool
            .map_chunks_mut(&mut self.states, chunk, |base, states| {
                let mut up_c = Uplinks::new();
                let mut ops_c = OpCounters::default();
                for (j, st) in states.iter_mut().enumerate() {
                    let i = base + j;
                    if ctx.is_offline(i) {
                        continue;
                    }
                    let me = ctx.object(i);
                    tick_device(
                        &params,
                        lossy,
                        st,
                        ctx.tick,
                        &me,
                        &ctx.inboxes[i],
                        &mut up_c,
                        &mut ops_c,
                    );
                }
                (up_c, ops_c)
            });
        for (mut up_c, ops_c) in parts {
            up.append(&mut up_c);
            *ops += ops_c;
        }
    }
}

/// One device's tick body, shared by [`ClientHalf::tick`] (single device)
/// and [`ClientHalf::tick_batch`] (whole population, possibly chunked
/// across threads). It reads only the device's own ground truth, its own
/// [`ClientState`], and its inbox, which is what makes the batch version's
/// per-chunk independence sound.
#[allow(clippy::too_many_arguments)]
fn tick_device(
    params: &DknnParams,
    lossy: bool,
    st: &mut ClientState,
    now: Tick,
    me: &MovingObject,
    inbox: &[DownlinkMsg],
    up: &mut Uplinks,
    ops: &mut OpCounters,
) {
    let prev_pos = me.pos - me.vel;

    // 0. Offline-gap resync (lossy mode): if this device skipped ticks,
    //    every cached conclusion — which side of each boundary it was
    //    on, its bands, its safe periods — may describe a world that
    //    moved on without it. Invalidate them and re-declare each
    //    region's side, so crossings that happened during the outage
    //    (or whose reports died with it) are re-derived rather than
    //    silently missed. Stale in-flight retransmissions are dropped
    //    too: the announcement subsumes them.
    if lossy && st.last_seen > 0 && now > st.last_seen + 1 {
        for r in &mut st.regions {
            r.inside = None;
            r.band = None;
            r.safe_until = 0;
            r.announce = true;
        }
        st.pending.clear();
    }
    st.last_seen = now;

    // 1. Ingest downlinks, in arrival order (installs precede the bands
    //    issued under them).
    for msg in inbox {
        match *msg {
            DownlinkMsg::InstallRegion {
                query,
                ver,
                center,
                vel,
                r_out,
            } => {
                if st.focal_of.contains(&query) {
                    continue; // my own query; I am excluded from it
                }
                let fresh = RegionVersion {
                    ver,
                    center,
                    vel,
                    t: r_out,
                };
                match st.regions.iter_mut().find(|r| r.query == query) {
                    Some(r) if r.ver.ver == ver => r.last_heard = now, // heartbeat
                    Some(r) if r.ver.ver > ver => {}                   // out-of-date copy; ignore
                    Some(r) => {
                        *r = ClientRegion {
                            query,
                            ver: fresh,
                            last_heard: now,
                            inside: None,
                            band: None,
                            safe_until: 0,
                            safe_vel: Vector::ZERO,
                            // A newer version means the server just
                            // re-established membership from a full
                            // probe snapshot: nothing to announce, and
                            // retransmissions of events issued under
                            // the old version are obsolete.
                            announce: false,
                        };
                        st.pending.retain(|p| p.query != query);
                    }
                    None => st.regions.push(ClientRegion {
                        query,
                        ver: fresh,
                        last_heard: now,
                        inside: None,
                        band: None,
                        safe_until: 0,
                        safe_vel: Vector::ZERO,
                        // Fresh adoption (first install, or reinstall
                        // after eviction/offline): if already inside,
                        // the server may never have heard the Enter.
                        announce: lossy,
                    }),
                }
            }
            DownlinkMsg::RemoveRegion { query } => {
                st.regions.retain(|r| r.query != query);
                st.pending.retain(|p| p.query != query);
            }
            DownlinkMsg::SetBand {
                query,
                ver,
                inner,
                outer,
            } => {
                if let Some(r) = st
                    .regions
                    .iter_mut()
                    .find(|r| r.query == query && r.ver.ver == ver)
                {
                    r.band = Some((inner, outer));
                    r.safe_until = 0;
                }
            }
            DownlinkMsg::ClearBand { query } => {
                if let Some(r) = st.regions.iter_mut().find(|r| r.query == query) {
                    r.band = None;
                    r.safe_until = 0;
                }
            }
            // Probes are answered synchronously by the harness's
            // ProbeService, never via the mailbox.
            DownlinkMsg::Probe { .. } => {}
            DownlinkMsg::Ack { query, kind, .. } => {
                // The server heard the event: stop retransmitting it.
                // (Matching on query + kind suffices: at most one
                // critical event per query is ever pending, and a
                // version change drops the pending entry anyway.)
                st.pending.retain(|p| !(p.query == query && p.kind == kind));
            }
        }
    }

    // 2. Focal duties: keep the server's knowledge of the query point
    //    current (one small message per tick the focal actually moved).
    //    In lossy mode the report goes out every tick, moving or not:
    //    each lost copy then ages the server's focal estimate by one
    //    tick at most, instead of indefinitely when the single "I
    //    stopped here" report dies in flight.
    for &q in &st.focal_of {
        if lossy || me.vel != mknn_geom::Vector::ZERO {
            up.send(
                me.id,
                UplinkMsg::QueryMove {
                    query: q,
                    pos: me.pos,
                    vel: me.vel,
                },
            );
        }
    }

    // 3. Evaluate every installed region.
    let evict_after = params.evict_after();
    // Critical events emitted this tick; registered for retransmission
    // after the loop (the region borrow blocks touching `pending` here).
    let mut critical: Vec<(QueryId, MsgKind)> = Vec::new();
    st.regions.retain_mut(|r| {
        if now.saturating_sub(r.last_heard) > evict_after {
            return false; // long unheard-of: provably far away, drop it
        }
        // Safe-period fast path: while both trajectories stay linear
        // (the device's own velocity unchanged; the region center is
        // linear by construction), the first possible boundary or band
        // crossing time was computed in closed form — whole ticks of
        // geometry can be skipped without any risk of a missed event.
        if now < r.safe_until && me.vel == r.safe_vel {
            return true;
        }
        ops.client_ops += 1;
        let center_now = r.ver.pred_center(now);
        let d_sq = me.pos.dist_sq(center_now);
        let inside_now = d_sq <= r.ver.t * r.ver.t;
        let was_inside = match r.inside {
            Some(w) => w,
            None => {
                // First evaluation after adopting this version: derive
                // the previous side from where the device was one tick
                // ago, so the adoption-lag tick cannot hide a crossing.
                ops.client_ops += 1;
                let center_prev = r.ver.pred_center(now.saturating_sub(1));
                prev_pos.dist_sq(center_prev) <= r.ver.t * r.ver.t
            }
        };
        if inside_now != was_inside {
            if inside_now {
                up.send(
                    me.id,
                    UplinkMsg::Enter {
                        query: r.query,
                        ver: r.ver.ver,
                        pos: me.pos,
                        vel: me.vel,
                    },
                );
                if lossy {
                    critical.push((r.query, MsgKind::Enter));
                }
            } else {
                up.send(
                    me.id,
                    UplinkMsg::Leave {
                        query: r.query,
                        ver: r.ver.ver,
                        pos: me.pos,
                    },
                );
                r.band = None;
                if lossy {
                    critical.push((r.query, MsgKind::Leave));
                }
            }
        } else if inside_now && r.announce {
            // Lossy-mode announcement: no crossing happened, but the
            // device is inside a region it just adopted (or resynced
            // after an outage) — make sure the server knows.
            up.send(
                me.id,
                UplinkMsg::Enter {
                    query: r.query,
                    ver: r.ver.ver,
                    pos: me.pos,
                    vel: me.vel,
                },
            );
            critical.push((r.query, MsgKind::Enter));
        } else if inside_now {
            if let Some((inner, outer)) = r.band {
                let d = d_sq.sqrt();
                if !(d > inner && d <= outer) {
                    up.send(
                        me.id,
                        UplinkMsg::BandCross {
                            query: r.query,
                            ver: r.ver.ver,
                            pos: me.pos,
                            vel: me.vel,
                        },
                    );
                    r.band = None; // a new band will be assigned
                }
            }
        }
        r.announce = false;
        r.inside = Some(inside_now);
        // Recompute the safe period from the post-event state: the
        // earliest future time any monitored boundary can be reached.
        ops.client_ops += 1;
        let own = LinearMotion::new(me.pos, me.vel);
        let center = LinearMotion::new(r.ver.pred_center(now), r.ver.vel);
        let mut horizon = if inside_now {
            crossing_ticks(own.first_time_beyond(&center, r.ver.t))
        } else {
            crossing_ticks(own.first_time_within(&center, r.ver.t))
        };
        if inside_now {
            if let Some((inner, outer)) = r.band {
                horizon = horizon
                    .min(crossing_ticks(own.first_time_within(&center, inner)))
                    .min(crossing_ticks(own.first_time_beyond(&center, outer)));
            }
        }
        r.safe_vel = me.vel;
        r.safe_until = now.saturating_add(horizon);
        true
    });

    if lossy {
        // 4. Register this tick's critical events for retransmission. A
        //    new event replaces whatever was pending for the query: the
        //    newer crossing supersedes the older one (the server only
        //    needs the device's latest side).
        for (query, kind) in critical {
            st.pending.retain(|p| p.query != query);
            st.pending.push(PendingEvent {
                query,
                kind,
                next_resend: now + RESEND_AFTER,
                backoff: RESEND_AFTER,
            });
        }

        // 5. Retransmit overdue unacked events, rebuilt from *current*
        //    state (current position and region version — the server
        //    wants the present truth, not a replay). An entry whose
        //    region vanished, or whose recorded side no longer matches
        //    the region's, is obsolete: the region's own event flow has
        //    taken over.
        let regions = &st.regions;
        st.pending.retain_mut(|p| {
            let Some(r) = regions.iter().find(|r| r.query == p.query) else {
                return false;
            };
            let consistent = match p.kind {
                MsgKind::Enter => r.inside == Some(true),
                MsgKind::Leave => r.inside == Some(false),
                _ => false,
            };
            if !consistent {
                return false;
            }
            if now >= p.next_resend {
                let msg = match p.kind {
                    MsgKind::Enter => UplinkMsg::Enter {
                        query: p.query,
                        ver: r.ver.ver,
                        pos: me.pos,
                        vel: me.vel,
                    },
                    _ => UplinkMsg::Leave {
                        query: p.query,
                        ver: r.ver.ver,
                        pos: me.pos,
                    },
                };
                up.send(me.id, msg);
                ops.retransmits += 1;
                p.backoff = (p.backoff * 2).min(RESEND_CAP);
                p.next_resend = now + p.backoff;
            }
            true
        });
    }
}

impl ClientHalf {
    /// Test/diagnostic access: the safe period a device currently holds for
    /// `query` (ticks until the next mandatory geometric check).
    pub fn safe_period_of(&self, device: usize, query: QueryId) -> Option<Tick> {
        self.states[device]
            .regions
            .iter()
            .find(|r| r.query == query)
            .map(|r| r.safe_until)
    }

    /// Test/diagnostic access: the region a device holds for `query`.
    pub fn region_of(&self, device: usize, query: QueryId) -> Option<(Tick, Point, f64)> {
        self.states[device]
            .regions
            .iter()
            .find(|r| r.query == query)
            .map(|r| (r.ver.ver, r.ver.center, r.ver.t))
    }
}

/// Whole ticks provably free of the given crossing: ticks strictly before
/// the continuous crossing time T cannot have crossed, so the next
/// mandatory check is at `now + floor(T)` (clamped to ≥ 1 so progress is
/// always made).
fn crossing_ticks(c: ThresholdCrossing) -> Tick {
    match c {
        ThresholdCrossing::Never => Tick::MAX / 2,
        ThresholdCrossing::At(t) => (t.floor().max(1.0)) as Tick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::ObjectId;

    fn device(id: u32, x: f64, y: f64, vx: f64, vy: f64) -> MovingObject {
        let mut o = MovingObject::at(ObjectId(id), Point::new(x, y), 50.0);
        o.vel = Vector::new(vx, vy);
        o
    }

    fn install(q: u32, ver: Tick, cx: f64, cy: f64, t: f64) -> DownlinkMsg {
        DownlinkMsg::InstallRegion {
            query: QueryId(q),
            ver,
            center: Point::new(cx, cy),
            vel: Vector::ZERO,
            r_out: t,
        }
    }

    #[test]
    fn silent_while_inside_without_band() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        // Install at tick 1, device well inside and stays inside.
        let me = device(0, 10.0, 0.0, 1.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        assert!(up.is_empty(), "no event expected: {:?}", up.iter().next());
        let me = device(0, 11.0, 0.0, 1.0, 0.0);
        c.tick(2, &me, &[], &mut up, &mut ops);
        assert!(up.is_empty());
    }

    #[test]
    fn reports_leave_on_exit_and_enter_on_return() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 99.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        assert!(up.is_empty());
        // Step outside.
        let me = device(0, 101.0, 0.0, 2.0, 0.0);
        c.tick(2, &me, &[], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(
            matches!(
                msgs[..],
                [UplinkMsg::Leave {
                    query: QueryId(0),
                    ver: 0,
                    ..
                }]
            ),
            "{msgs:?}"
        );
        up.clear();
        // Step back inside.
        let me = device(0, 99.5, 0.0, -1.5, 0.0);
        c.tick(3, &me, &[], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(matches!(
            msgs[..],
            [UplinkMsg::Enter {
                query: QueryId(0),
                ver: 0,
                ..
            }]
        ));
    }

    #[test]
    fn adoption_lag_crossing_is_still_reported() {
        // Device was outside at install tick, crossed in during the
        // delivery-lag tick: the first evaluation must emit Enter.
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        // prev_pos = pos − vel = (103,0) − (−5,0) … = (108, 0): outside 100.
        let me = device(0, 98.0, 0.0, -10.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(matches!(msgs[..], [UplinkMsg::Enter { .. }]), "{msgs:?}");
    }

    #[test]
    fn moving_region_center_is_predicted() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let msg = DownlinkMsg::InstallRegion {
            query: QueryId(0),
            ver: 0,
            center: Point::new(0.0, 0.0),
            vel: Vector::new(10.0, 0.0),
            r_out: 50.0,
        };
        // Device stationary at (65, 0): outside at tick 1 (center at 10,
        // distance 55 > 50).
        let me = device(0, 65.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[msg], &mut up, &mut ops);
        assert!(up.is_empty());
        // At tick 2 the predicted center is (20, 0) → distance 45 ≤ 50.
        c.tick(2, &me, &[], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(matches!(msgs[..], [UplinkMsg::Enter { .. }]), "{msgs:?}");
    }

    #[test]
    fn band_violation_reports_and_clears() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let band = DownlinkMsg::SetBand {
            query: QueryId(0),
            ver: 0,
            inner: 20.0,
            outer: 40.0,
        };
        let me = device(0, 30.0, 0.0, 0.0, 0.0);
        c.tick(
            1,
            &me,
            &[install(0, 0, 0.0, 0.0, 100.0), band],
            &mut up,
            &mut ops,
        );
        assert!(up.is_empty());
        // Drift inward across the inner boundary.
        let me = device(0, 19.0, 0.0, -11.0, 0.0);
        c.tick(2, &me, &[], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(
            matches!(msgs[..], [UplinkMsg::BandCross { .. }]),
            "{msgs:?}"
        );
        up.clear();
        // Band cleared: staying put emits nothing further.
        let me = device(0, 19.0, 0.0, 0.0, 0.0);
        c.tick(3, &me, &[], &mut up, &mut ops);
        assert!(up.is_empty());
    }

    #[test]
    fn band_under_stale_version_is_ignored() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let stale_band = DownlinkMsg::SetBand {
            query: QueryId(0),
            ver: 7,
            inner: 0.0,
            outer: 1.0,
        };
        let me = device(0, 30.0, 0.0, 0.0, 0.0);
        c.tick(
            1,
            &me,
            &[install(0, 9, 0.0, 0.0, 100.0), stale_band],
            &mut up,
            &mut ops,
        );
        // The band does not attach, so no BandCross can fire.
        let me = device(0, 35.0, 0.0, 5.0, 0.0);
        c.tick(2, &me, &[], &mut up, &mut ops);
        assert!(up.is_empty());
    }

    #[test]
    fn newer_version_replaces_older_and_resets_band() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 30.0, 0.0, 0.0, 0.0);
        let band = DownlinkMsg::SetBand {
            query: QueryId(0),
            ver: 0,
            inner: 25.0,
            outer: 35.0,
        };
        c.tick(
            1,
            &me,
            &[install(0, 0, 0.0, 0.0, 100.0), band],
            &mut up,
            &mut ops,
        );
        // New version arrives; old band must not survive.
        c.tick(2, &me, &[install(0, 2, 0.0, 0.0, 90.0)], &mut up, &mut ops);
        assert_eq!(c.region_of(0, QueryId(0)).unwrap().0, 2);
        // Move out of the *old* band's range: silent, since the band died
        // with its version.
        let me = device(0, 50.0, 0.0, 20.0, 0.0);
        c.tick(3, &me, &[], &mut up, &mut ops);
        assert!(up.is_empty());
    }

    #[test]
    fn heartbeat_refreshes_last_heard_without_reset() {
        let p = DknnParams::default();
        let mut c = ClientHalf::new(p, 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 30.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        // Heartbeats keep arriving: region survives far past evict_after.
        for tk in 2..40 {
            let inbox = if tk % p.heartbeat == 0 {
                vec![install(0, 0, 0.0, 0.0, 100.0)]
            } else {
                vec![]
            };
            c.tick(tk, &me, &inbox, &mut up, &mut ops);
        }
        assert_eq!(c.installed_regions(0), 1);
        assert!(up.is_empty());
    }

    #[test]
    fn unheard_region_is_evicted() {
        let p = DknnParams::default();
        let mut c = ClientHalf::new(p, 1);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 30.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        for tk in 2..(2 + p.evict_after() + 2) {
            c.tick(tk, &me, &[], &mut up, &mut ops);
        }
        assert_eq!(c.installed_regions(0), 0);
    }

    #[test]
    fn lossy_enter_is_retransmitted_with_backoff_until_acked() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        c.set_lossy(true);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        // Adopt the region while outside, then cross in at tick 2.
        let me = device(0, 101.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        assert!(up.is_empty());
        let me = device(0, 99.0, 0.0, -2.0, 0.0);
        c.tick(2, &me, &[], &mut up, &mut ops);
        assert_eq!(up.iter().count(), 1, "the Enter itself");
        up.clear();
        // No ack arrives; the device sits still inside. Resends are due at
        // ticks 4 (start backoff 2) and 8 (doubled to 4), nothing between.
        let me = device(0, 99.0, 0.0, 0.0, 0.0);
        let mut resent_at = Vec::new();
        for tk in 3..=8 {
            // Heartbeats keep the region from being evicted mid-test.
            let inbox = vec![install(0, 0, 0.0, 0.0, 100.0)];
            c.tick(tk, &me, &inbox, &mut up, &mut ops);
            if up.iter().count() > 0 {
                let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
                assert!(matches!(msgs[..], [UplinkMsg::Enter { ver: 0, .. }]));
                resent_at.push(tk);
                up.clear();
            }
        }
        assert_eq!(resent_at, vec![4, 8]);
        assert_eq!(ops.retransmits, 2);
        // The ack stops the loop for good.
        let ack = DownlinkMsg::Ack {
            query: QueryId(0),
            ver: 0,
            kind: MsgKind::Enter,
        };
        c.tick(9, &me, &[ack], &mut up, &mut ops);
        for tk in 10..=20 {
            let inbox = vec![install(0, 0, 0.0, 0.0, 100.0)];
            c.tick(tk, &me, &inbox, &mut up, &mut ops);
        }
        assert!(up.is_empty(), "acked event must stay quiet");
        assert_eq!(ops.retransmits, 2);
    }

    #[test]
    fn lossy_fresh_adoption_announces_membership() {
        // A device already inside a region it just learned about declares
        // itself: the original Enter (if any) may have died in flight.
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        c.set_lossy(true);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 10.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(
            matches!(msgs[..], [UplinkMsg::Enter { ver: 0, .. }]),
            "{msgs:?}"
        );
    }

    #[test]
    fn lossy_offline_gap_resyncs_and_reannounces() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        c.set_lossy(true);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 10.0, 0.0, 0.0, 0.0);
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        up.clear();
        let ack = DownlinkMsg::Ack {
            query: QueryId(0),
            ver: 0,
            kind: MsgKind::Enter,
        };
        c.tick(2, &me, &[ack], &mut up, &mut ops);
        assert!(up.is_empty());
        // Ticks 3–5 never happen: the device was offline. On return its
        // cached side is suspect, so it re-declares itself.
        c.tick(6, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(
            matches!(msgs[..], [UplinkMsg::Enter { ver: 0, .. }]),
            "{msgs:?}"
        );
    }

    #[test]
    fn lossy_newer_version_drops_pending_retransmissions() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        c.set_lossy(true);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 10.0, 0.0, 0.0, 0.0);
        // Adoption announce goes pending (no ack will come).
        c.tick(1, &me, &[install(0, 0, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        up.clear();
        // A newer version arrives before any resend: the server rebuilt its
        // member list from a full probe, so the old pending Enter is moot.
        c.tick(2, &me, &[install(0, 2, 0.0, 0.0, 100.0)], &mut up, &mut ops);
        up.clear();
        for tk in 3..=6 {
            c.tick(
                tk,
                &me,
                &[install(0, 2, 0.0, 0.0, 100.0)],
                &mut up,
                &mut ops,
            );
        }
        let kinds: Vec<_> = up.iter().map(|(_, m)| m.kind()).collect();
        assert!(
            !kinds.contains(&MsgKind::Enter),
            "stale pending must not resend: {kinds:?}"
        );
        assert_eq!(ops.retransmits, 0);
    }

    #[test]
    fn focal_reports_movement_and_ignores_own_region() {
        let mut c = ClientHalf::new(DknnParams::default(), 1);
        c.set_focal(0, QueryId(0));
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = device(0, 10.0, 0.0, 5.0, 0.0);
        c.tick(
            1,
            &me,
            &[install(0, 0, 10.0, 0.0, 100.0)],
            &mut up,
            &mut ops,
        );
        let msgs: Vec<_> = up.iter().map(|(_, m)| *m).collect();
        assert!(
            matches!(
                msgs[..],
                [UplinkMsg::QueryMove {
                    query: QueryId(0),
                    ..
                }]
            ),
            "{msgs:?}"
        );
        assert_eq!(c.installed_regions(0), 0, "must not monitor own query");
        up.clear();
        // Not moving → no report.
        let me = device(0, 10.0, 0.0, 0.0, 0.0);
        c.tick(2, &me, &[], &mut up, &mut ops);
        assert!(up.is_empty());
    }
}
