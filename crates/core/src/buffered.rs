//! The buffered-candidate DKNN variant ("dknn-buffer").
//!
//! The basic protocols ([`crate::Dknn`]) re-establish the answer with a
//! disk probe and a region re-broadcast on *every* k-boundary crossing.
//! This variant decouples the broadcast region from the answer boundary,
//! the same way the kMax / buffered-answer idea works in the classic
//! kNN-monitoring literature:
//!
//! * the geocast **region** is sized to hold the k answer members *plus a
//!   buffer* of `b` spare candidates, and is only re-broadcast when the
//!   query drifts or the buffer over/under-flows;
//! * **all** candidates inside the region carry ordered response bands, so
//!   every membership or order change surfaces as a crossing event that the
//!   server patches with at most one poll and two unicasts:
//!   - a region *Enter* inserts the newcomer into the band order,
//!   - a region *Leave* simply removes it — if the leaver was an answer
//!     member, the first buffer candidate slides into the answer with **no
//!     communication at all**, because the order below it is already known,
//!   - a *BandCross* re-splits one band.
//!
//! The answer is the first k candidates in band order — exact in both set
//! and order at the effective query center, like `dknn-order`, but with a
//! fraction of its traffic under churn.

use crate::{ClientHalf, DknnParams, RegionVersion};
use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
use mknn_mobility::MovingObject;
use mknn_net::{
    run_shard_tasks, DownlinkMsg, MsgKind, ObjReport, OpCounters, Outbox, ProbeService, Protocol,
    QuerySpec, Recipient, ServerPhase, UplinkMsg, Uplinks,
};
use std::collections::BTreeMap;

/// One candidate: an object inside the monitoring region, with its band.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    id: ObjectId,
    inner: f64,
    outer: f64,
    /// Last tick the server heard from this candidate (lossy mode: lease
    /// bookkeeping, see [`DknnParams::lease_ttl`]).
    heard: Tick,
}

#[derive(Debug)]
struct BufQuery {
    spec: QuerySpec,
    ver: RegionVersion,
    q_pos: Point,
    q_vel: Vector,
    /// All candidates in band order (first k = the answer).
    cands: Vec<Candidate>,
    answer: Vec<ObjectId>,
    last_broadcast: Tick,
    needs_refresh: bool,
    events_tick: u32,
    refreshes: u64,
    local_fixes: u64,
}

impl BufQuery {
    fn rebuild_answer(&mut self) {
        self.answer = self.cands.iter().take(self.spec.k).map(|c| c.id).collect();
    }
}

/// One partition of the buffered server tier: the per-query candidate
/// structures homed at one shard, keyed by query id (ascending iteration
/// keeps the G=1 byte trace identical to the historical dense-`Vec` order).
#[derive(Debug)]
struct BufServer {
    params: DknnParams,
    /// Spare candidates targeted beyond k at each refresh.
    buffer: usize,
    queries: BTreeMap<u32, BufQuery>,
    space_diag: f64,
    current_tick: Tick,
    /// Lossy-transport hardening (acks, idempotent duplicates, candidate
    /// leases); off by default for perfect-link byte-identity.
    lossy: bool,
}

/// The buffered-candidate protocol. See the module docs.
#[derive(Debug)]
pub struct DknnBuffered {
    params: DknnParams,
    client: ClientHalf,
    /// One partition per shard of the deployed server tier; a single entry
    /// until the first partitioned server phase forks the tier lazily.
    servers: Vec<BufServer>,
    /// Hosting shard per query id (mirror of the coordinator's directory).
    home_of: Vec<u32>,
    empty: Vec<ObjectId>,
    lossy: bool,
}

impl DknnBuffered {
    /// Creates the protocol with a buffer of `buffer` spare candidates
    /// (clamped to at least 2).
    ///
    /// # Panics
    ///
    /// Panics when `params` fail [`DknnParams::validate`]; use
    /// [`DknnBuffered::try_new`] to handle invalid parameters gracefully.
    pub fn new(params: DknnParams, buffer: usize) -> Self {
        Self::try_new(params, buffer).expect("invalid DknnParams")
    }

    /// Fallible [`DknnBuffered::new`]: rejects invalid parameters with the
    /// typed error instead of panicking.
    pub fn try_new(params: DknnParams, buffer: usize) -> Result<Self, crate::ParamError> {
        params.validate()?;
        Ok(DknnBuffered {
            params,
            client: ClientHalf::new(params, 0),
            servers: vec![BufServer {
                params,
                buffer: buffer.max(2),
                queries: BTreeMap::new(),
                space_diag: 1.0,
                current_tick: 0,
                lossy: false,
            }],
            home_of: Vec::new(),
            empty: Vec::new(),
            lossy: false,
        })
    }

    /// The configured buffer size.
    pub fn buffer(&self) -> usize {
        self.servers[0].buffer
    }

    /// Full refreshes performed so far (diagnostics).
    pub fn refreshes(&self) -> u64 {
        self.servers
            .iter()
            .flat_map(|s| s.queries.values())
            .map(|q| q.refreshes)
            .sum()
    }

    /// Locally patched events (insert/remove/re-split) so far.
    pub fn local_fixes(&self) -> u64 {
        self.servers
            .iter()
            .flat_map(|s| s.queries.values())
            .map(|q| q.local_fixes)
            .sum()
    }

    /// The partition hosting `query` (partition 0 until first homed).
    fn server_of(&self, query: QueryId) -> &BufServer {
        let h = self.home_of.get(query.index()).copied().unwrap_or(0) as usize;
        &self.servers[h.min(self.servers.len() - 1)]
    }
}

impl BufServer {
    /// A fresh partition with this one's configuration and no queries.
    fn fork_empty(&self) -> BufServer {
        BufServer {
            params: self.params,
            buffer: self.buffer,
            queries: BTreeMap::new(),
            space_diag: self.space_diag,
            current_tick: self.current_tick,
            lossy: self.lossy,
        }
    }

    fn establish(
        &mut self,
        qi: u32,
        reports: &mut [ObjReport],
        now: Tick,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        let buffer = self.buffer;
        let params = self.params;
        let q = self.queries.get_mut(&qi).expect("query homed here");
        let k = q.spec.k;
        let c = q.q_pos;
        ops.server_ops += reports.len() as u64;
        reports.sort_unstable_by(|a, b| {
            let da = a.pos.dist_sq(c);
            let db = b.pos.dist_sq(c);
            da.total_cmp(&db).then(a.id.cmp(&b.id))
        });
        let target = k + buffer;
        let mut kept = reports.len().min(target);
        // Region containment is `d <= r_out`, so every report tied (in
        // distance) with the last kept one must be banded too: grid-like
        // worlds produce exact ties, and r_out degenerates to d_last when
        // d_next == d_last, which would leave the tied objects inside the
        // region with no band — free to move without ever reporting.
        if kept > 0 {
            let d_edge = reports[kept - 1].pos.dist(c);
            while kept < reports.len() && reports[kept].pos.dist(c) <= d_edge + 1e-9 {
                kept += 1;
            }
        }
        let dists: Vec<f64> = reports[..kept].iter().map(|r| r.pos.dist(c)).collect();
        let d_last = dists.last().copied().unwrap_or(0.0);
        let r_out = match reports.get(kept) {
            Some(next) => {
                let d_next = next.pos.dist(c);
                d_last + params.alpha * (d_next - d_last)
            }
            None => d_last + (0.1 * d_last).max(1.0),
        };
        q.ver = RegionVersion {
            ver: now,
            center: c,
            vel: q.q_vel,
            t: r_out,
        };
        q.last_broadcast = now;
        q.needs_refresh = false;
        q.refreshes += 1;
        outbox.send(
            Recipient::Geocast(Circle::new(c, r_out + params.margin())),
            DownlinkMsg::InstallRegion {
                query: q.spec.id,
                ver: now,
                center: c,
                vel: q.q_vel,
                r_out,
            },
        );
        q.cands.clear();
        for i in 0..kept {
            let inner = if i == 0 {
                0.0
            } else {
                (dists[i - 1] + dists[i]) * 0.5
            };
            let outer = if i + 1 == kept {
                r_out
            } else {
                (dists[i] + dists[i + 1]) * 0.5
            };
            q.cands.push(Candidate {
                id: reports[i].id,
                inner,
                outer,
                heard: now,
            });
            outbox.send(
                Recipient::One(reports[i].id),
                DownlinkMsg::SetBand {
                    query: q.spec.id,
                    ver: now,
                    inner,
                    outer,
                },
            );
        }
        q.rebuild_answer();
    }

    fn refresh(
        &mut self,
        qi: u32,
        now: Tick,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        let (qid, focal, k, base_r, c) = {
            let q = &self.queries[&qi];
            (q.spec.id, q.spec.focal, q.spec.k, q.ver.t, q.q_pos)
        };
        let drift = {
            let q = &self.queries[&qi];
            q.q_pos.dist(q.ver.pred_center(now))
        };
        let need = k + self.buffer;
        let slack = 2.0 * (self.params.v_max_obj + self.params.v_max_q);
        let mut r = (base_r + drift + slack).clamp(slack.max(1.0), self.space_diag);
        let mut reports = loop {
            let reports = probe.probe(qid, Circle::new(c, r), focal);
            ops.server_ops += reports.len() as u64 + 1;
            if reports.len() > need || r >= self.space_diag {
                break reports;
            }
            r = (r * self.params.expand_factor).min(self.space_diag);
        };
        self.establish(qi, &mut reports, now, outbox, ops);
    }

    /// Inserts `id` at distance `d` into the band order (shared by Enter
    /// handling and band-cross re-insertion). Emits the band unicasts.
    ///
    /// Insertion may *cascade*: when the probed band owner turns out to have
    /// drifted out of its own band this very tick (its own crossing event is
    /// elsewhere in the batch), the owner is evicted and re-queued for
    /// insertion at its fresh distance, so the band-order invariant can
    /// never be corrupted by a stale split point. Each cascade step costs
    /// one poll; a budget caps pathological ticks by escalating to a full
    /// refresh.
    fn insert_candidate(
        q: &mut BufQuery,
        id: ObjectId,
        d: f64,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
        now: Tick,
    ) {
        let center = q.ver.pred_center(now);
        let mut queue: Vec<(ObjectId, f64)> = vec![(id, d)];
        let mut poll_budget = 16u32;
        while let Some((id, d)) = queue.pop() {
            ops.server_ops += 1;
            if d > q.ver.t {
                // Fresh distance says it is no longer in the region at all;
                // its Leave event handles the rest.
                continue;
            }
            match q.cands.iter().position(|m| d > m.inner && d <= m.outer) {
                None => {
                    // A hole (or the open space near 0 / r_out after
                    // removals).
                    let at = q
                        .cands
                        .iter()
                        .position(|m| m.inner >= d)
                        .unwrap_or(q.cands.len());
                    let inner = if at == 0 { 0.0 } else { q.cands[at - 1].outer };
                    let outer = if at == q.cands.len() {
                        q.ver.t
                    } else {
                        q.cands[at].inner
                    };
                    q.cands.insert(
                        at,
                        Candidate {
                            id,
                            inner,
                            outer,
                            heard: now,
                        },
                    );
                    outbox.send(
                        Recipient::One(id),
                        DownlinkMsg::SetBand {
                            query: q.spec.id,
                            ver: q.ver.ver,
                            inner,
                            outer,
                        },
                    );
                    q.local_fixes += 1;
                }
                Some(j) => {
                    let owner = q.cands[j];
                    if poll_budget == 0 {
                        q.needs_refresh = true;
                        break;
                    }
                    poll_budget -= 1;
                    let Some(rep) = probe.poll(q.spec.id, owner.id) else {
                        q.needs_refresh = true;
                        break;
                    };
                    ops.server_ops += 1;
                    let d_j = rep.pos.dist(center);
                    if d_j <= owner.inner || d_j > owner.outer {
                        // The owner itself moved out of its band: evict it,
                        // retry this insertion (the band is now a hole), and
                        // re-insert the owner at its fresh distance.
                        q.cands.remove(j);
                        queue.push((owner.id, d_j));
                        queue.push((id, d));
                        continue;
                    }
                    if (d - d_j).abs() < 1e-9 {
                        q.needs_refresh = true;
                        break;
                    }
                    let mid = (d + d_j) * 0.5;
                    let (lo_id, hi_id) = if d < d_j {
                        (id, owner.id)
                    } else {
                        (owner.id, id)
                    };
                    let lo = Candidate {
                        id: lo_id,
                        inner: owner.inner,
                        outer: mid,
                        heard: now,
                    };
                    let hi = Candidate {
                        id: hi_id,
                        inner: mid,
                        outer: owner.outer,
                        heard: now,
                    };
                    q.cands[j] = lo;
                    q.cands.insert(j + 1, hi);
                    for m in [lo, hi] {
                        outbox.send(
                            Recipient::One(m.id),
                            DownlinkMsg::SetBand {
                                query: q.spec.id,
                                ver: q.ver.ver,
                                inner: m.inner,
                                outer: m.outer,
                            },
                        );
                    }
                    q.local_fixes += 1;
                }
            }
        }
        if q.cands.len() < q.spec.k {
            q.needs_refresh = true;
        }
        q.rebuild_answer();
    }

    fn heal(&self, query: QueryId, to: ObjectId, outbox: &mut Outbox) {
        let q = &self.queries[&query.0];
        outbox.send(
            Recipient::One(to),
            DownlinkMsg::InstallRegion {
                query,
                ver: q.ver.ver,
                center: q.ver.center,
                vel: q.ver.vel,
                r_out: q.ver.t,
            },
        );
    }
    /// One partition tick: ingest this shard's events, patch or refresh its
    /// homed queries, heartbeat.
    fn tick(
        &mut self,
        now: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.current_tick = now;
        for q in self.queries.values_mut() {
            q.events_tick = 0;
        }
        let mut heals: Vec<(ObjectId, QueryId)> = Vec::new();

        for (from, msg) in uplinks.iter() {
            match *msg {
                UplinkMsg::QueryMove { query, pos, vel } => {
                    if let Some(q) = self.queries.get_mut(&query.0) {
                        if q.spec.focal == from {
                            q.q_pos = pos;
                            q.q_vel = vel;
                        }
                    }
                }
                UplinkMsg::Enter {
                    query, ver, pos, ..
                } => {
                    let max_cands = self
                        .queries
                        .get(&query.0)
                        .map(|q| q.spec.k + 2 * self.buffer);
                    let Some(q) = self.queries.get_mut(&query.0) else {
                        continue;
                    };
                    ops.server_ops += 1;
                    if ver != q.ver.ver {
                        heals.push((from, query));
                        continue;
                    }
                    if self.lossy {
                        outbox.send(
                            Recipient::One(from),
                            DownlinkMsg::Ack {
                                query,
                                ver,
                                kind: MsgKind::Enter,
                            },
                        );
                        if let Some(c) = q.cands.iter_mut().find(|c| c.id == from) {
                            // Duplicate / re-announced Enter from a banded
                            // candidate: idempotent lease renewal.
                            c.heard = now;
                            continue;
                        }
                    }
                    if q.needs_refresh {
                        continue;
                    }
                    q.events_tick += 1;
                    // The escalation valve guards against mass invalidation;
                    // it scales with the number of banded candidates (unlike
                    // the basic protocol, several events per tick are normal
                    // here).
                    let escalation =
                        self.params.band_escalation as usize + q.spec.k + 2 * self.buffer;
                    if q.events_tick as usize > escalation || q.cands.iter().any(|c| c.id == from) {
                        q.needs_refresh = true;
                        continue;
                    }
                    let d = pos.dist(q.ver.pred_center(now));
                    Self::insert_candidate(q, from, d, probe, outbox, ops, now);
                    // Invariant: `max_cands` is `Some` for every query id the
                    // loop visits — it was computed from `self.queries` above
                    // and `q` was just fetched from the same vector.
                    if q.cands.len() > max_cands.expect("query exists") {
                        q.needs_refresh = true; // shrink the region
                    }
                }
                UplinkMsg::Leave { query, ver, .. } => {
                    let Some(q) = self.queries.get_mut(&query.0) else {
                        continue;
                    };
                    ops.server_ops += 1;
                    if ver != q.ver.ver {
                        heals.push((from, query));
                        continue;
                    }
                    if self.lossy {
                        outbox.send(
                            Recipient::One(from),
                            DownlinkMsg::Ack {
                                query,
                                ver,
                                kind: MsgKind::Leave,
                            },
                        );
                    }
                    if let Some(i) = q.cands.iter().position(|c| c.id == from) {
                        q.cands.remove(i);
                        q.rebuild_answer();
                        q.local_fixes += 1;
                        if q.cands.len() < q.spec.k {
                            q.needs_refresh = true; // buffer exhausted
                        }
                    }
                }
                UplinkMsg::BandCross {
                    query, ver, pos, ..
                } => {
                    let Some(q) = self.queries.get_mut(&query.0) else {
                        continue;
                    };
                    ops.server_ops += 1;
                    if ver != q.ver.ver {
                        heals.push((from, query));
                        continue;
                    }
                    if q.needs_refresh {
                        continue;
                    }
                    q.events_tick += 1;
                    let escalation =
                        self.params.band_escalation as usize + q.spec.k + 2 * self.buffer;
                    if q.events_tick as usize > escalation {
                        q.needs_refresh = true;
                        continue;
                    }
                    let d = pos.dist(q.ver.pred_center(now));
                    if d > q.ver.t {
                        // Left the region; the Leave in the same batch (or
                        // the next tick) removes it — drop its band slot now.
                        if let Some(i) = q.cands.iter().position(|c| c.id == from) {
                            q.cands.remove(i);
                            q.rebuild_answer();
                            if q.cands.len() < q.spec.k {
                                q.needs_refresh = true;
                            }
                        }
                        continue;
                    }
                    let Some(i) = q.cands.iter().position(|c| c.id == from) else {
                        heals.push((from, query));
                        continue;
                    };
                    q.cands.remove(i);
                    Self::insert_candidate(q, from, d, probe, outbox, ops, now);
                }
                UplinkMsg::ProbeReply { .. } | UplinkMsg::Position { .. } => {}
            }
        }

        // Lease pass (lossy mode): poll the stalest silent candidate per
        // query; a dead, out-of-region, or out-of-band candidate escalates
        // to a refresh. Mirrors the basic server's member leases.
        if self.lossy {
            let ttl = self.params.lease_ttl();
            for q in self.queries.values_mut() {
                if q.needs_refresh {
                    continue;
                }
                let Some(idx) = (0..q.cands.len()).min_by_key(|&i| q.cands[i].heard) else {
                    continue;
                };
                if now.saturating_sub(q.cands[idx].heard) <= ttl {
                    continue;
                }
                ops.server_ops += 1;
                match probe.poll(q.spec.id, q.cands[idx].id) {
                    None => q.needs_refresh = true,
                    Some(rep) => {
                        let d = rep.pos.dist(q.ver.pred_center(now));
                        let c = &mut q.cands[idx];
                        if d > q.ver.t || d <= c.inner || d > c.outer {
                            q.needs_refresh = true;
                        } else {
                            c.heard = now;
                        }
                    }
                }
            }
        }

        let ids: Vec<u32> = self.queries.keys().copied().collect();
        for qi in ids {
            ops.server_ops += 1;
            let (drifted, due_heartbeat) = {
                let q = &self.queries[&qi];
                let drift = q.q_pos.dist(q.ver.pred_center(now));
                (
                    drift > self.params.query_drift,
                    now.saturating_sub(q.last_broadcast) >= self.params.heartbeat,
                )
            };
            if drifted {
                self.queries
                    .get_mut(&qi)
                    .expect("key snapshot")
                    .needs_refresh = true;
            }
            if self.queries[&qi].needs_refresh {
                self.refresh(qi, now, probe, outbox, ops);
            } else if due_heartbeat {
                let q = self.queries.get_mut(&qi).expect("key snapshot");
                let zone = Circle::new(q.ver.pred_center(now), q.ver.t + self.params.margin());
                outbox.send(
                    Recipient::Geocast(zone),
                    DownlinkMsg::InstallRegion {
                        query: q.spec.id,
                        ver: q.ver.ver,
                        center: q.ver.center,
                        vel: q.ver.vel,
                        r_out: q.ver.t,
                    },
                );
                q.last_broadcast = now;
            }
        }

        for (id, query) in heals {
            self.heal(query, id, outbox);
        }
    }
}

impl Protocol for DknnBuffered {
    fn name(&self) -> &'static str {
        "dknn-buffer"
    }

    fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
        self.client.set_lossy(lossy);
        for server in &mut self.servers {
            server.lossy = lossy;
        }
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        _probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.client = ClientHalf::new(self.params, objects.len());
        self.client.set_lossy(self.lossy);
        // Registration is a single-server act: the tier forks into its
        // partitions lazily at the first partitioned server phase.
        self.servers.truncate(1);
        let server = &mut self.servers[0];
        server.space_diag = bounds.min.dist(bounds.max);
        server.queries.clear();
        self.home_of = vec![0; queries.len()];
        for (i, spec) in queries.iter().enumerate() {
            assert_eq!(spec.id.index(), i, "query ids must be dense and in order");
            self.client.set_focal(spec.focal.index(), spec.id);
            let focal = &objects[spec.focal.index()];
            server.queries.insert(
                spec.id.0,
                BufQuery {
                    spec: *spec,
                    ver: RegionVersion {
                        ver: 0,
                        center: focal.pos,
                        vel: focal.vel,
                        t: 0.0,
                    },
                    q_pos: focal.pos,
                    q_vel: focal.vel,
                    cands: Vec::new(),
                    answer: Vec::new(),
                    last_broadcast: 0,
                    needs_refresh: false,
                    events_tick: 0,
                    refreshes: 0,
                    local_fixes: 0,
                },
            );
            // Initial establishment from the registration snapshot.
            let mut reports: Vec<ObjReport> = objects
                .iter()
                .filter(|o| o.id != spec.focal)
                .map(|o| ObjReport {
                    id: o.id,
                    pos: o.pos,
                    vel: o.vel,
                })
                .collect();
            ops.server_ops += reports.len() as u64;
            server.establish(spec.id.0, &mut reports, 0, outbox, ops);
            // establish() counts as a refresh; the initial one is free-form.
            server
                .queries
                .get_mut(&spec.id.0)
                .expect("just inserted")
                .refreshes = 0;
        }
    }

    fn client_tick(
        &mut self,
        tick: Tick,
        me: &MovingObject,
        inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        self.client.tick(tick, me, inbox, up, ops);
    }

    fn client_phase(&mut self, ctx: &mknn_net::ClientCtx, up: &mut Uplinks, ops: &mut OpCounters) {
        // Shares the dKNN client half, so it shares its chunked batch path.
        self.client.tick_batch(ctx, up, ops);
    }

    fn server_tick(
        &mut self,
        now: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.servers[0].tick(now, uplinks, probe, outbox, ops);
    }

    fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        debug_assert!(
            phase
                .tasks
                .iter()
                .enumerate()
                .all(|(i, t)| t.shard as usize == i),
            "tasks must be dense ascending shard ids"
        );
        // Fork the tier lazily to the deployment width.
        while self.servers.len() < phase.tasks.len() {
            let next = self.servers[0].fork_empty();
            self.servers.push(next);
        }
        // Migrate per-query candidate state to this tick's coordinator
        // homes (the state a Migrate leg ships between shards).
        if self.home_of.len() < phase.homes.len() {
            self.home_of.resize(phase.homes.len(), 0);
        }
        for (q, (&new_home, old_home)) in
            phase.homes.iter().zip(self.home_of.iter_mut()).enumerate()
        {
            if *old_home != new_home {
                if let Some(state) = self.servers[*old_home as usize].queries.remove(&(q as u32)) {
                    self.servers[new_home as usize]
                        .queries
                        .insert(q as u32, state);
                }
                *old_home = new_home;
            }
        }
        // Partitions tick independently on the uplinks homed at their
        // shard; per-query state never crosses partitions mid-phase, so
        // the parallel dispatch is deterministic at any thread count.
        let tick = phase.tick;
        run_shard_tasks(
            phase.pool,
            &mut self.servers,
            phase.tasks,
            |server, task| {
                let up = std::mem::take(&mut task.uplinks);
                server.tick(
                    tick,
                    &up,
                    task.probe.as_mut(),
                    &mut task.outbox,
                    &mut task.ops,
                );
            },
        );
    }

    fn server_crash(&mut self, _shard: u32, _block: Rect, queries: &[QueryId]) {
        // The candidate/band structure homed on the dead shard is gone; the
        // focal registry (spec, last reported position, version counter)
        // survives. The next server tick rebuilds each wiped query with an
        // expanding probe + full band re-establishment. Each query lives in
        // exactly one partition, so the sweep touches exactly its holder.
        for server in &mut self.servers {
            for &id in queries {
                if let Some(q) = server.queries.get_mut(&id.0) {
                    q.cands.clear();
                    q.answer.clear();
                    q.needs_refresh = true;
                }
            }
        }
    }

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.server_of(query)
            .queries
            .get(&query.0)
            .map_or(&self.empty, |q| q.answer.as_slice())
    }

    fn effective_center(&self, query: QueryId) -> Option<Point> {
        let server = self.server_of(query);
        server
            .queries
            .get(&query.0)
            .map(|q| q.ver.pred_center(server.current_tick))
    }

    fn ordered_answers(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TableProbe {
        positions: Vec<Point>,
    }

    impl ProbeService for TableProbe {
        fn probe(&mut self, _q: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport> {
            self.positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| ObjectId(i as u32) != exclude && zone.contains(*p))
                .map(|(i, p)| ObjReport {
                    id: ObjectId(i as u32),
                    pos: *p,
                    vel: Vector::ZERO,
                })
                .collect()
        }
        fn poll(&mut self, _q: QueryId, id: ObjectId) -> Option<ObjReport> {
            self.positions.get(id.index()).map(|p| ObjReport {
                id,
                pos: *p,
                vel: Vector::ZERO,
            })
        }
    }

    fn world() -> Vec<MovingObject> {
        let mut v = vec![MovingObject::at(ObjectId(0), Point::ORIGIN, 20.0)];
        for i in 1..12u32 {
            v.push(MovingObject::at(
                ObjectId(i),
                Point::new(i as f64 * 10.0, 0.0),
                20.0,
            ));
        }
        v
    }

    fn setup(k: usize, buffer: usize) -> (DknnBuffered, Outbox, OpCounters) {
        let mut p = DknnBuffered::new(DknnParams::default(), buffer);
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k,
        }];
        struct NoProbe;
        impl ProbeService for NoProbe {
            fn probe(&mut self, _q: QueryId, _z: Circle, _e: ObjectId) -> Vec<ObjReport> {
                panic!("init must use the registration snapshot")
            }
            fn poll(&mut self, _q: QueryId, _id: ObjectId) -> Option<ObjReport> {
                panic!()
            }
        }
        p.init(
            Rect::square(10_000.0),
            &world(),
            &queries,
            &mut NoProbe,
            &mut outbox,
            &mut ops,
        );
        (p, outbox, ops)
    }

    #[test]
    fn init_buffers_beyond_k() {
        let (p, outbox, _) = setup(3, 2);
        assert_eq!(
            p.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        // Region boundary lies between the 5th and 6th object (50 and 60).
        let q = &p.servers[0].queries[&0];
        assert_eq!(q.cands.len(), 5);
        assert!(q.ver.t > 50.0 && q.ver.t < 60.0, "r_out = {}", q.ver.t);
        // Bands were unicast to every candidate.
        let bands = outbox
            .iter()
            .filter(|(_, m)| matches!(m, DownlinkMsg::SetBand { .. }))
            .count();
        assert_eq!(bands, 5);
    }

    #[test]
    fn member_leave_promotes_buffer_without_messages() {
        let (mut p, _, mut ops) = setup(3, 2);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(2),
            UplinkMsg::Leave {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(70.0, 0.0),
            },
        );
        let mut outbox = Outbox::new();
        p.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        // Candidate 4 slides into the answer; no refresh, no probe traffic.
        assert_eq!(
            p.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(3), ObjectId(4)]
        );
        assert_eq!(p.refreshes(), 0);
        assert!(
            !outbox
                .iter()
                .any(|(_, m)| matches!(m, DownlinkMsg::InstallRegion { .. })),
            "no geocast expected"
        );
    }

    #[test]
    fn enter_inserts_locally() {
        let (mut p, _, mut ops) = setup(3, 3);
        let mut positions: Vec<Point> = world().iter().map(|o| o.pos).collect();
        positions.push(Point::new(12.0, 0.0)); // id 12 appears near the front
        let mut probe = TableProbe { positions };
        let mut up = Uplinks::new();
        up.send(
            ObjectId(12),
            UplinkMsg::Enter {
                query: QueryId(0),
                ver: 0,
                pos: Point::new(12.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        let mut outbox = Outbox::new();
        p.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(
            p.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(12), ObjectId(2)]
        );
        assert_eq!(p.refreshes(), 0);
        assert!(p.local_fixes() >= 1);
    }

    #[test]
    fn buffer_exhaustion_triggers_grow_refresh() {
        let (mut p, _, mut ops) = setup(3, 2);
        let mut probe = TableProbe {
            positions: world().iter().map(|o| o.pos).collect(),
        };
        // All five candidates leave in successive ticks.
        for (tick, id) in [1u64, 2, 3].iter().zip([1u32, 2, 3]) {
            let mut up = Uplinks::new();
            up.send(
                ObjectId(id),
                UplinkMsg::Leave {
                    query: QueryId(0),
                    ver: p.servers[0].queries[&0].ver.ver,
                    pos: Point::new(999.0, 0.0),
                },
            );
            let mut outbox = Outbox::new();
            p.server_tick(*tick, &up, &mut probe, &mut outbox, &mut ops);
            assert_eq!(p.answer(QueryId(0)).len(), 3, "answer must stay full");
        }
        // Losing three of five candidates dips below k once → one refresh.
        assert_eq!(p.refreshes(), 1);
    }

    #[test]
    fn overflow_triggers_shrink_refresh() {
        let (mut p, _, mut ops) = setup(3, 2); // max_cands = 3 + 4 = 7
        let mut positions: Vec<Point> = world().iter().map(|o| o.pos).collect();
        let base = positions.len() as u32;
        for i in 0..3u32 {
            positions.push(Point::new(3.0 + i as f64, 1.0));
        }
        let mut probe = TableProbe { positions };
        let mut up = Uplinks::new();
        for i in 0..3u32 {
            up.send(
                ObjectId(base + i),
                UplinkMsg::Enter {
                    query: QueryId(0),
                    ver: 0,
                    pos: Point::new(3.0 + i as f64, 1.0),
                    vel: Vector::ZERO,
                },
            );
        }
        let mut outbox = Outbox::new();
        p.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        // 5 + 3 = 8 > 7 → shrink refresh (or escalation refresh; either way
        // the structure must be re-established and the answer exact).
        assert!(p.refreshes() >= 1);
        assert_eq!(p.answer(QueryId(0)).len(), 3);
    }
}
