//! Distributed processing of moving k-nearest-neighbor queries on moving
//! objects — the core contribution of the reproduced ICDE 2007 paper.
//!
//! # The idea
//!
//! A *moving* kNN query travels with a focal object while the data objects
//! themselves move. Centralized monitoring makes every object stream its
//! position to the server each timestamp — Θ(N) messages per tick. This
//! crate pushes the monitoring *to the objects*: the server broadcasts a
//! small **monitoring region** per query (a circle around the predicted
//! query position whose radius is a hysteresis threshold placed between the
//! k-th and (k+1)-th neighbor distances), and each device decides locally,
//! from its own position alone, whether its movement can possibly change
//! the answer. Only boundary crossings — and, in ordered mode, response-band
//! violations — are reported.
//!
//! # Soundness machinery (see DESIGN.md §3 for the full argument)
//!
//! * **Versioned regions** ([`RegionVersion`]): server and devices evaluate
//!   membership against the identical predicted center, so decisions agree.
//! * **Geocast margin + heartbeat** ([`DknnParams::margin`]): devices that
//!   missed an install are provably too far away to enter the region before
//!   the next heartbeat reaches them.
//! * **Adoption-lag initialization**: a device adopting a new version
//!   derives its previous side of the boundary from its previous position,
//!   so the one-tick delivery lag cannot hide a crossing.
//! * **Healing**: events carrying a stale version are answered with a
//!   unicast re-install instead of corrupting the answer.
//! * **Expanding probes**: when the answer is invalidated (member left,
//!   newcomer entered, query drifted), the server re-establishes it with a
//!   geocast probe that grows until it has found at least k+1 devices.
//!
//! The headline invariant — *the maintained answer equals the brute-force
//! kNN at the effective query center, every tick* — is enforced by the
//! simulation harness's oracle in the integration and property tests.

#![deny(missing_docs)]

mod buffered;
mod client;
mod dknn;
mod params;
mod region;
mod server;
mod shard;

pub use buffered::DknnBuffered;
pub use client::ClientHalf;
pub use dknn::Dknn;
pub use params::{DknnParams, DknnParamsBuilder, ParamError};
pub use region::RegionVersion;
pub use server::ServerHalf;
pub use shard::{ServerShard, ShardCoordinator, ShardGrid};

/// Answer semantics maintained by the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Maintain the exact kNN *set*; internal order may be stale.
    Set,
    /// Maintain the exact kNN *order* via per-member response bands.
    Ordered,
}
