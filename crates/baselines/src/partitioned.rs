//! The partitioned grid-index server tier shared by [`crate::Centralized`]
//! and [`crate::Periodic`].
//!
//! Both baselines keep the same server state — a grid index over reported
//! positions plus per-query `(spec, q_pos, answer)` records — and differ
//! only in their client reporting policy. Under a sharded deployment that
//! state splits by ownership:
//!
//! * each shard holds a **partial index** containing the objects whose
//!   `Position` uplinks terminate there (the coordinator's object-home
//!   rule); an object whose reports start arriving at another shard is
//!   detached from the old partition and inserted into the new one — the
//!   state a `Handoff` leg ships;
//! * each shard hosts the **query records** homed there, keyed by query id
//!   (ascending iteration keeps the G=1 byte trace identical to the
//!   historical dense-`Vec` order);
//! * evaluation federates: a shard answers its homed queries by running the
//!   ring-expansion kNN over *all* partial indexes at once
//!   ([`GridIndex::knn_counted_multi`]), which visits the same cells and the
//!   same member multisets as the monolithic index — answers and op counts
//!   are byte-identical for every G.
//!
//! The per-tick phase runs in two parallel sub-phases with a barrier
//! between them: (A) each shard applies its own detach/upsert work list —
//! partitions are mutated disjointly — then (B) each shard evaluates its
//! homed queries over the now-quiescent partitions, which every shard reads
//! but none writes.

use mknn_geom::{ObjectId, Point, QueryId, Rect};
use mknn_index::GridIndex;
use mknn_mobility::MovingObject;
use mknn_net::{
    run_shard_tasks, ObjReport, OpCounters, QuerySpec, ServerPhase, UplinkMsg, Uplinks,
};
use std::collections::BTreeMap;

/// Per-query server record (identical for both baselines).
#[derive(Debug, Clone)]
pub(crate) struct QState {
    pub spec: QuerySpec,
    /// Latest known focal position (from the focal's `Position` reports).
    pub q_pos: Point,
    pub answer: Vec<ObjectId>,
}

/// The query records one shard hosts.
#[derive(Debug, Default)]
pub(crate) struct QueryShard {
    pub queries: BTreeMap<u32, QState>,
}

/// Per-shard index mutation work collected by the sequential pre-pass and
/// applied by the owning shard in parallel sub-phase A.
#[derive(Debug, Default)]
struct ShardWork {
    /// Objects whose reports moved to another shard (detach from here).
    removals: Vec<ObjectId>,
    /// Fresh positions to upsert here, in arrival order.
    upserts: Vec<(ObjectId, Point)>,
    /// `Position` uplinks this shard ingested (one server op each).
    n_ops: u64,
}

/// The partitioned server tier: partial indexes + homed query records.
#[derive(Debug)]
pub(crate) struct PartitionedTier {
    grid_res: u32,
    bounds: Rect,
    /// One partial index per shard (a single entry until the first
    /// partitioned server phase forks the tier).
    parts: Vec<GridIndex>,
    /// Shard currently holding each object's index entry, by object index.
    entry_of: Vec<u32>,
    /// Per-shard query records, indexed by shard id.
    shards: Vec<QueryShard>,
    /// Hosting shard per query id (mirror of the coordinator's directory).
    home_of: Vec<u32>,
    /// Query ids keyed by focal object id (a focal `Position` report also
    /// recenters those queries).
    focal_queries: BTreeMap<u32, Vec<u32>>,
    empty: Vec<ObjectId>,
}

impl PartitionedTier {
    pub fn new(grid_res: u32) -> Self {
        PartitionedTier {
            grid_res,
            bounds: Rect::square(1.0),
            parts: vec![GridIndex::new(Rect::square(1.0), 1, 1)],
            entry_of: Vec::new(),
            shards: vec![QueryShard::default()],
            home_of: Vec::new(),
            focal_queries: BTreeMap::new(),
            empty: Vec::new(),
        }
    }

    /// Registration: the whole index and every query record load into
    /// partition 0; the tier forks lazily at the first partitioned phase.
    pub fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        ops: &mut OpCounters,
    ) {
        self.bounds = bounds;
        self.parts = vec![GridIndex::new(bounds, self.grid_res, self.grid_res)];
        self.shards = vec![QueryShard::default()];
        self.entry_of = vec![0; objects.len()];
        self.home_of = vec![0; queries.len()];
        self.focal_queries.clear();
        for o in objects {
            self.parts[0].upsert(o.id, o.pos);
            ops.server_ops += 1;
        }
        for spec in queries {
            self.focal_queries
                .entry(spec.focal.0)
                .or_default()
                .push(spec.id.0);
            self.shards[0].queries.insert(
                spec.id.0,
                QState {
                    spec: *spec,
                    q_pos: objects[spec.focal.index()].pos,
                    answer: Vec::new(),
                },
            );
        }
        self.evaluate_all(ops);
    }

    /// Recenters the queries whose focal is `from` (wherever they are
    /// homed). Matches the monolithic focal scan result exactly.
    fn recenter_focal(&mut self, from: ObjectId, pos: Point) {
        if let Some(qis) = self.focal_queries.get(&from.0) {
            for &qi in qis {
                let h = self.home_of[qi as usize] as usize;
                if let Some(qs) = self.shards[h].queries.get_mut(&qi) {
                    qs.q_pos = pos;
                }
            }
        }
    }

    /// Evaluates one shard's homed queries (ascending query id) over the
    /// full set of partial indexes.
    fn evaluate_shard(parts: &[&GridIndex], shard: &mut QueryShard, ops: &mut OpCounters) {
        for qs in shard.queries.values_mut() {
            // k+1 then drop the focal object if it shows up.
            let (nn, work) = GridIndex::knn_counted_multi(parts, qs.q_pos, qs.spec.k + 1);
            ops.server_ops += work;
            qs.answer = nn
                .into_iter()
                .filter(|n| n.id != qs.spec.focal)
                .take(qs.spec.k)
                .map(|n| n.id)
                .collect();
        }
    }

    /// Evaluates every query, ascending query id across the whole tier —
    /// the monolithic evaluation order.
    fn evaluate_all(&mut self, ops: &mut OpCounters) {
        let parts: Vec<&GridIndex> = self.parts.iter().collect();
        let mut ids: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.queries.keys().copied())
            .collect();
        ids.sort_unstable();
        for qi in ids {
            let h = self.home_of[qi as usize] as usize;
            let qs = self.shards[h].queries.get_mut(&qi).expect("home directory");
            let (nn, work) = GridIndex::knn_counted_multi(&parts, qs.q_pos, qs.spec.k + 1);
            ops.server_ops += work;
            qs.answer = nn
                .into_iter()
                .filter(|n| n.id != qs.spec.focal)
                .take(qs.spec.k)
                .map(|n| n.id)
                .collect();
        }
    }

    /// The monolithic server tick (G=1 deployments and unit tests): ingest
    /// position reports in batch order, then re-evaluate every query.
    pub fn tick_monolithic(&mut self, uplinks: &Uplinks, ops: &mut OpCounters) {
        for (from, msg) in uplinks.iter() {
            if let UplinkMsg::Position { pos, .. } = msg {
                let h = self.entry_of.get(from.index()).copied().unwrap_or(0) as usize;
                self.parts[h].upsert(from, *pos);
                ops.server_ops += 1;
                self.recenter_focal(from, *pos);
            }
        }
        self.evaluate_all(ops);
    }

    /// Grows the tier to at least `n` partitions (empty index + no queries;
    /// state arrives via the ownership rules).
    fn ensure_parts(&mut self, n: usize) {
        while self.parts.len() < n {
            self.parts
                .push(GridIndex::new(self.bounds, self.grid_res, self.grid_res));
            self.shards.push(QueryShard::default());
        }
    }

    /// The partitioned per-tick phase. See the module docs for the
    /// sub-phase structure and the equivalence argument.
    pub fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        debug_assert!(
            phase
                .tasks
                .iter()
                .enumerate()
                .all(|(i, t)| t.shard as usize == i),
            "tasks must be dense ascending shard ids"
        );
        self.ensure_parts(phase.tasks.len());
        // Re-home query records to this tick's coordinator homes.
        if self.home_of.len() < phase.homes.len() {
            self.home_of.resize(phase.homes.len(), 0);
        }
        for (q, (&new_home, old_home)) in
            phase.homes.iter().zip(self.home_of.iter_mut()).enumerate()
        {
            if *old_home != new_home {
                if let Some(state) = self.shards[*old_home as usize].queries.remove(&(q as u32)) {
                    self.shards[new_home as usize]
                        .queries
                        .insert(q as u32, state);
                }
                *old_home = new_home;
            }
        }
        // Sequential pre-pass: turn each shard's Position uplinks into its
        // index work list, moving entry ownership to the arrival shard, and
        // recenter focal queries. All reports from one device arrive at one
        // shard (routing is by sender position), so per-object and
        // per-focal orderings match the monolithic batch.
        let mut works: Vec<ShardWork> = Vec::with_capacity(phase.tasks.len());
        works.resize_with(phase.tasks.len(), ShardWork::default);
        for ti in 0..phase.tasks.len() {
            let s = phase.tasks[ti].shard as usize;
            let uplinks = std::mem::take(&mut phase.tasks[ti].uplinks);
            for (from, msg) in uplinks.iter() {
                if let UplinkMsg::Position { pos, .. } = msg {
                    let idx = from.index();
                    if idx >= self.entry_of.len() {
                        self.entry_of.resize(idx + 1, 0);
                    }
                    let prev = self.entry_of[idx] as usize;
                    if prev != s {
                        works[prev].removals.push(from);
                        self.entry_of[idx] = s as u32;
                    }
                    works[s].upserts.push((from, *pos));
                    works[s].n_ops += 1;
                    self.recenter_focal(from, *pos);
                }
            }
        }
        // Sub-phase A: each shard applies its own work list — disjoint
        // partition mutation, safe to run concurrently.
        run_shard_tasks(phase.pool, &mut self.parts, phase.tasks, |part, task| {
            let w = &works[task.shard as usize];
            for &id in &w.removals {
                part.remove(id);
            }
            for &(id, pos) in &w.upserts {
                part.upsert(id, pos);
            }
            task.ops.server_ops += w.n_ops;
        });
        // Barrier, then sub-phase B: every shard evaluates its homed
        // queries over the quiescent partitions (shared read-only).
        let parts: Vec<&GridIndex> = self.parts.iter().collect();
        run_shard_tasks(phase.pool, &mut self.shards, phase.tasks, |shard, task| {
            Self::evaluate_shard(&parts, shard, &mut task.ops);
        });
    }

    /// A crash wipes the dead shard's block from *every* partition (a
    /// failover shard may hold entries that are geometrically inside the
    /// dead block) and clears the listed queries' cached answers.
    pub fn crash(&mut self, block: Rect, queries: &[QueryId]) {
        for part in &mut self.parts {
            let wiped: Vec<ObjectId> = part
                .iter()
                .filter(|&(_, p)| block.contains(p))
                .map(|(id, _)| id)
                .collect();
            for id in wiped {
                part.remove(id);
            }
        }
        for shard in &mut self.shards {
            for &q in queries {
                if let Some(qs) = shard.queries.get_mut(&q.0) {
                    qs.answer.clear();
                }
            }
        }
    }

    /// The rebirth replay: every replayed object re-homes its index entry
    /// to the reborn shard's partition.
    pub fn recover(&mut self, shard: u32, replay: &[ObjReport]) {
        self.ensure_parts(shard as usize + 1);
        let s = shard as usize;
        for r in replay {
            let idx = r.id.index();
            if idx >= self.entry_of.len() {
                self.entry_of.resize(idx + 1, 0);
            }
            let prev = self.entry_of[idx] as usize;
            if prev != s {
                self.parts[prev].remove(r.id);
                self.entry_of[idx] = shard;
            }
            self.parts[s].upsert(r.id, r.pos);
        }
    }

    /// The maintained answer of `query`.
    pub fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.holder(query)
            .and_then(|s| s.queries.get(&query.0))
            .map_or(&self.empty, |qs| qs.answer.as_slice())
    }

    /// Latest known focal position of `query` (the effective center of the
    /// lazy baselines' possibly-stale answers).
    pub fn q_pos(&self, query: QueryId) -> Option<Point> {
        self.holder(query)
            .and_then(|s| s.queries.get(&query.0))
            .map(|qs| qs.q_pos)
    }

    fn holder(&self, query: QueryId) -> Option<&QueryShard> {
        let h = self.home_of.get(query.index()).copied().unwrap_or(0) as usize;
        self.shards.get(h.min(self.shards.len() - 1))
    }
}
