//! The naive per-tick probing strawman.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
use mknn_mobility::MovingObject;
use mknn_net::{
    run_shard_tasks, DownlinkMsg, OpCounters, Outbox, ProbeService, Protocol, QuerySpec,
    ServerPhase, UplinkMsg, Uplinks,
};
use std::collections::BTreeMap;

/// Per-query server record: the cached answer and the adaptive zone radius.
#[derive(Debug, Clone)]
struct NState {
    spec: QuerySpec,
    q_pos: Point,
    radius: f64,
    answer: Vec<ObjectId>,
}

/// The query records one shard hosts, keyed by query id (ascending
/// iteration keeps the G=1 byte trace identical to the historical
/// dense-`Vec` order).
#[derive(Debug, Default)]
struct NaiveShard {
    queries: BTreeMap<u32, NState>,
}

/// Naive distributed processing: every tick, for every query, the server
/// geocasts a probe over an adaptive zone around the query position and
/// rebuilds the answer from the replies.
///
/// Exact and simple, but the probe fan-out (zone cells + ~k replies) is paid
/// *every tick for every query*, even when nothing moved — the monitoring
/// protocols exist precisely to amortize this.
///
/// The strawman's server state is purely per-query, so the sharded
/// deployment partitions it by query home: each shard probes for its homed
/// queries through its own probe channel.
#[derive(Debug)]
pub struct NaiveBroadcast {
    /// Zone radius multiplier applied to the last k-th distance.
    headroom: f64,
    /// Client-side registry (focal → query), shared by every device.
    specs: Vec<QuerySpec>,
    /// Per-shard query records (a single entry until the first partitioned
    /// server phase forks the tier).
    shards: Vec<NaiveShard>,
    /// Hosting shard per query id.
    home_of: Vec<u32>,
    space_diag: f64,
    empty: Vec<ObjectId>,
}

impl NaiveBroadcast {
    /// Creates the baseline; `headroom > 1` is the zone over-size factor
    /// that absorbs movement between ticks.
    pub fn new(headroom: f64) -> Self {
        assert!(headroom > 1.0);
        NaiveBroadcast {
            headroom,
            specs: Vec::new(),
            shards: vec![NaiveShard::default()],
            home_of: Vec::new(),
            space_diag: 1.0,
            empty: Vec::new(),
        }
    }

    /// One query's probe-until-k loop (identical on every shard).
    fn evaluate_state(
        state: &mut NState,
        probe: &mut dyn ProbeService,
        ops: &mut OpCounters,
        space_diag: f64,
        headroom: f64,
    ) {
        let center = state.q_pos;
        let mut r = state.radius.clamp(1.0, space_diag);
        let replies = loop {
            let replies = probe.probe(state.spec.id, Circle::new(center, r), state.spec.focal);
            ops.server_ops += replies.len() as u64 + 1;
            if replies.len() >= state.spec.k || r >= space_diag {
                break replies;
            }
            r = (r * 2.0).min(space_diag);
        };
        let mut scored: Vec<(f64, ObjectId)> = replies
            .iter()
            .map(|o| (o.pos.dist_sq(center), o.id))
            .collect();
        scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        state.answer = scored
            .iter()
            .take(state.spec.k)
            .map(|&(_, id)| id)
            .collect();
        // Next tick's zone: the current k-th distance plus headroom.
        if let Some(&(d2, _)) = scored.get(state.spec.k.saturating_sub(1)) {
            state.radius = d2.sqrt() * headroom;
        }
    }

    /// Evaluates every query ascending query id across the whole tier —
    /// the monolithic evaluation order.
    fn evaluate_all(&mut self, probe: &mut dyn ProbeService, ops: &mut OpCounters) {
        let (space_diag, headroom) = (self.space_diag, self.headroom);
        let mut ids: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.queries.keys().copied())
            .collect();
        ids.sort_unstable();
        for qi in ids {
            let h = self.home_of[qi as usize] as usize;
            let state = self.shards[h].queries.get_mut(&qi).expect("home directory");
            Self::evaluate_state(state, probe, ops, space_diag, headroom);
        }
    }

    fn holder(&self, query: QueryId) -> Option<&NaiveShard> {
        let h = self.home_of.get(query.index()).copied().unwrap_or(0) as usize;
        self.shards.get(h.min(self.shards.len() - 1))
    }
}

impl Default for NaiveBroadcast {
    fn default() -> Self {
        NaiveBroadcast::new(1.5)
    }
}

impl Protocol for NaiveBroadcast {
    fn name(&self) -> &'static str {
        "naive-probe"
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.space_diag = bounds.min.dist(bounds.max);
        self.specs = queries.to_vec();
        self.shards = vec![NaiveShard::default()];
        self.home_of = vec![0; queries.len()];
        for spec in queries {
            self.shards[0].queries.insert(
                spec.id.0,
                NState {
                    spec: *spec,
                    q_pos: objects[spec.focal.index()].pos,
                    radius: self.space_diag * 0.02,
                    answer: Vec::new(),
                },
            );
        }
        self.evaluate_all(probe, ops);
    }

    fn client_tick(
        &mut self,
        _tick: Tick,
        me: &MovingObject,
        _inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        _ops: &mut OpCounters,
    ) {
        // Only focal devices speak unprompted (probe replies are handled by
        // the harness's synchronous channel).
        for si in 0..self.specs.len() {
            let spec = self.specs[si];
            if spec.focal == me.id && me.vel != Vector::ZERO {
                up.send(
                    me.id,
                    UplinkMsg::QueryMove {
                        query: spec.id,
                        pos: me.pos,
                        vel: me.vel,
                    },
                );
                // Client-side mirror; the server reads the uplink.
                let h = self.home_of.get(spec.id.index()).copied().unwrap_or(0) as usize;
                if let Some(q) = self.shards[h].queries.get_mut(&spec.id.0) {
                    q.q_pos = me.pos;
                }
            }
        }
    }

    fn server_tick(
        &mut self,
        _tick: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        for (from, msg) in uplinks.iter() {
            if let UplinkMsg::QueryMove { query, pos, .. } = msg {
                let h = self.home_of.get(query.index()).copied().unwrap_or(0) as usize;
                if let Some(q) = self.shards[h].queries.get_mut(&query.0) {
                    if q.spec.focal == from {
                        q.q_pos = *pos;
                    }
                }
            }
        }
        self.evaluate_all(probe, ops);
    }

    fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        debug_assert!(
            phase
                .tasks
                .iter()
                .enumerate()
                .all(|(i, t)| t.shard as usize == i),
            "tasks must be dense ascending shard ids"
        );
        while self.shards.len() < phase.tasks.len() {
            self.shards.push(NaiveShard::default());
        }
        // Re-home query records to this tick's coordinator homes.
        if self.home_of.len() < phase.homes.len() {
            self.home_of.resize(phase.homes.len(), 0);
        }
        for (q, (&new_home, old_home)) in
            phase.homes.iter().zip(self.home_of.iter_mut()).enumerate()
        {
            if *old_home != new_home {
                if let Some(state) = self.shards[*old_home as usize].queries.remove(&(q as u32)) {
                    self.shards[new_home as usize]
                        .queries
                        .insert(q as u32, state);
                }
                *old_home = new_home;
            }
        }
        // Each shard ingests its homed QueryMoves and probes for its homed
        // queries through its own probe channel — per-query state never
        // crosses shards mid-phase.
        let (space_diag, headroom) = (self.space_diag, self.headroom);
        run_shard_tasks(phase.pool, &mut self.shards, phase.tasks, |shard, task| {
            let up = std::mem::take(&mut task.uplinks);
            for (from, msg) in up.iter() {
                if let UplinkMsg::QueryMove { query, pos, .. } = msg {
                    if let Some(q) = shard.queries.get_mut(&query.0) {
                        if q.spec.focal == from {
                            q.q_pos = *pos;
                        }
                    }
                }
            }
            for state in shard.queries.values_mut() {
                Self::evaluate_state(
                    state,
                    task.probe.as_mut(),
                    &mut task.ops,
                    space_diag,
                    headroom,
                );
            }
        });
    }

    fn server_crash(&mut self, _shard: u32, _block: Rect, queries: &[QueryId]) {
        // The strawman keeps only the cached answer and the adaptive zone
        // radius per query; both are rebuilt by next tick's probe, so a
        // crash costs one tick of answer loss plus the re-grown zone. Each
        // query lives in exactly one shard, so the sweep touches exactly
        // its holder.
        for shard in &mut self.shards {
            for &q in queries {
                if let Some(state) = shard.queries.get_mut(&q.0) {
                    state.answer.clear();
                    state.radius = self.space_diag * 0.02;
                }
            }
        }
    }

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.holder(query)
            .and_then(|s| s.queries.get(&query.0))
            .map_or(&self.empty, |q| q.answer.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_net::ObjReport;

    struct TableProbe {
        positions: Vec<Point>,
        probes: u32,
    }

    impl ProbeService for TableProbe {
        fn probe(&mut self, _q: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport> {
            self.probes += 1;
            self.positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| ObjectId(i as u32) != exclude && zone.contains(*p))
                .map(|(i, p)| ObjReport {
                    id: ObjectId(i as u32),
                    pos: *p,
                    vel: Vector::ZERO,
                })
                .collect()
        }
        fn poll(&mut self, _q: QueryId, _id: ObjectId) -> Option<ObjReport> {
            None
        }
    }

    fn objs() -> Vec<MovingObject> {
        (0..8u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 100.0, 0.0), 5.0))
            .collect()
    }

    #[test]
    fn probes_until_k_found_then_tracks() {
        let mut n = NaiveBroadcast::default();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 3,
        }];
        let mut probe = TableProbe {
            positions: objs().iter().map(|o| o.pos).collect(),
            probes: 0,
        };
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        n.init(
            Rect::square(10_000.0),
            &objs(),
            &queries,
            &mut probe,
            &mut outbox,
            &mut ops,
        );
        assert_eq!(
            n.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        assert!(probe.probes >= 1);

        // Every subsequent tick probes again even with zero movement.
        let before = probe.probes;
        let up = Uplinks::new();
        n.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        assert!(probe.probes > before);
        assert_eq!(
            n.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
    }

    #[test]
    fn query_move_recenters() {
        let mut n = NaiveBroadcast::default();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 2,
        }];
        let mut probe = TableProbe {
            positions: objs().iter().map(|o| o.pos).collect(),
            probes: 0,
        };
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        n.init(
            Rect::square(10_000.0),
            &objs(),
            &queries,
            &mut probe,
            &mut outbox,
            &mut ops,
        );
        let mut up = Uplinks::new();
        up.send(
            ObjectId(0),
            UplinkMsg::QueryMove {
                query: QueryId(0),
                pos: Point::new(690.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        n.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(n.answer(QueryId(0)), &[ObjectId(7), ObjectId(6)]);
    }
}
