//! The naive per-tick probing strawman.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
use mknn_mobility::MovingObject;
use mknn_net::{
    DownlinkMsg, OpCounters, Outbox, ProbeService, Protocol, QuerySpec, UplinkMsg, Uplinks,
};

/// Naive distributed processing: every tick, for every query, the server
/// geocasts a probe over an adaptive zone around the query position and
/// rebuilds the answer from the replies.
///
/// Exact and simple, but the probe fan-out (zone cells + ~k replies) is paid
/// *every tick for every query*, even when nothing moved — the monitoring
/// protocols exist precisely to amortize this.
#[derive(Debug)]
pub struct NaiveBroadcast {
    /// Zone radius multiplier applied to the last k-th distance.
    headroom: f64,
    queries: Vec<QuerySpec>,
    answers: Vec<Vec<ObjectId>>,
    q_pos: Vec<Point>,
    radius: Vec<f64>,
    space_diag: f64,
    empty: Vec<ObjectId>,
}

impl NaiveBroadcast {
    /// Creates the baseline; `headroom > 1` is the zone over-size factor
    /// that absorbs movement between ticks.
    pub fn new(headroom: f64) -> Self {
        assert!(headroom > 1.0);
        NaiveBroadcast {
            headroom,
            queries: Vec::new(),
            answers: Vec::new(),
            q_pos: Vec::new(),
            radius: Vec::new(),
            space_diag: 1.0,
            empty: Vec::new(),
        }
    }

    fn evaluate(&mut self, probe: &mut dyn ProbeService, ops: &mut OpCounters) {
        for (qi, spec) in self.queries.iter().enumerate() {
            let center = self.q_pos[qi];
            let mut r = self.radius[qi].clamp(1.0, self.space_diag);
            let replies = loop {
                let replies = probe.probe(spec.id, Circle::new(center, r), spec.focal);
                ops.server_ops += replies.len() as u64 + 1;
                if replies.len() >= spec.k || r >= self.space_diag {
                    break replies;
                }
                r = (r * 2.0).min(self.space_diag);
            };
            let mut scored: Vec<(f64, ObjectId)> = replies
                .iter()
                .map(|o| (o.pos.dist_sq(center), o.id))
                .collect();
            scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            self.answers[qi] = scored.iter().take(spec.k).map(|&(_, id)| id).collect();
            // Next tick's zone: the current k-th distance plus headroom.
            if let Some(&(d2, _)) = scored.get(spec.k.saturating_sub(1)) {
                self.radius[qi] = d2.sqrt() * self.headroom;
            }
        }
    }
}

impl Default for NaiveBroadcast {
    fn default() -> Self {
        NaiveBroadcast::new(1.5)
    }
}

impl Protocol for NaiveBroadcast {
    fn name(&self) -> &'static str {
        "naive-probe"
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.space_diag = bounds.min.dist(bounds.max);
        self.queries = queries.to_vec();
        self.q_pos = queries
            .iter()
            .map(|s| objects[s.focal.index()].pos)
            .collect();
        self.radius = vec![self.space_diag * 0.02; queries.len()];
        self.answers = vec![Vec::new(); queries.len()];
        self.evaluate(probe, ops);
    }

    fn client_tick(
        &mut self,
        _tick: Tick,
        me: &MovingObject,
        _inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        _ops: &mut OpCounters,
    ) {
        // Only focal devices speak unprompted (probe replies are handled by
        // the harness's synchronous channel).
        for (qi, spec) in self.queries.iter().enumerate() {
            if spec.focal == me.id && me.vel != Vector::ZERO {
                up.send(
                    me.id,
                    UplinkMsg::QueryMove {
                        query: spec.id,
                        pos: me.pos,
                        vel: me.vel,
                    },
                );
                self.q_pos[qi] = me.pos; // client-side mirror; server reads uplink
            }
        }
    }

    fn server_tick(
        &mut self,
        _tick: Tick,
        uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        for (from, msg) in uplinks.iter() {
            if let UplinkMsg::QueryMove { query, pos, .. } = msg {
                if let Some(q) = self.queries.get(query.index()) {
                    if q.focal == from {
                        self.q_pos[query.index()] = *pos;
                    }
                }
            }
        }
        self.evaluate(probe, ops);
    }

    fn server_crash(&mut self, _block: Rect, queries: &[QueryId]) {
        // The strawman keeps only the cached answer and the adaptive zone
        // radius per query; both are rebuilt by next tick's probe, so a
        // crash costs one tick of answer loss plus the re-grown zone.
        for &q in queries {
            if let Some(a) = self.answers.get_mut(q.index()) {
                a.clear();
            }
            if let Some(r) = self.radius.get_mut(q.index()) {
                *r = self.space_diag * 0.02;
            }
        }
    }

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.answers
            .get(query.index())
            .map_or(&self.empty, |a| a.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_net::ObjReport;

    struct TableProbe {
        positions: Vec<Point>,
        probes: u32,
    }

    impl ProbeService for TableProbe {
        fn probe(&mut self, _q: QueryId, zone: Circle, exclude: ObjectId) -> Vec<ObjReport> {
            self.probes += 1;
            self.positions
                .iter()
                .enumerate()
                .filter(|&(i, p)| ObjectId(i as u32) != exclude && zone.contains(*p))
                .map(|(i, p)| ObjReport {
                    id: ObjectId(i as u32),
                    pos: *p,
                    vel: Vector::ZERO,
                })
                .collect()
        }
        fn poll(&mut self, _q: QueryId, _id: ObjectId) -> Option<ObjReport> {
            None
        }
    }

    fn objs() -> Vec<MovingObject> {
        (0..8u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 100.0, 0.0), 5.0))
            .collect()
    }

    #[test]
    fn probes_until_k_found_then_tracks() {
        let mut n = NaiveBroadcast::default();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 3,
        }];
        let mut probe = TableProbe {
            positions: objs().iter().map(|o| o.pos).collect(),
            probes: 0,
        };
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        n.init(
            Rect::square(10_000.0),
            &objs(),
            &queries,
            &mut probe,
            &mut outbox,
            &mut ops,
        );
        assert_eq!(
            n.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
        assert!(probe.probes >= 1);

        // Every subsequent tick probes again even with zero movement.
        let before = probe.probes;
        let up = Uplinks::new();
        n.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        assert!(probe.probes > before);
        assert_eq!(
            n.answer(QueryId(0)),
            &[ObjectId(1), ObjectId(2), ObjectId(3)]
        );
    }

    #[test]
    fn query_move_recenters() {
        let mut n = NaiveBroadcast::default();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 2,
        }];
        let mut probe = TableProbe {
            positions: objs().iter().map(|o| o.pos).collect(),
            probes: 0,
        };
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        n.init(
            Rect::square(10_000.0),
            &objs(),
            &queries,
            &mut probe,
            &mut outbox,
            &mut ops,
        );
        let mut up = Uplinks::new();
        up.send(
            ObjectId(0),
            UplinkMsg::QueryMove {
                query: QueryId(0),
                pos: Point::new(690.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        n.server_tick(1, &up, &mut probe, &mut outbox, &mut ops);
        assert_eq!(n.answer(QueryId(0)), &[ObjectId(7), ObjectId(6)]);
    }
}
