//! The centralized monitoring baseline.

use crate::partitioned::PartitionedTier;
use mknn_geom::{ObjectId, QueryId, Rect, Tick};
use mknn_mobility::MovingObject;
use mknn_net::{
    DownlinkMsg, OpCounters, Outbox, ProbeService, Protocol, QuerySpec, ServerPhase, UplinkMsg,
    Uplinks,
};

/// Centralized continuous kNN monitoring (the classic server-side
/// architecture of SEA-CNN / CPM, reduced to its communication pattern):
/// every device reports its position on every tick it moves, the server
/// keeps a uniform grid index current and re-evaluates each query each tick.
///
/// Answers are exact with respect to true positions. The price is the Θ(N)
/// uplink firehose — the quantity the distributed protocols eliminate.
///
/// Under a sharded deployment the server state partitions by ownership (see
/// [`PartitionedTier`]): each shard indexes the objects reporting to it and
/// answers its homed queries by federated evaluation over all partitions.
#[derive(Debug)]
pub struct Centralized {
    tier: PartitionedTier,
}

impl Centralized {
    /// Creates the baseline with a `grid_res × grid_res` server index.
    pub fn new(grid_res: u32) -> Self {
        Centralized {
            tier: PartitionedTier::new(grid_res),
        }
    }
}

impl Default for Centralized {
    fn default() -> Self {
        Centralized::new(64)
    }
}

impl Protocol for Centralized {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        _probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.tier.init(bounds, objects, queries, ops);
    }

    fn client_tick(
        &mut self,
        _tick: Tick,
        me: &MovingObject,
        _inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        // A device reports whenever it moved this tick.
        ops.client_ops += 1;
        if me.vel != mknn_geom::Vector::ZERO {
            up.send(
                me.id,
                UplinkMsg::Position {
                    pos: me.pos,
                    vel: me.vel,
                },
            );
        }
    }

    fn client_phase(&mut self, ctx: &mknn_net::ClientCtx, up: &mut Uplinks, ops: &mut OpCounters) {
        // The per-device body is stateless (report-if-moved), so the
        // shared chunked harness applies directly.
        mknn_net::parallel_client_phase(ctx, up, ops, |_tick, me, _inbox, up, ops| {
            ops.client_ops += 1;
            if me.vel != mknn_geom::Vector::ZERO {
                up.send(
                    me.id,
                    UplinkMsg::Position {
                        pos: me.pos,
                        vel: me.vel,
                    },
                );
            }
        });
    }

    fn server_tick(
        &mut self,
        _tick: Tick,
        uplinks: &Uplinks,
        _probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.tier.tick_monolithic(uplinks, ops);
    }

    fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        self.tier.server_phase(phase);
    }

    fn server_crash(&mut self, _shard: u32, block: Rect, queries: &[QueryId]) {
        // The crashed shard's slice of the position index is lost. Moving
        // devices re-teach their entries through the per-tick report
        // firehose; stationary ones stay dark until the reconstruction
        // sweep replays them at rebirth.
        self.tier.crash(block, queries);
    }

    fn server_recover(&mut self, shard: u32, _block: Rect, replay: &[mknn_net::ObjReport]) {
        // The counted `Recover` sweep re-announces every object inside the
        // reborn block; the index is whole again from this tick on.
        self.tier.recover(shard, replay);
    }

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.tier.answer(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::{Circle, Point, Vector};
    use mknn_net::ObjReport;

    struct NoProbe;
    impl ProbeService for NoProbe {
        fn probe(&mut self, _q: QueryId, _z: Circle, _e: ObjectId) -> Vec<ObjReport> {
            panic!("centralized must not probe")
        }
        fn poll(&mut self, _q: QueryId, _id: ObjectId) -> Option<ObjReport> {
            panic!("centralized must not poll")
        }
    }

    fn objs() -> Vec<MovingObject> {
        (0..6u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 10.0, 0.0), 5.0))
            .collect()
    }

    #[test]
    fn tracks_answers_through_updates() {
        let mut c = Centralized::new(8);
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 2,
        }];
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        c.init(
            Rect::square(100.0),
            &objs(),
            &queries,
            &mut NoProbe,
            &mut outbox,
            &mut ops,
        );
        assert_eq!(c.answer(QueryId(0)), &[ObjectId(1), ObjectId(2)]);

        // Object 5 teleports right next to the focal.
        let mut up = Uplinks::new();
        up.send(
            ObjectId(5),
            UplinkMsg::Position {
                pos: Point::new(1.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        c.server_tick(1, &up, &mut NoProbe, &mut outbox, &mut ops);
        assert_eq!(c.answer(QueryId(0)), &[ObjectId(5), ObjectId(1)]);
    }

    #[test]
    fn moving_focal_recenters_query() {
        let mut c = Centralized::new(8);
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 2,
        }];
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        c.init(
            Rect::square(100.0),
            &objs(),
            &queries,
            &mut NoProbe,
            &mut outbox,
            &mut ops,
        );
        let mut up = Uplinks::new();
        up.send(
            ObjectId(0),
            UplinkMsg::Position {
                pos: Point::new(48.0, 0.0),
                vel: Vector::ZERO,
            },
        );
        c.server_tick(1, &up, &mut NoProbe, &mut outbox, &mut ops);
        assert_eq!(c.answer(QueryId(0)), &[ObjectId(5), ObjectId(4)]);
    }

    #[test]
    fn stationary_devices_stay_silent() {
        let mut c = Centralized::new(8);
        let mut up = Uplinks::new();
        let mut ops = OpCounters::default();
        let me = MovingObject::at(ObjectId(3), Point::new(1.0, 1.0), 5.0);
        c.client_tick(1, &me, &[], &mut up, &mut ops);
        assert!(up.is_empty());
        let mut moved = me;
        moved.vel = Vector::new(1.0, 0.0);
        c.client_tick(2, &moved, &[], &mut up, &mut ops);
        assert_eq!(up.len(), 1);
    }
}
