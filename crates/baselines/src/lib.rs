//! Baseline moving-kNN monitoring methods the paper family compares against.
//!
//! * [`Centralized`] — SEA-CNN/CPM-style central processing: every device
//!   streams its location each tick it moves; the server maintains a grid
//!   index and re-evaluates every query every tick. Exact, maximally fresh,
//!   Θ(N) uplink messages per tick.
//! * [`Periodic`] — YPK-CNN-style lazy processing: devices report every
//!   `period` ticks (staggered); the server evaluates over its (stale) index
//!   each tick. Approximate between reports — its accuracy is *measured*,
//!   not asserted, by the harness.
//! * [`NaiveBroadcast`] — a per-tick probe strawman: the server probes an
//!   adaptive zone around each query every tick and rebuilds the answer from
//!   the replies. Exact, but pays the probe fan-out every tick even when
//!   nothing changes.

#![deny(missing_docs)]

mod centralized;
mod naive;
mod partitioned;
mod periodic;

pub use centralized::Centralized;
pub use naive::NaiveBroadcast;
pub use periodic::Periodic;
