//! The periodic (lazy) reporting baseline.

use crate::partitioned::PartitionedTier;
use mknn_geom::{ObjectId, Point, QueryId, Rect, Tick};
use mknn_mobility::MovingObject;
use mknn_net::{
    DownlinkMsg, OpCounters, Outbox, ProbeService, Protocol, QuerySpec, ServerPhase, UplinkMsg,
    Uplinks,
};

/// Periodic centralized monitoring (YPK-CNN-style): each device reports its
/// position every `period` ticks, staggered by device id so the uplink load
/// is flat; the server re-evaluates queries each tick over its
/// up-to-`period`-ticks-stale index.
///
/// Communication drops to `N / period` messages per tick, but answers are
/// only *approximate* between a device's reports — the experiment harness
/// measures the resulting error instead of asserting exactness
/// ([`Protocol::guarantees_exact`] is `false`).
///
/// The server side shares the [`PartitionedTier`] with [`crate::Centralized`]
/// — the two baselines differ only in the client reporting policy.
#[derive(Debug)]
pub struct Periodic {
    period: u64,
    tier: PartitionedTier,
    /// Per-device position at its last report (devices skip a scheduled
    /// report when they have not moved since).
    last_reported: Vec<Point>,
}

impl Periodic {
    /// Creates the baseline reporting every `period` ticks on a
    /// `grid_res × grid_res` index.
    pub fn new(period: u64, grid_res: u32) -> Self {
        assert!(period >= 1);
        Periodic {
            period,
            tier: PartitionedTier::new(grid_res),
            last_reported: Vec::new(),
        }
    }

    /// The configured reporting period.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl Protocol for Periodic {
    fn name(&self) -> &'static str {
        "periodic"
    }

    fn init(
        &mut self,
        bounds: Rect,
        objects: &[MovingObject],
        queries: &[QuerySpec],
        _probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.last_reported = objects.iter().map(|o| o.pos).collect();
        self.tier.init(bounds, objects, queries, ops);
    }

    fn client_tick(
        &mut self,
        tick: Tick,
        me: &MovingObject,
        _inbox: &[DownlinkMsg],
        up: &mut Uplinks,
        ops: &mut OpCounters,
    ) {
        ops.client_ops += 1;
        let scheduled = (tick + me.id.0 as u64).is_multiple_of(self.period);
        if scheduled && self.last_reported[me.id.index()] != me.pos {
            up.send(
                me.id,
                UplinkMsg::Position {
                    pos: me.pos,
                    vel: me.vel,
                },
            );
            self.last_reported[me.id.index()] = me.pos;
        }
    }

    fn client_phase(&mut self, ctx: &mknn_net::ClientCtx, up: &mut Uplinks, ops: &mut OpCounters) {
        // The only client state is the per-device last-reported position,
        // so chunks of that array are independent; merge in chunk order.
        let n = ctx.len();
        if ctx.pool.threads() <= 1 || n < mknn_net::PAR_MIN_DEVICES {
            for i in 0..n {
                if ctx.is_offline(i) {
                    continue;
                }
                let me = ctx.object(i);
                self.client_tick(ctx.tick, &me, &ctx.inboxes[i], up, ops);
            }
            return;
        }
        let period = self.period;
        let chunk = ctx.pool.chunk_size(n);
        let parts = ctx
            .pool
            .map_chunks_mut(&mut self.last_reported, chunk, |base, last| {
                let mut up_c = Uplinks::new();
                let mut ops_c = OpCounters::default();
                for (j, last_pos) in last.iter_mut().enumerate() {
                    let i = base + j;
                    if ctx.is_offline(i) {
                        continue;
                    }
                    let me = ctx.object(i);
                    ops_c.client_ops += 1;
                    let scheduled = (ctx.tick + me.id.0 as u64).is_multiple_of(period);
                    if scheduled && *last_pos != me.pos {
                        up_c.send(
                            me.id,
                            UplinkMsg::Position {
                                pos: me.pos,
                                vel: me.vel,
                            },
                        );
                        *last_pos = me.pos;
                    }
                }
                (up_c, ops_c)
            });
        for (mut up_c, ops_c) in parts {
            up.append(&mut up_c);
            *ops += ops_c;
        }
    }

    fn server_tick(
        &mut self,
        _tick: Tick,
        uplinks: &Uplinks,
        _probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        ops: &mut OpCounters,
    ) {
        self.tier.tick_monolithic(uplinks, ops);
    }

    fn server_phase(&mut self, phase: &mut ServerPhase<'_, '_>) {
        self.tier.server_phase(phase);
    }

    fn server_crash(&mut self, _shard: u32, block: Rect, queries: &[QueryId]) {
        // The crashed shard's slice of the (already stale) index is lost.
        // Devices only re-teach their entries on their staggered reporting
        // schedule — and skip it entirely while parked — so the crash hole
        // persists until the rebirth replay, on top of the baseline's
        // normal staleness.
        self.tier.crash(block, queries);
    }

    fn server_recover(&mut self, shard: u32, _block: Rect, replay: &[mknn_net::ObjReport]) {
        self.tier.recover(shard, replay);
    }

    fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.tier.answer(query)
    }

    fn effective_center(&self, query: QueryId) -> Option<Point> {
        self.tier.q_pos(query)
    }

    fn guarantees_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::{Circle, Vector};
    use mknn_net::ObjReport;

    struct NoProbe;
    impl ProbeService for NoProbe {
        fn probe(&mut self, _q: QueryId, _z: Circle, _e: ObjectId) -> Vec<ObjReport> {
            panic!("periodic must not probe")
        }
        fn poll(&mut self, _q: QueryId, _id: ObjectId) -> Option<ObjReport> {
            panic!("periodic must not poll")
        }
    }

    #[test]
    fn reports_only_on_schedule() {
        let mut p = Periodic::new(5, 8);
        let objects: Vec<MovingObject> = (0..3u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64, 0.0), 5.0))
            .collect();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 1,
        }];
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        p.init(
            Rect::square(100.0),
            &objects,
            &queries,
            &mut NoProbe,
            &mut outbox,
            &mut ops,
        );

        // Device 2 moves every tick but only reports when (tick + 2) % 5 == 0.
        let mut reported_at = Vec::new();
        for tick in 1..=10 {
            let mut up = Uplinks::new();
            let mut me = objects[2];
            me.pos = Point::new(2.0 + tick as f64, 0.0);
            me.vel = Vector::new(1.0, 0.0);
            p.client_tick(tick, &me, &[], &mut up, &mut ops);
            if !up.is_empty() {
                reported_at.push(tick);
            }
        }
        assert_eq!(reported_at, vec![3, 8]);
    }

    #[test]
    fn unmoved_device_skips_scheduled_report() {
        let mut p = Periodic::new(2, 8);
        let objects = vec![MovingObject::at(ObjectId(0), Point::ORIGIN, 5.0)];
        let queries: [QuerySpec; 0] = [];
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        p.init(
            Rect::square(100.0),
            &objects,
            &queries,
            &mut NoProbe,
            &mut outbox,
            &mut ops,
        );
        let mut up = Uplinks::new();
        p.client_tick(2, &objects[0], &[], &mut up, &mut ops);
        assert!(up.is_empty());
    }

    #[test]
    fn answers_are_stale_between_reports() {
        let mut p = Periodic::new(10, 8);
        let objects: Vec<MovingObject> = (0..4u32)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 10.0, 0.0), 5.0))
            .collect();
        let queries = [QuerySpec {
            id: QueryId(0),
            focal: ObjectId(0),
            k: 1,
        }];
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        p.init(
            Rect::square(100.0),
            &objects,
            &queries,
            &mut NoProbe,
            &mut outbox,
            &mut ops,
        );
        assert_eq!(p.answer(QueryId(0)), &[ObjectId(1)]);
        // Object 3 silently became closest; without a report the answer
        // must still be the stale one.
        let up = Uplinks::new();
        p.server_tick(1, &up, &mut NoProbe, &mut outbox, &mut ops);
        assert_eq!(p.answer(QueryId(0)), &[ObjectId(1)]);
        assert!(!p.guarantees_exact());
    }
}
