//! Spatial indexes for moving-object k-nearest-neighbor processing.
//!
//! Three index structures with identical query semantics:
//!
//! * [`GridIndex`] — a uniform in-memory grid, the workhorse of the
//!   server-side protocols (cheap `O(1)` updates under frequent movement,
//!   ring-expansion kNN, cell-population statistics used to size region
//!   expansion probes),
//! * [`RTree`] — an STR-bulk-loadable R-tree with best-first kNN and an
//!   incremental nearest-neighbor iterator (distance browsing), used for
//!   snapshot queries and as an independent implementation to cross-check the
//!   grid,
//! * [`KdTree`] — a static, implicitly-stored kd-tree for snapshot
//!   analytics and as a third cross-check,
//! * [`bruteforce`] — the `O(N)` oracle every other implementation is tested
//!   against.
//!
//! All kNN results use the canonical ordering *ascending `(distance², id)`*
//! so that independently computed answers are comparable element-by-element.

#![deny(missing_docs)]

pub mod bruteforce;
mod grid;
mod kdtree;
mod knn;
mod ordf64;
mod rtree;

pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use knn::{KnnCollector, Neighbor};
pub use ordf64::OrdF64;
pub use rtree::{NearestIter, RTree};
