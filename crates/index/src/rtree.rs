//! An R-tree over point objects.
//!
//! Supports one-by-one insertion (least-enlargement descent, quadratic
//! split), deletion with condensation, Sort-Tile-Recursive bulk loading, and
//! exact best-first kNN search. The tree serves snapshot queries and acts as
//! an independently implemented cross-check for the grid index.

use crate::{bruteforce, KnnCollector, Neighbor, OrdF64};
use mknn_geom::{Circle, ObjectId, Point, Rect};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 16;
/// Minimum entries per node before condensation (≤ MAX/2).
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq)]
struct LeafEntry {
    pos: Point,
    id: ObjectId,
}

#[derive(Debug, Clone)]
struct Child {
    mbr: Rect,
    node: Box<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<Child>),
}

impl Node {
    fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Leaf(es) => es
                .iter()
                .map(|e| Rect::from_point(e.pos))
                .reduce(|a, b| a.union(&b)),
            Node::Internal(cs) => cs.iter().map(|c| c.mbr).reduce(|a, b| a.union(&b)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Internal(cs) => cs.len(),
        }
    }
}

/// An R-tree mapping point positions to [`ObjectId`]s.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk-loads a tree from `(id, position)` pairs using Sort-Tile-
    /// Recursive packing. Produces a tree with near-full nodes, much better
    /// packed than one built by repeated insertion.
    pub fn bulk_load(mut items: Vec<(ObjectId, Point)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        items.sort_unstable_by(|a, b| {
            OrdF64(a.1.x)
                .cmp(&OrdF64(b.1.x))
                .then(OrdF64(a.1.y).cmp(&OrdF64(b.1.y)))
        });
        // Tile into vertical slices, then pack each slice bottom-up by y.
        // Chunk sizes are balanced (never a tiny trailing chunk) so that
        // every non-root node respects the minimum fill.
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for slice in even_chunks(&items, slices.max(1)) {
            let mut slice: Vec<_> = slice.to_vec();
            slice.sort_unstable_by(|a, b| {
                OrdF64(a.1.y)
                    .cmp(&OrdF64(b.1.y))
                    .then(OrdF64(a.1.x).cmp(&OrdF64(b.1.x)))
            });
            let chunks = slice.len().div_ceil(MAX_ENTRIES);
            for chunk in even_chunks(&slice, chunks.max(1)) {
                leaves.push(Node::Leaf(
                    chunk
                        .iter()
                        .map(|&(id, pos)| LeafEntry { pos, id })
                        .collect(),
                ));
            }
        }
        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let group_count = level.len().div_ceil(MAX_ENTRIES);
            let mut next = Vec::with_capacity(group_count);
            let mut it = level.into_iter();
            let sizes = even_chunk_sizes(it.len(), group_count);
            for size in sizes {
                let children: Vec<Child> = (&mut it)
                    .take(size)
                    .map(|node| {
                        let mbr = node.mbr().expect("packed node is non-empty");
                        Child {
                            mbr,
                            node: Box::new(node),
                        }
                    })
                    .collect();
                next.push(Node::Internal(children));
            }
            level = next;
        }
        RTree {
            root: level.pop().expect("at least one node"),
            len,
        }
    }

    /// Inserts an entry. Duplicate `(id, position)` pairs are stored
    /// verbatim; callers that need set semantics should `remove` first.
    pub fn insert(&mut self, id: ObjectId, pos: Point) {
        debug_assert!(pos.is_finite(), "position must be finite");
        if let Some(sibling) = insert_rec(&mut self.root, pos, id) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            let left_mbr = old_root.mbr().expect("split node non-empty");
            let right_mbr = sibling.mbr().expect("split sibling non-empty");
            self.root = Node::Internal(vec![
                Child {
                    mbr: left_mbr,
                    node: Box::new(old_root),
                },
                Child {
                    mbr: right_mbr,
                    node: Box::new(sibling),
                },
            ]);
        }
        self.len += 1;
    }

    /// Removes the entry `(id, pos)`. Returns `false` when absent.
    ///
    /// Underflowing nodes are dissolved and their remaining entries
    /// reinserted (R-tree condensation).
    pub fn remove(&mut self, id: ObjectId, pos: Point) -> bool {
        let mut orphans = Vec::new();
        let found = remove_rec(&mut self.root, pos, id, &mut orphans);
        if !found {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.len -= 1;
        // Shrink a root that lost all but one child.
        loop {
            match &mut self.root {
                Node::Internal(cs) if cs.len() == 1 => {
                    let only = cs.pop().expect("one child");
                    self.root = *only.node;
                }
                Node::Internal(cs) if cs.is_empty() => {
                    self.root = Node::Leaf(Vec::new());
                }
                _ => break,
            }
        }
        for e in orphans {
            // Reinsertion does not change len: these entries were never
            // counted as removed.
            if let Some(sibling) = insert_rec(&mut self.root, e.pos, e.id) {
                let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
                let left_mbr = old_root.mbr().expect("non-empty");
                let right_mbr = sibling.mbr().expect("non-empty");
                self.root = Node::Internal(vec![
                    Child {
                        mbr: left_mbr,
                        node: Box::new(old_root),
                    },
                    Child {
                        mbr: right_mbr,
                        node: Box::new(sibling),
                    },
                ]);
            }
        }
        true
    }

    /// The k nearest entries to `q`, in canonical order (ascending
    /// `(distance², id)`). Exact best-first traversal.
    pub fn knn(&self, q: Point, k: usize) -> Vec<Neighbor> {
        let mut coll = KnnCollector::new(k);
        if k == 0 || self.len == 0 {
            return coll.into_sorted();
        }
        // Min-heap keyed by (mindist², kind, id) — entries before nodes at
        // equal key so results drain deterministically.
        let mut heap: BinaryHeap<Reverse<HeapItem<'_>>> = BinaryHeap::new();
        heap.push(Reverse(HeapItem {
            key: OrdF64(self.root.mbr().map_or(0.0, |m| m.min_dist_sq(q))),
            kind: HeapKind::Node(&self.root),
        }));
        while let Some(Reverse(item)) = heap.pop() {
            if coll.is_full() && item.key.get() > coll.prune_bound_sq() {
                break;
            }
            match item.kind {
                HeapKind::Entry(id) => coll.offer(item.key.get(), id),
                HeapKind::Node(Node::Leaf(es)) => {
                    for e in es {
                        heap.push(Reverse(HeapItem {
                            key: OrdF64(e.pos.dist_sq(q)),
                            kind: HeapKind::Entry(e.id),
                        }));
                    }
                }
                HeapKind::Node(Node::Internal(cs)) => {
                    for c in cs {
                        heap.push(Reverse(HeapItem {
                            key: OrdF64(c.mbr.min_dist_sq(q)),
                            kind: HeapKind::Node(&c.node),
                        }));
                    }
                }
            }
        }
        coll.into_sorted()
    }

    /// An iterator yielding *all* entries in ascending `(distance², id)`
    /// order from `q` — incremental nearest-neighbor search (distance
    /// browsing). Pulling k items costs the same traversal work as
    /// [`RTree::knn`], but the consumer may stop — or keep going — at any
    /// point without choosing k up front.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_> {
        let mut heap = BinaryHeap::new();
        if self.len > 0 {
            heap.push(Reverse(HeapItem {
                key: OrdF64(self.root.mbr().map_or(0.0, |m| m.min_dist_sq(q))),
                kind: HeapKind::Node(&self.root),
            }));
        }
        NearestIter { heap, q }
    }

    /// All entries within `range` (boundary inclusive), in canonical order.
    pub fn range(&self, range: &Circle) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let r2 = range.radius * range.radius;
        range_rec(&self.root, range, r2, &mut out);
        out.sort_unstable_by_key(|a| (OrdF64(a.dist_sq), a.id));
        out
    }

    /// Iterates over all `(id, position)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        let mut stack = vec![&self.root];
        let mut pending: Vec<(ObjectId, Point)> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(e) = pending.pop() {
                return Some(e);
            }
            match stack.pop()? {
                Node::Leaf(es) => pending.extend(es.iter().map(|e| (e.id, e.pos))),
                Node::Internal(cs) => stack.extend(cs.iter().map(|c| c.node.as_ref())),
            }
        })
    }

    /// Height of the tree (a single leaf has height 1). Exposed for tests
    /// and diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(cs) = node {
            h += 1;
            node = &cs[0].node;
        }
        h
    }

    /// Validates structural invariants (MBR containment, fan-out bounds).
    /// Intended for tests; returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        check_rec(&self.root, true)?;
        let counted = self.iter().count();
        if counted != self.len {
            return Err(format!(
                "len {} but {} entries reachable",
                self.len, counted
            ));
        }
        Ok(())
    }

    /// Cross-checks this tree's kNN against the brute-force oracle.
    pub fn verify_knn(&self, q: Point, k: usize) -> bool {
        let got = self.knn(q, k);
        let want = bruteforce::knn(self.iter().collect::<Vec<_>>(), q, k);
        got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.id == b.id && a.dist_sq == b.dist_sq)
    }
}

/// Incremental nearest-neighbor iterator over an [`RTree`]; see
/// [`RTree::nearest_iter`].
#[derive(Debug)]
pub struct NearestIter<'a> {
    heap: BinaryHeap<Reverse<HeapItem<'a>>>,
    q: Point,
}

impl Iterator for NearestIter<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        while let Some(Reverse(item)) = self.heap.pop() {
            match item.kind {
                HeapKind::Entry(id) => {
                    return Some(Neighbor {
                        dist_sq: item.key.get(),
                        id,
                    });
                }
                HeapKind::Node(Node::Leaf(es)) => {
                    for e in es {
                        self.heap.push(Reverse(HeapItem {
                            key: OrdF64(e.pos.dist_sq(self.q)),
                            kind: HeapKind::Entry(e.id),
                        }));
                    }
                }
                HeapKind::Node(Node::Internal(cs)) => {
                    for c in cs {
                        self.heap.push(Reverse(HeapItem {
                            key: OrdF64(c.mbr.min_dist_sq(self.q)),
                            kind: HeapKind::Node(&c.node),
                        }));
                    }
                }
            }
        }
        None
    }
}

#[derive(Debug)]
enum HeapKind<'a> {
    Node(&'a Node),
    Entry(ObjectId),
}

#[derive(Debug)]
struct HeapItem<'a> {
    key: OrdF64,
    kind: HeapKind<'a>,
}

impl HeapItem<'_> {
    /// Rank for deterministic ordering at equal keys: nodes expand before
    /// entries drain (so an exact distance tie hidden in a subtree cannot be
    /// out-ordered), then entries in ascending id order.
    fn rank(&self) -> (u8, u32) {
        match self.kind {
            HeapKind::Node(_) => (0, 0),
            HeapKind::Entry(id) => (1, id.0),
        }
    }
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.rank() == other.rank()
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.rank()).cmp(&(other.key, other.rank()))
    }
}

/// Sizes of `count` balanced chunks covering `n` items (each size differs by
/// at most one, none empty for `count ≤ n`).
fn even_chunk_sizes(n: usize, count: usize) -> impl Iterator<Item = usize> {
    let count = count.min(n.max(1)).max(1);
    let base = n / count;
    let rem = n % count;
    (0..count).map(move |i| base + usize::from(i < rem))
}

/// Splits `items` into balanced contiguous chunks.
fn even_chunks<T>(items: &[T], count: usize) -> impl Iterator<Item = &[T]> {
    let mut rest = items;
    even_chunk_sizes(items.len(), count).map(move |size| {
        let (head, tail) = rest.split_at(size);
        rest = tail;
        head
    })
}

/// Inserts into `node`; on overflow splits it in place and returns the new
/// sibling.
fn insert_rec(node: &mut Node, pos: Point, id: ObjectId) -> Option<Node> {
    match node {
        Node::Leaf(es) => {
            es.push(LeafEntry { pos, id });
            if es.len() > MAX_ENTRIES {
                let items = std::mem::take(es);
                let (a, b) = quadratic_split(items, |e| Rect::from_point(e.pos));
                *es = a;
                Some(Node::Leaf(b))
            } else {
                None
            }
        }
        Node::Internal(cs) => {
            let best = choose_subtree(cs, pos);
            let split = insert_rec(&mut cs[best].node, pos, id);
            cs[best].mbr = cs[best].node.mbr().expect("child non-empty");
            if let Some(sibling) = split {
                let mbr = sibling.mbr().expect("sibling non-empty");
                cs.push(Child {
                    mbr,
                    node: Box::new(sibling),
                });
            }
            if cs.len() > MAX_ENTRIES {
                let items = std::mem::take(cs);
                let (a, b) = quadratic_split(items, |c| c.mbr);
                *cs = a;
                Some(Node::Internal(b))
            } else {
                None
            }
        }
    }
}

/// Classic R-tree subtree choice: least area enlargement, then least area.
fn choose_subtree(cs: &[Child], pos: Point) -> usize {
    let mut best = 0;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, c) in cs.iter().enumerate() {
        let enlarged = c.mbr.union_point(pos);
        let key = (enlarged.area() - c.mbr.area(), c.mbr.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Guttman's quadratic split.
fn quadratic_split<T>(mut items: Vec<T>, rect_of: impl Fn(&T) -> Rect) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() >= 2);
    // Pick the two seeds wasting the most area when paired.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let ri = rect_of(&items[i]);
            let rj = rect_of(&items[j]);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the later index first so the earlier stays valid (s1 < s2, and
    // s1 can never be the swapped-in last element).
    let seed2 = items.swap_remove(s2);
    let seed1 = items.swap_remove(s1);
    let mut g1 = vec![seed1];
    let mut g2 = vec![seed2];
    let mut r1 = rect_of(&g1[0]);
    let mut r2 = rect_of(&g2[0]);
    while let Some(item) = items.pop() {
        // Force-assign when one group must absorb the entire remainder to
        // reach the minimum fill. `g.len() + remaining` decreases by at most
        // one per iteration, so testing equality catches it exactly once and
        // then keeps routing every further item to the same group.
        let remaining = items.len() + 1;
        if g1.len() + remaining == MIN_ENTRIES {
            r1 = r1.union(&rect_of(&item));
            g1.push(item);
            continue;
        }
        if g2.len() + remaining == MIN_ENTRIES {
            r2 = r2.union(&rect_of(&item));
            g2.push(item);
            continue;
        }
        let r = rect_of(&item);
        let d1 = r1.union(&r).area() - r1.area();
        let d2 = r2.union(&r).area() - r2.area();
        let to_first = d1 < d2
            || (d1 == d2
                && (r1.area() < r2.area() || (r1.area() == r2.area() && g1.len() <= g2.len())));
        if to_first {
            r1 = r1.union(&r);
            g1.push(item);
        } else {
            r2 = r2.union(&r);
            g2.push(item);
        }
    }
    (g1, g2)
}

/// Removes `(id, pos)` below `node`. Dissolved-underflow leaf entries are
/// appended to `orphans` for reinsertion. Returns whether the entry was
/// found.
fn remove_rec(node: &mut Node, pos: Point, id: ObjectId, orphans: &mut Vec<LeafEntry>) -> bool {
    match node {
        Node::Leaf(es) => {
            if let Some(i) = es.iter().position(|e| e.id == id && e.pos == pos) {
                es.swap_remove(i);
                true
            } else {
                false
            }
        }
        Node::Internal(cs) => {
            for i in 0..cs.len() {
                if !cs[i].mbr.contains(pos) {
                    continue;
                }
                if remove_rec(&mut cs[i].node, pos, id, orphans) {
                    if cs[i].node.len() < MIN_ENTRIES {
                        // Dissolve the underflowing child.
                        let child = cs.swap_remove(i);
                        collect_entries(*child.node, orphans);
                    } else {
                        cs[i].mbr = cs[i].node.mbr().expect("non-empty child");
                    }
                    return true;
                }
            }
            false
        }
    }
}

fn collect_entries(node: Node, out: &mut Vec<LeafEntry>) {
    match node {
        Node::Leaf(es) => out.extend(es),
        Node::Internal(cs) => {
            for c in cs {
                collect_entries(*c.node, out);
            }
        }
    }
}

fn range_rec(node: &Node, range: &Circle, r2: f64, out: &mut Vec<Neighbor>) {
    match node {
        Node::Leaf(es) => {
            for e in es {
                let d2 = e.pos.dist_sq(range.center);
                if d2 <= r2 {
                    out.push(Neighbor {
                        dist_sq: d2,
                        id: e.id,
                    });
                }
            }
        }
        Node::Internal(cs) => {
            for c in cs {
                if c.mbr.intersects_circle(range) {
                    range_rec(&c.node, range, r2, out);
                }
            }
        }
    }
}

fn check_rec(node: &Node, is_root: bool) -> Result<usize, String> {
    match node {
        Node::Leaf(es) => {
            if !is_root && es.len() < MIN_ENTRIES {
                return Err(format!("leaf underflow: {} entries", es.len()));
            }
            if es.len() > MAX_ENTRIES {
                return Err(format!("leaf overflow: {} entries", es.len()));
            }
            Ok(1)
        }
        Node::Internal(cs) => {
            if cs.is_empty() || (!is_root && cs.len() < MIN_ENTRIES) || cs.len() > MAX_ENTRIES {
                return Err(format!("internal fan-out {} out of bounds", cs.len()));
            }
            let mut depth = None;
            for c in cs {
                let actual = c.node.mbr().ok_or("empty child node")?;
                if !c.mbr.contains_rect(&actual) {
                    return Err(format!(
                        "stored MBR {:?} does not cover {:?}",
                        c.mbr, actual
                    ));
                }
                let d = check_rec(&c.node, false)?;
                if *depth.get_or_insert(d) != d {
                    return Err("unbalanced tree".into());
                }
            }
            Ok(depth.unwrap_or(0) + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: u32) -> Vec<(ObjectId, Point)> {
        // Deterministic pseudo-random scatter (LCG).
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((state >> 33) % 10_000) as f64 / 10.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((state >> 33) % 10_000) as f64 / 10.0;
                (ObjectId(i), Point::new(x, y))
            })
            .collect()
    }

    #[test]
    fn insert_then_knn_matches_oracle() {
        let mut t = RTree::new();
        for (id, p) in cloud(300) {
            t.insert(id, p);
        }
        t.check_invariants().unwrap();
        for k in [1, 3, 10, 50] {
            assert!(t.verify_knn(Point::new(500.0, 500.0), k), "k = {k}");
            assert!(
                t.verify_knn(Point::new(-100.0, 2000.0), k),
                "outside, k = {k}"
            );
        }
    }

    #[test]
    fn bulk_load_matches_oracle() {
        let t = RTree::bulk_load(cloud(1000));
        assert_eq!(t.len(), 1000);
        t.check_invariants().unwrap();
        for k in [1, 7, 64] {
            assert!(t.verify_knn(Point::new(123.0, 456.0), k));
        }
    }

    #[test]
    fn bulk_load_is_packed() {
        let t = RTree::bulk_load(cloud(1000));
        let by_insert = {
            let mut t = RTree::new();
            for (id, p) in cloud(1000) {
                t.insert(id, p);
            }
            t
        };
        assert!(t.height() <= by_insert.height());
        assert!(t.height() <= 4, "1000 points should pack into ≤ 4 levels");
    }

    #[test]
    fn remove_deletes_and_condenses() {
        let mut t = RTree::new();
        let pts = cloud(200);
        for &(id, p) in &pts {
            t.insert(id, p);
        }
        for &(id, p) in pts.iter().take(150) {
            assert!(t.remove(id, p), "remove {id}");
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 50);
        assert!(t.verify_knn(Point::new(500.0, 500.0), 10));
        // Removing something absent fails cleanly.
        assert!(!t.remove(ObjectId(0), pts[0].1));
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let mut t = RTree::new();
        let pts = cloud(40);
        for &(id, p) in &pts {
            t.insert(id, p);
        }
        for &(id, p) in &pts {
            assert!(t.remove(id, p));
        }
        assert!(t.is_empty());
        t.insert(ObjectId(0), Point::new(1.0, 1.0));
        assert_eq!(t.knn(Point::ORIGIN, 1)[0].id, ObjectId(0));
    }

    #[test]
    fn range_matches_bruteforce() {
        let pts = cloud(500);
        let t = RTree::bulk_load(pts.clone());
        let c = Circle::new(Point::new(400.0, 600.0), 250.0);
        let got = t.range(&c);
        let want = bruteforce::range(pts, &c);
        assert_eq!(got.len(), want.len());
        assert!(got.iter().zip(&want).all(|(a, b)| a.id == b.id));
    }

    #[test]
    fn empty_tree_queries() {
        let t = RTree::new();
        assert!(t.knn(Point::ORIGIN, 5).is_empty());
        assert!(t.range(&Circle::new(Point::ORIGIN, 100.0)).is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_positions_are_all_found() {
        let mut t = RTree::new();
        for i in 0..20u32 {
            t.insert(ObjectId(i), Point::new(5.0, 5.0));
        }
        let nn = t.knn(Point::new(5.0, 5.0), 20);
        assert_eq!(nn.len(), 20);
        // Canonical order breaks the all-equal-distance tie by id.
        assert!(nn.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn nearest_iter_yields_canonical_order() {
        let pts = cloud(400);
        let t = RTree::bulk_load(pts.clone());
        let q = Point::new(321.0, 654.0);
        let all: Vec<_> = t.nearest_iter(q).collect();
        assert_eq!(all.len(), 400);
        let want = bruteforce::knn(pts, q, 400);
        for (a, b) in all.iter().zip(&want) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.dist_sq, b.dist_sq);
        }
    }

    #[test]
    fn nearest_iter_can_stop_early_and_matches_knn() {
        let t = RTree::bulk_load(cloud(300));
        let q = Point::new(10.0, 990.0);
        let first7: Vec<_> = t.nearest_iter(q).take(7).collect();
        let knn7 = t.knn(q, 7);
        assert_eq!(
            first7.iter().map(|n| n.id).collect::<Vec<_>>(),
            knn7.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nearest_iter_on_empty_tree() {
        let t = RTree::new();
        assert_eq!(t.nearest_iter(Point::ORIGIN).count(), 0);
    }

    #[test]
    fn single_entry_bulk_load() {
        let t = RTree::bulk_load(vec![(ObjectId(0), Point::new(3.0, 4.0))]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.knn(Point::ORIGIN, 1)[0].dist_sq, 25.0);
    }
}
