//! A totally ordered wrapper for finite `f64` values.

use std::cmp::Ordering;

/// An `f64` with a total order, for use as a heap/sort key.
///
/// Distances in this workspace are always finite and non-NaN (coordinates are
/// validated at world construction), so the total order simply delegates to
/// `partial_cmp`; a NaN is a programming error and panics in debug builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert!(!self.0.is_nan() && !other.0.is_nan(), "NaN distance");
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_like_f64() {
        let mut v = vec![OrdF64(3.0), OrdF64(-1.0), OrdF64(2.5)];
        v.sort();
        assert_eq!(v, vec![OrdF64(-1.0), OrdF64(2.5), OrdF64(3.0)]);
    }

    #[test]
    fn works_in_heaps() {
        let mut h = std::collections::BinaryHeap::new();
        h.push(OrdF64(1.0));
        h.push(OrdF64(9.0));
        h.push(OrdF64(4.0));
        assert_eq!(h.pop(), Some(OrdF64(9.0)));
    }
}
