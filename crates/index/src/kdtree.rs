//! A static kd-tree over point objects.
//!
//! Built once over a snapshot in `O(N log N)` (median-of-medians via
//! `select_nth_unstable`), answering kNN and range queries in `O(log N + k)`
//! expected time. The protocols don't use it online (they need cheap
//! updates, which the grid provides); it serves snapshot analytics, the
//! experiment tooling, and as a third independently-implemented kNN to
//! cross-check the grid and the R-tree against.

use crate::{bruteforce, KnnCollector, Neighbor, OrdF64};
use mknn_geom::{Circle, ObjectId, Point};

#[derive(Debug, Clone, Copy)]
struct Item {
    pos: Point,
    id: ObjectId,
}

/// A balanced, implicitly-stored kd-tree (array layout, no per-node
/// allocation).
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Items in kd order: the median of each subrange is its subtree root.
    items: Vec<Item>,
}

impl KdTree {
    /// Builds the tree from a snapshot.
    pub fn build(points: Vec<(ObjectId, Point)>) -> Self {
        let mut items: Vec<Item> = points
            .into_iter()
            .map(|(id, pos)| Item { pos, id })
            .collect();
        if !items.is_empty() {
            build_rec(&mut items, 0);
        }
        KdTree { items }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The k nearest points to `q`, in canonical order (ascending
    /// `(distance², id)`).
    pub fn knn(&self, q: Point, k: usize) -> Vec<Neighbor> {
        let mut coll = KnnCollector::new(k);
        if k > 0 && !self.items.is_empty() {
            knn_rec(&self.items, 0, q, &mut coll);
        }
        coll.into_sorted()
    }

    /// All points within `range` (boundary inclusive), in canonical order.
    pub fn range(&self, range: &Circle) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if !self.items.is_empty() {
            range_rec(&self.items, 0, range, range.radius * range.radius, &mut out);
        }
        out.sort_unstable_by_key(|a| (OrdF64(a.dist_sq), a.id));
        out
    }

    /// Cross-checks against the brute-force oracle (tests).
    pub fn verify_knn(&self, q: Point, k: usize) -> bool {
        let got = self.knn(q, k);
        let want = bruteforce::knn(self.items.iter().map(|i| (i.id, i.pos)), q, k);
        got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.id == b.id && a.dist_sq == b.dist_sq)
    }
}

#[inline]
fn axis_key(p: Point, axis: usize) -> f64 {
    if axis == 0 {
        p.x
    } else {
        p.y
    }
}

fn build_rec(items: &mut [Item], depth: usize) {
    if items.len() <= 1 {
        return;
    }
    let axis = depth % 2;
    let mid = items.len() / 2;
    items.select_nth_unstable_by(mid, |a, b| {
        OrdF64(axis_key(a.pos, axis))
            .cmp(&OrdF64(axis_key(b.pos, axis)))
            .then(a.id.cmp(&b.id))
    });
    let (left, rest) = items.split_at_mut(mid);
    build_rec(left, depth + 1);
    build_rec(&mut rest[1..], depth + 1);
}

fn knn_rec(items: &[Item], depth: usize, q: Point, coll: &mut KnnCollector) {
    if items.is_empty() {
        return;
    }
    let axis = depth % 2;
    let mid = items.len() / 2;
    let node = items[mid];
    coll.offer(node.pos.dist_sq(q), node.id);
    let diff = axis_key(q, axis) - axis_key(node.pos, axis);
    let (near, far) = if diff <= 0.0 {
        (&items[..mid], &items[mid + 1..])
    } else {
        (&items[mid + 1..], &items[..mid])
    };
    knn_rec(near, depth + 1, q, coll);
    // Visit the far side only if the splitting plane is within reach (ties
    // included: equal distance may still win via the id tie-break).
    if diff * diff <= coll.prune_bound_sq() {
        knn_rec(far, depth + 1, q, coll);
    }
}

fn range_rec(items: &[Item], depth: usize, range: &Circle, r2: f64, out: &mut Vec<Neighbor>) {
    if items.is_empty() {
        return;
    }
    let axis = depth % 2;
    let mid = items.len() / 2;
    let node = items[mid];
    let d2 = node.pos.dist_sq(range.center);
    if d2 <= r2 {
        out.push(Neighbor {
            dist_sq: d2,
            id: node.id,
        });
    }
    let diff = axis_key(range.center, axis) - axis_key(node.pos, axis);
    if diff <= range.radius {
        range_rec(&items[..mid], depth + 1, range, r2, out);
    }
    if -diff <= range.radius {
        range_rec(&items[mid + 1..], depth + 1, range, r2, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: u32) -> Vec<(ObjectId, Point)> {
        let mut state = 0xDEADBEEFu64;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let x = ((state >> 33) % 1000) as f64;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let y = ((state >> 33) % 1000) as f64;
                (ObjectId(i), Point::new(x, y))
            })
            .collect()
    }

    #[test]
    fn knn_matches_oracle() {
        let t = KdTree::build(cloud(500));
        for k in [1, 5, 17, 100] {
            assert!(t.verify_knn(Point::new(500.0, 500.0), k), "k = {k}");
            assert!(
                t.verify_knn(Point::new(-50.0, 1200.0), k),
                "outside, k = {k}"
            );
        }
    }

    #[test]
    fn range_matches_oracle() {
        let pts = cloud(400);
        let t = KdTree::build(pts.clone());
        let c = Circle::new(Point::new(300.0, 700.0), 180.0);
        let got = t.range(&c);
        let want = bruteforce::range(pts, &c);
        assert_eq!(got.len(), want.len());
        assert!(got.iter().zip(&want).all(|(a, b)| a.id == b.id));
    }

    #[test]
    fn empty_and_single() {
        let t = KdTree::build(vec![]);
        assert!(t.is_empty());
        assert!(t.knn(Point::ORIGIN, 3).is_empty());
        let t = KdTree::build(vec![(ObjectId(9), Point::new(1.0, 2.0))]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.knn(Point::ORIGIN, 3)[0].id, ObjectId(9));
    }

    #[test]
    fn duplicate_coordinates() {
        let pts: Vec<_> = (0..50)
            .map(|i| (ObjectId(i), Point::new(5.0, 5.0)))
            .collect();
        let t = KdTree::build(pts);
        let nn = t.knn(Point::new(5.0, 5.0), 50);
        assert_eq!(nn.len(), 50);
        assert!(nn.windows(2).all(|w| w[0].id < w[1].id), "tie-break by id");
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<_> = (0..100)
            .map(|i| (ObjectId(i), Point::new(i as f64, 0.0)))
            .collect();
        let t = KdTree::build(pts);
        assert!(t.verify_knn(Point::new(37.4, 0.0), 7));
    }
}
