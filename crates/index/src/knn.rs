//! A bounded best-k collector.

use crate::OrdF64;
use mknn_geom::ObjectId;
use std::collections::BinaryHeap;

/// One kNN result: an object and its squared distance from the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance to the query point.
    pub dist_sq: f64,
    /// The neighbor's identity.
    pub id: ObjectId,
}

impl Neighbor {
    /// Euclidean distance to the query point.
    #[inline]
    pub fn dist(&self) -> f64 {
        self.dist_sq.sqrt()
    }
}

/// Collects the k nearest candidates seen so far, with deterministic
/// tie-breaking on `(distance², id)`.
///
/// Internally a bounded max-heap: `offer` is `O(log k)` and the current k-th
/// distance (the pruning bound for index traversals) is `O(1)`.
#[derive(Debug, Clone)]
pub struct KnnCollector {
    k: usize,
    heap: BinaryHeap<(OrdF64, ObjectId)>,
}

impl KnnCollector {
    /// Creates a collector for the `k` nearest. `k = 0` collects nothing.
    pub fn new(k: usize) -> Self {
        KnnCollector {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it is among the best k seen.
    #[inline]
    pub fn offer(&mut self, dist_sq: f64, id: ObjectId) {
        if self.k == 0 {
            return;
        }
        let key = (OrdF64(dist_sq), id);
        if self.heap.len() < self.k {
            self.heap.push(key);
        } else if key < *self.heap.peek().expect("non-empty at capacity") {
            self.heap.pop();
            self.heap.push(key);
        }
    }

    /// Squared distance of the current k-th best candidate, or
    /// `f64::INFINITY` while fewer than k candidates have been offered.
    ///
    /// Any candidate (or index subtree) at squared distance strictly greater
    /// than this bound cannot enter the result and may be pruned. Ties are
    /// *not* prunable because the id tie-break may still admit them.
    #[inline]
    pub fn prune_bound_sq(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap
                .peek()
                .map(|(d, _)| d.get())
                .unwrap_or(f64::INFINITY)
        }
    }

    /// Number of candidates currently held (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no candidate has been kept.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` when k candidates have been collected.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Consumes the collector, returning neighbors in canonical order
    /// (ascending `(distance², id)`).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<_> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter()
            .map(|(d, id)| Neighbor {
                dist_sq: d.get(),
                id,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[Neighbor]) -> Vec<u32> {
        v.iter().map(|n| n.id.0).collect()
    }

    #[test]
    fn keeps_k_smallest() {
        let mut c = KnnCollector::new(3);
        for (i, d) in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0].iter().enumerate() {
            c.offer(*d, ObjectId(i as u32));
        }
        let out = c.into_sorted();
        assert_eq!(ids(&out), vec![1, 5, 3]);
        assert_eq!(out[0].dist_sq, 1.0);
        assert_eq!(out[2].dist_sq, 3.0);
    }

    #[test]
    fn prune_bound_tracks_kth() {
        let mut c = KnnCollector::new(2);
        assert_eq!(c.prune_bound_sq(), f64::INFINITY);
        c.offer(4.0, ObjectId(0));
        assert_eq!(c.prune_bound_sq(), f64::INFINITY); // not yet full
        c.offer(9.0, ObjectId(1));
        assert_eq!(c.prune_bound_sq(), 9.0);
        c.offer(1.0, ObjectId(2));
        assert_eq!(c.prune_bound_sq(), 4.0);
    }

    #[test]
    fn ties_break_by_smaller_id() {
        let mut c = KnnCollector::new(1);
        c.offer(5.0, ObjectId(9));
        c.offer(5.0, ObjectId(2));
        let out = c.into_sorted();
        assert_eq!(ids(&out), vec![2]);
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut c = KnnCollector::new(0);
        c.offer(1.0, ObjectId(0));
        assert!(c.is_empty());
        assert!(c.into_sorted().is_empty());
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut c = KnnCollector::new(5);
        c.offer(2.0, ObjectId(0));
        c.offer(1.0, ObjectId(1));
        assert!(!c.is_full());
        let out = c.into_sorted();
        assert_eq!(ids(&out), vec![1, 0]);
    }

    #[test]
    fn dist_is_sqrt() {
        let n = Neighbor {
            dist_sq: 25.0,
            id: ObjectId(0),
        };
        assert_eq!(n.dist(), 5.0);
    }
}
