//! A uniform grid index over point objects.
//!
//! The grid is the server-side index of every protocol in this workspace:
//! location updates are `O(1)` (remove from one cell's vector, push into
//! another), kNN is answered by expanding square rings of cells around the
//! query cell, and cell population counts provide the statistics used to
//! size region-expansion probes.

use crate::{bruteforce, KnnCollector, Neighbor};
use mknn_geom::{Circle, ObjectId, Point, Rect};

#[derive(Debug, Clone, Copy)]
struct Slot {
    pos: Point,
    cell: u32,
    /// Index of this object inside its cell's member vector, maintained
    /// under swap-removal so that updates never scan a cell.
    idx: u32,
}

/// A uniform grid over a bounded rectangle of space.
///
/// Objects outside the bounds are tolerated: they are clamped into the
/// nearest boundary cell, and all distance computations use true positions,
/// so results remain exact.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bounds: Rect,
    cols: u32,
    rows: u32,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<ObjectId>>,
    slots: Vec<Option<Slot>>,
    len: usize,
}

impl GridIndex {
    /// Creates an empty grid of `cols × rows` cells over `bounds`.
    ///
    /// # Panics
    /// Panics when `cols` or `rows` is zero or `bounds` is degenerate.
    pub fn new(bounds: Rect, cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "bounds must have area"
        );
        GridIndex {
            bounds,
            cols,
            rows,
            cell_w: bounds.width() / cols as f64,
            cell_h: bounds.height() / rows as f64,
            cells: vec![Vec::new(); (cols * rows) as usize],
            slots: Vec::new(),
            len: 0,
        }
    }

    /// The space bounds this grid covers.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Grid resolution as `(cols, rows)`.
    #[inline]
    pub fn resolution(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Number of objects currently indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the grid holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column/row of the cell containing `p` (clamped into the grid).
    #[inline]
    fn cell_coords(&self, p: Point) -> (u32, u32) {
        let cx = ((p.x - self.bounds.min.x) / self.cell_w).floor();
        let cy = ((p.y - self.bounds.min.y) / self.cell_h).floor();
        let cx = (cx.max(0.0) as u32).min(self.cols - 1);
        let cy = (cy.max(0.0) as u32).min(self.rows - 1);
        (cx, cy)
    }

    #[inline]
    fn cell_index(&self, cx: u32, cy: u32) -> u32 {
        cy * self.cols + cx
    }

    /// Identifier of the cell containing `p`; stable for the grid's lifetime.
    #[inline]
    pub fn cell_of(&self, p: Point) -> u32 {
        let (cx, cy) = self.cell_coords(p);
        self.cell_index(cx, cy)
    }

    /// The rectangle of cell `cell`.
    pub fn cell_rect(&self, cell: u32) -> Rect {
        let cx = (cell % self.cols) as f64;
        let cy = (cell / self.cols) as f64;
        Rect::from_coords(
            self.bounds.min.x + cx * self.cell_w,
            self.bounds.min.y + cy * self.cell_h,
            self.bounds.min.x + (cx + 1.0) * self.cell_w,
            self.bounds.min.y + (cy + 1.0) * self.cell_h,
        )
    }

    /// Current position of `id`, if indexed.
    #[inline]
    pub fn position(&self, id: ObjectId) -> Option<Point> {
        self.slots.get(id.index()).and_then(|s| s.map(|s| s.pos))
    }

    /// Inserts `id` at `pos`, or moves it when already present.
    pub fn upsert(&mut self, id: ObjectId, pos: Point) {
        debug_assert!(pos.is_finite(), "position must be finite");
        if id.index() >= self.slots.len() {
            self.slots.resize(id.index() + 1, None);
        }
        let cell = self.cell_of(pos);
        match self.slots[id.index()] {
            Some(mut slot) if slot.cell == cell => {
                slot.pos = pos;
                self.slots[id.index()] = Some(slot);
            }
            Some(slot) => {
                self.detach(id, slot);
                self.attach(id, pos, cell);
            }
            None => {
                self.attach(id, pos, cell);
                self.len += 1;
            }
        }
    }

    /// Builds a grid from a full population in one pass over the data per
    /// phase: count per cell, reserve exactly, then attach in input order.
    ///
    /// The result is structurally identical to creating an empty grid and
    /// `upsert`ing every `(id, pos)` pair in input order — same cell member
    /// order, same slot table — so callers may switch between the two
    /// freely without perturbing anything observable (the bulk path just
    /// skips the per-object branchwork and reallocation churn, which is
    /// what the per-tick oracle rebuild and episode setup want at N = 10⁶).
    ///
    /// Ids must be unique; positions must be finite.
    ///
    /// # Panics
    /// As [`GridIndex::new`]; additionally (debug only) on duplicate ids.
    pub fn bulk_load<I>(bounds: Rect, cols: u32, rows: u32, items: I) -> Self
    where
        I: IntoIterator<Item = (ObjectId, Point)> + Clone,
    {
        let mut grid = GridIndex::new(bounds, cols, rows);
        let mut counts = vec![0u32; (cols * rows) as usize];
        let mut max_index = 0usize;
        let mut n = 0usize;
        for (id, pos) in items.clone() {
            debug_assert!(pos.is_finite(), "position must be finite");
            counts[grid.cell_of(pos) as usize] += 1;
            max_index = max_index.max(id.index());
            n += 1;
        }
        if n == 0 {
            return grid;
        }
        for (cell, &count) in counts.iter().enumerate() {
            grid.cells[cell].reserve_exact(count as usize);
        }
        grid.slots.resize(max_index + 1, None);
        for (id, pos) in items {
            debug_assert!(
                grid.slots[id.index()].is_none(),
                "bulk_load ids must be unique"
            );
            let cell = grid.cell_of(pos);
            grid.attach(id, pos, cell);
        }
        grid.len = n;
        grid
    }

    /// Removes `id`, returning its last indexed position.
    pub fn remove(&mut self, id: ObjectId) -> Option<Point> {
        let slot = self.slots.get_mut(id.index())?.take()?;
        self.detach(id, slot);
        self.len -= 1;
        Some(slot.pos)
    }

    fn attach(&mut self, id: ObjectId, pos: Point, cell: u32) {
        let members = &mut self.cells[cell as usize];
        members.push(id);
        self.slots[id.index()] = Some(Slot {
            pos,
            cell,
            idx: (members.len() - 1) as u32,
        });
    }

    fn detach(&mut self, id: ObjectId, slot: Slot) {
        let members = &mut self.cells[slot.cell as usize];
        debug_assert_eq!(members[slot.idx as usize], id);
        members.swap_remove(slot.idx as usize);
        if let Some(&moved) = members.get(slot.idx as usize) {
            if let Some(ms) = self.slots[moved.index()].as_mut() {
                ms.idx = slot.idx;
            }
        }
    }

    /// Iterates over all indexed `(id, position)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (ObjectId(i as u32), s.pos)))
    }

    /// Visits the cells of the Chebyshev ring at distance `ring` around
    /// `(cx, cy)`, clipped to the grid.
    fn for_ring_cells(&self, cx: u32, cy: u32, ring: i64, mut f: impl FnMut(u32)) {
        let (cx, cy) = (cx as i64, cy as i64);
        if ring == 0 {
            f(self.cell_index(cx as u32, cy as u32));
            return;
        }
        let (cols, rows) = (self.cols as i64, self.rows as i64);
        let x0 = cx - ring;
        let x1 = cx + ring;
        let y0 = cy - ring;
        let y1 = cy + ring;
        // Top and bottom rows of the ring.
        for y in [y0, y1] {
            if (0..rows).contains(&y) {
                for x in x0.max(0)..=x1.min(cols - 1) {
                    f(self.cell_index(x as u32, y as u32));
                }
            }
        }
        // Left and right columns, excluding the corners already visited.
        for x in [x0, x1] {
            if (0..cols).contains(&x) {
                for y in (y0 + 1).max(0)..=(y1 - 1).min(rows - 1) {
                    f(self.cell_index(x as u32, y as u32));
                }
            }
        }
    }

    /// The k nearest indexed objects to `q`, in canonical order.
    ///
    /// Expands square rings of cells outward from the query cell and stops as
    /// soon as the next ring's distance lower bound exceeds the current k-th
    /// distance. Exact for any query point, including points outside the
    /// grid bounds.
    pub fn knn(&self, q: Point, k: usize) -> Vec<Neighbor> {
        self.knn_counted(q, k).0
    }

    /// Like [`GridIndex::knn`], additionally returning the work performed
    /// (cells visited plus distance computations) — the hardware-independent
    /// server-load proxy used by the experiments.
    pub fn knn_counted(&self, q: Point, k: usize) -> (Vec<Neighbor>, u64) {
        GridIndex::knn_counted_multi(&[self], q, k)
    }

    /// [`GridIndex::knn_counted`] over the disjoint union of several
    /// partitions of one logical index.
    ///
    /// All `parts` must share the same geometry (bounds and resolution) and
    /// hold disjoint object sets; each grid cell's logical member multiset is
    /// the union of that cell's members across the parts. The traversal is
    /// the standard ring expansion — a visited cell is counted **once**, not
    /// once per part — so the returned work count depends only on the
    /// per-cell member multisets, never on how objects are distributed over
    /// the parts. A partitioned server tier therefore reports answers *and*
    /// op counts byte-identical to the monolithic index
    /// (`knn_counted_multi(&[whole], ..) == whole.knn_counted(..)`, which is
    /// how the single-index path is implemented).
    pub fn knn_counted_multi(parts: &[&GridIndex], q: Point, k: usize) -> (Vec<Neighbor>, u64) {
        let mut ops = 0u64;
        let mut coll = KnnCollector::new(k);
        let geo = parts.first().expect("at least one partition");
        debug_assert!(parts
            .iter()
            .all(|p| p.bounds == geo.bounds && p.cols == geo.cols && p.rows == geo.rows));
        let total: usize = parts.iter().map(|p| p.len).sum();
        if total == 0 || k == 0 {
            return (coll.into_sorted(), ops);
        }
        let (qc, qr) = geo.cell_coords(q);
        let min_dim = geo.cell_w.min(geo.cell_h);
        // Rings beyond this cover no cells.
        let max_ring = (geo.cols.max(geo.rows)) as i64;
        let mut seen = 0usize;
        for ring in 0..=max_ring {
            // Any cell in this ring is at least (ring − 1) whole cells away
            // along some axis (the query point may sit anywhere in its own
            // cell, hence the −1).
            let lb = ((ring - 1).max(0)) as f64 * min_dim;
            if coll.is_full() && lb * lb > coll.prune_bound_sq() {
                break;
            }
            geo.for_ring_cells(qc, qr, ring, |cell| {
                ops += 1;
                for part in parts {
                    for &id in &part.cells[cell as usize] {
                        let pos = part.slots[id.index()].expect("member has slot").pos;
                        coll.offer(pos.dist_sq(q), id);
                        ops += 1;
                        seen += 1;
                    }
                }
            });
            if seen == total && coll.is_full() {
                break;
            }
        }
        (coll.into_sorted(), ops)
    }

    /// All indexed objects within `range` (boundary inclusive), in canonical
    /// order.
    pub fn range(&self, range: &Circle) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let r2 = range.radius * range.radius;
        self.for_cells_overlapping(range, |cell| {
            for &id in &self.cells[cell as usize] {
                let pos = self.slots[id.index()].expect("member has slot").pos;
                let d2 = pos.dist_sq(range.center);
                if d2 <= r2 {
                    out.push(Neighbor { dist_sq: d2, id });
                }
            }
        });
        out.sort_unstable_by(|a, b| {
            (crate::OrdF64(a.dist_sq), a.id).cmp(&(crate::OrdF64(b.dist_sq), b.id))
        });
        out
    }

    /// Visits every cell whose rectangle intersects `circle`.
    pub fn for_cells_overlapping(&self, circle: &Circle, mut f: impl FnMut(u32)) {
        let bb = circle.bounding_rect();
        let (x0, y0) = self.cell_coords(bb.min);
        let (x1, y1) = self.cell_coords(bb.max);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let cell = self.cell_index(cx, cy);
                if self.cell_rect(cell).intersects_circle(circle) {
                    f(cell);
                }
            }
        }
    }

    /// Number of grid cells whose rectangle intersects `circle` — the
    /// geocast fan-out of installing a monitoring region of that extent.
    pub fn cells_overlapping(&self, circle: &Circle) -> usize {
        let mut n = 0;
        self.for_cells_overlapping(circle, |_| n += 1);
        n
    }

    /// Number of indexed objects in the cell with id `cell`.
    #[inline]
    pub fn cell_population(&self, cell: u32) -> usize {
        self.cells[cell as usize].len()
    }

    /// A conservative radius around `center` expected to contain at least
    /// `k` objects, derived from cell population counts.
    ///
    /// Used by the server to size region-expansion probes; exactness is not
    /// required (the probe responses restore it), only that the estimate
    /// errs large. Returns the bounds diagonal when the grid holds fewer
    /// than `k` objects.
    pub fn estimate_knn_radius(&self, center: Point, k: usize) -> f64 {
        if self.len < k.max(1) {
            return self.bounds.min.dist(self.bounds.max);
        }
        let (qc, qr) = self.cell_coords(center);
        let max_dim = self.cell_w.max(self.cell_h);
        let max_ring = (self.cols.max(self.rows)) as i64;
        let mut cum = 0usize;
        for ring in 0..=max_ring {
            self.for_ring_cells(qc, qr, ring, |cell| {
                cum += self.cells[cell as usize].len();
            });
            if cum >= k {
                // Everything counted so far lies within (ring + 1) cells of
                // the center along both axes.
                return (ring as f64 + 1.0) * max_dim * std::f64::consts::SQRT_2;
            }
        }
        self.bounds.min.dist(self.bounds.max)
    }

    /// Cross-checks this grid's kNN against the brute-force oracle.
    /// Intended for tests and debug assertions.
    pub fn verify_knn(&self, q: Point, k: usize) -> bool {
        let got = self.knn(q, k);
        let want = bruteforce::knn(self.iter(), q, k);
        got.len() == want.len()
            && got
                .iter()
                .zip(&want)
                .all(|(a, b)| a.id == b.id && a.dist_sq == b.dist_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridIndex {
        GridIndex::new(Rect::square(100.0), 10, 10)
    }

    #[test]
    fn upsert_insert_then_move() {
        let mut g = grid();
        g.upsert(ObjectId(0), Point::new(5.0, 5.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(ObjectId(0)), Some(Point::new(5.0, 5.0)));
        g.upsert(ObjectId(0), Point::new(95.0, 95.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(ObjectId(0)), Some(Point::new(95.0, 95.0)));
    }

    #[test]
    fn remove_returns_position() {
        let mut g = grid();
        g.upsert(ObjectId(3), Point::new(50.0, 50.0));
        assert_eq!(g.remove(ObjectId(3)), Some(Point::new(50.0, 50.0)));
        assert_eq!(g.remove(ObjectId(3)), None);
        assert!(g.is_empty());
    }

    #[test]
    fn bulk_load_is_structurally_identical_to_an_upsert_loop() {
        let mut rng = mknn_util::Rng::seed_from_u64(7);
        for n in [0usize, 1, 17, 400] {
            let pts: Vec<(ObjectId, Point)> = (0..n)
                .map(|i| {
                    (
                        ObjectId(i as u32),
                        // Includes out-of-bounds points (clamped cells).
                        Point::new(rng.gen_range(-10.0..120.0), rng.gen_range(-10.0..120.0)),
                    )
                })
                .collect();
            let bulk = GridIndex::bulk_load(Rect::square(100.0), 10, 10, pts.iter().copied());
            let mut seq = grid();
            for &(id, pos) in &pts {
                seq.upsert(id, pos);
            }
            assert_eq!(bulk.len(), seq.len());
            for &(id, pos) in &pts {
                assert_eq!(bulk.position(id), Some(pos));
            }
            // Same cell membership in the same order: queries, probes and
            // statistics all observe identical structure.
            for cell in 0..100u32 {
                assert_eq!(bulk.cells[cell as usize], seq.cells[cell as usize], "n={n}");
            }
            // And identical kNN output, tie-breaks included.
            if n > 0 {
                let q = Point::new(33.0, 44.0);
                assert_eq!(bulk.knn(q, 10), seq.knn(q, 10));
            }
        }
    }

    #[test]
    fn swap_remove_keeps_sibling_indices_valid() {
        let mut g = grid();
        // Three objects in the same cell.
        g.upsert(ObjectId(0), Point::new(1.0, 1.0));
        g.upsert(ObjectId(1), Point::new(2.0, 2.0));
        g.upsert(ObjectId(2), Point::new(3.0, 3.0));
        // Remove the first: the last is swapped into its place.
        g.remove(ObjectId(0));
        // Moving the swapped object must not corrupt the cell.
        g.upsert(ObjectId(2), Point::new(99.0, 99.0));
        assert_eq!(g.position(ObjectId(1)), Some(Point::new(2.0, 2.0)));
        assert_eq!(g.position(ObjectId(2)), Some(Point::new(99.0, 99.0)));
        assert_eq!(g.len(), 2);
        assert!(g.verify_knn(Point::new(0.0, 0.0), 2));
    }

    #[test]
    fn out_of_bounds_positions_are_clamped_but_exact() {
        let mut g = grid();
        g.upsert(ObjectId(0), Point::new(-50.0, -50.0));
        g.upsert(ObjectId(1), Point::new(150.0, 150.0));
        g.upsert(ObjectId(2), Point::new(50.0, 50.0));
        let nn = g.knn(Point::new(-40.0, -40.0), 3);
        assert_eq!(nn[0].id, ObjectId(0));
        assert!(g.verify_knn(Point::new(200.0, 200.0), 2));
    }

    #[test]
    fn knn_matches_oracle_on_small_world() {
        let mut g = grid();
        let pts = [
            (0, 10.0, 10.0),
            (1, 12.0, 11.0),
            (2, 80.0, 80.0),
            (3, 45.0, 52.0),
            (4, 44.0, 50.0),
            (5, 46.0, 49.0),
            (6, 99.0, 1.0),
        ];
        for (id, x, y) in pts {
            g.upsert(ObjectId(id), Point::new(x, y));
        }
        for k in 0..=8 {
            assert!(g.verify_knn(Point::new(45.0, 50.0), k), "k = {k}");
        }
    }

    #[test]
    fn range_query_matches_bruteforce() {
        let mut g = grid();
        for i in 0..100u32 {
            let x = (i % 10) as f64 * 10.0 + 0.5;
            let y = (i / 10) as f64 * 10.0 + 0.5;
            g.upsert(ObjectId(i), Point::new(x, y));
        }
        let c = Circle::new(Point::new(50.0, 50.0), 23.0);
        let got = g.range(&c);
        let want = bruteforce::range(g.iter(), &c);
        assert_eq!(got.len(), want.len());
        assert!(got.iter().zip(&want).all(|(a, b)| a.id == b.id));
    }

    #[test]
    fn cells_overlapping_counts_fanout() {
        let g = grid();
        // A circle inside one cell.
        assert_eq!(
            g.cells_overlapping(&Circle::new(Point::new(5.0, 5.0), 2.0)),
            1
        );
        // A circle covering everything.
        assert_eq!(
            g.cells_overlapping(&Circle::new(Point::new(50.0, 50.0), 500.0)),
            100
        );
    }

    #[test]
    fn estimate_knn_radius_is_conservative() {
        let mut g = grid();
        for i in 0..50u32 {
            let x = (i % 10) as f64 * 10.0 + 3.0;
            let y = (i / 10) as f64 * 10.0 + 3.0;
            g.upsert(ObjectId(i), Point::new(x, y));
        }
        for k in [1, 5, 10, 25, 50] {
            let q = Point::new(34.0, 18.0);
            let r = g.estimate_knn_radius(q, k);
            let true_kth = bruteforce::kth_dist(g.iter(), q, k);
            assert!(r >= true_kth, "k = {k}: estimate {r} < true {true_kth}");
        }
    }

    #[test]
    fn estimate_radius_when_underpopulated() {
        let mut g = grid();
        g.upsert(ObjectId(0), Point::new(5.0, 5.0));
        let r = g.estimate_knn_radius(Point::new(50.0, 50.0), 10);
        assert_eq!(r, Point::new(0.0, 0.0).dist(Point::new(100.0, 100.0)));
    }

    #[test]
    fn iter_yields_all_members() {
        let mut g = grid();
        g.upsert(ObjectId(2), Point::new(1.0, 1.0));
        g.upsert(ObjectId(7), Point::new(2.0, 2.0));
        let mut ids: Vec<u32> = g.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 7]);
    }

    #[test]
    fn partitioned_knn_matches_monolith_answers_and_ops() {
        let mut rng = mknn_util::Rng::seed_from_u64(11);
        let pts: Vec<(ObjectId, Point)> = (0..300)
            .map(|i| {
                (
                    ObjectId(i as u32),
                    Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                )
            })
            .collect();
        let mut whole = grid();
        for &(id, pos) in &pts {
            whole.upsert(id, pos);
        }
        // Split the population across partitions by spatial block (the
        // shard layout the server tier uses) and by a hash-like rule; the
        // work count must not depend on the distribution.
        for parts_n in [1usize, 2, 4, 7] {
            let mut parts: Vec<GridIndex> = (0..parts_n).map(|_| grid()).collect();
            for &(id, pos) in &pts {
                let p = if parts_n == 1 {
                    0
                } else {
                    (id.0 as usize * 7 + (pos.x as usize)) % parts_n
                };
                parts[p].upsert(id, pos);
            }
            let refs: Vec<&GridIndex> = parts.iter().collect();
            for k in [0usize, 1, 5, 32] {
                let q = Point::new(41.0, 59.0);
                let (mono, mono_ops) = whole.knn_counted(q, k);
                let (multi, multi_ops) = GridIndex::knn_counted_multi(&refs, q, k);
                assert_eq!(mono, multi, "parts={parts_n} k={k}");
                assert_eq!(mono_ops, multi_ops, "parts={parts_n} k={k}");
            }
        }
    }

    #[test]
    fn knn_empty_and_zero_k() {
        let g = grid();
        assert!(g.knn(Point::new(1.0, 1.0), 5).is_empty());
        let mut g = grid();
        g.upsert(ObjectId(0), Point::new(1.0, 1.0));
        assert!(g.knn(Point::new(1.0, 1.0), 0).is_empty());
    }
}
