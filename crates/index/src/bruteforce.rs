//! Brute-force `O(N)` reference implementations.
//!
//! These are the ground-truth oracle: every index structure and every
//! monitoring protocol in the workspace is property-tested against the
//! functions in this module.

use crate::{KnnCollector, Neighbor};
use mknn_geom::{Circle, ObjectId, Point};

/// The k nearest of `points` to `q`, in canonical order (ascending
/// `(distance², id)`). Returns fewer than `k` when the input is smaller.
pub fn knn<I>(points: I, q: Point, k: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (ObjectId, Point)>,
{
    let mut c = KnnCollector::new(k);
    for (id, p) in points {
        c.offer(p.dist_sq(q), id);
    }
    c.into_sorted()
}

/// All of `points` within `range` (boundary inclusive), in canonical order.
pub fn range<I>(points: I, range: &Circle) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (ObjectId, Point)>,
{
    let r2 = range.radius * range.radius;
    let mut out: Vec<Neighbor> = points
        .into_iter()
        .filter_map(|(id, p)| {
            let d2 = p.dist_sq(range.center);
            (d2 <= r2).then_some(Neighbor { dist_sq: d2, id })
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        (crate::OrdF64(a.dist_sq), a.id).cmp(&(crate::OrdF64(b.dist_sq), b.id))
    });
    out
}

/// Distance from `q` to its k-th nearest neighbor among `points`, or
/// `f64::INFINITY` when fewer than `k` points exist.
pub fn kth_dist<I>(points: I, q: Point, k: usize) -> f64
where
    I: IntoIterator<Item = (ObjectId, Point)>,
{
    let nn = knn(points, q, k);
    if nn.len() < k {
        f64::INFINITY
    } else {
        nn[k - 1].dist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Vec<(ObjectId, Point)> {
        vec![
            (ObjectId(0), Point::new(0.0, 0.0)),
            (ObjectId(1), Point::new(1.0, 0.0)),
            (ObjectId(2), Point::new(0.0, 2.0)),
            (ObjectId(3), Point::new(3.0, 4.0)),
            (ObjectId(4), Point::new(-1.0, -1.0)),
        ]
    }

    #[test]
    fn knn_returns_sorted_nearest() {
        let out = knn(world(), Point::new(0.0, 0.0), 3);
        let ids: Vec<u32> = out.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![0, 1, 4]);
        assert!(out.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
    }

    #[test]
    fn knn_with_k_larger_than_input() {
        let out = knn(world(), Point::new(0.0, 0.0), 10);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn range_includes_boundary() {
        let out = range(world(), &Circle::new(Point::new(0.0, 0.0), 2.0));
        let ids: Vec<u32> = out.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![0, 1, 4, 2]); // id 2 is exactly at distance 2
    }

    #[test]
    fn kth_dist_matches_knn() {
        let d = kth_dist(world(), Point::new(0.0, 0.0), 2);
        assert_eq!(d, 1.0);
        assert_eq!(kth_dist(world(), Point::ORIGIN, 6), f64::INFINITY);
    }
}
