//! Property-based tests: every index agrees with the brute-force oracle
//! (mknn-util `check` harness).

use mknn_geom::{Circle, ObjectId, Point, Rect};
use mknn_index::{bruteforce, GridIndex, KdTree, RTree};
use mknn_util::check::forall;
use mknn_util::Rng;

/// Cases per property (matches the former proptest config of 64).
const CASES: u64 = 64;

const SIDE: f64 = 1000.0;

fn pt(rng: &mut Rng) -> Point {
    Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE))
}

fn world(rng: &mut Rng, max: usize) -> Vec<(ObjectId, Point)> {
    let n = rng.gen_range(0usize..max);
    (0..n).map(|i| (ObjectId(i as u32), pt(rng))).collect()
}

fn ids(nn: &[mknn_index::Neighbor]) -> Vec<u32> {
    nn.iter().map(|n| n.id.0).collect()
}

#[test]
fn grid_knn_equals_bruteforce() {
    forall(CASES, |rng| {
        let w = world(rng, 200);
        let q = pt(rng);
        let k = rng.gen_range(0usize..20);
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let got = g.knn(q, k);
        let want = bruteforce::knn(w.clone(), q, k);
        assert_eq!(ids(&got), ids(&want));
    });
}

#[test]
fn rtree_knn_equals_bruteforce() {
    forall(CASES, |rng| {
        let w = world(rng, 200);
        let q = pt(rng);
        let k = rng.gen_range(0usize..20);
        let t = RTree::bulk_load(w.clone());
        let got = t.knn(q, k);
        let want = bruteforce::knn(w.clone(), q, k);
        assert_eq!(ids(&got), ids(&want));
    });
}

#[test]
fn rtree_incremental_equals_bulk() {
    forall(CASES, |rng| {
        let w = world(rng, 120);
        let q = pt(rng);
        let k = rng.gen_range(1usize..10);
        let bulk = RTree::bulk_load(w.clone());
        let mut inc = RTree::new();
        for &(id, p) in &w {
            inc.insert(id, p);
        }
        inc.check_invariants().unwrap();
        bulk.check_invariants().unwrap();
        assert_eq!(ids(&bulk.knn(q, k)), ids(&inc.knn(q, k)));
    });
}

#[test]
fn kdtree_knn_equals_bruteforce() {
    forall(CASES, |rng| {
        let w = world(rng, 200);
        let q = pt(rng);
        let k = rng.gen_range(0usize..20);
        let t = KdTree::build(w.clone());
        assert_eq!(ids(&t.knn(q, k)), ids(&bruteforce::knn(w.clone(), q, k)));
    });
}

#[test]
fn kdtree_range_equals_bruteforce() {
    forall(CASES, |rng| {
        let w = world(rng, 200);
        let q = pt(rng);
        let r = rng.gen_range(0.0..SIDE);
        let t = KdTree::build(w.clone());
        let c = Circle::new(q, r);
        assert_eq!(ids(&t.range(&c)), ids(&bruteforce::range(w.clone(), &c)));
    });
}

#[test]
fn three_indexes_agree() {
    forall(CASES, |rng| {
        let w = world(rng, 150);
        let q = pt(rng);
        let k = rng.gen_range(1usize..12);
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let r = RTree::bulk_load(w.clone());
        let kd = KdTree::build(w.clone());
        assert_eq!(ids(&g.knn(q, k)), ids(&r.knn(q, k)));
        assert_eq!(ids(&r.knn(q, k)), ids(&kd.knn(q, k)));
    });
}

#[test]
fn nearest_iter_prefix_equals_knn() {
    forall(CASES, |rng| {
        let w = world(rng, 150);
        let q = pt(rng);
        let k = rng.gen_range(0usize..20);
        let t = RTree::bulk_load(w.clone());
        let prefix: Vec<u32> = t.nearest_iter(q).take(k).map(|n| n.id.0).collect();
        assert_eq!(prefix, ids(&t.knn(q, k)));
    });
}

#[test]
fn grid_range_equals_bruteforce() {
    forall(CASES, |rng| {
        let w = world(rng, 200);
        let q = pt(rng);
        let r = rng.gen_range(0.0..SIDE);
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let c = Circle::new(q, r);
        assert_eq!(ids(&g.range(&c)), ids(&bruteforce::range(w.clone(), &c)));
    });
}

#[test]
fn rtree_range_equals_bruteforce() {
    forall(CASES, |rng| {
        let w = world(rng, 200);
        let q = pt(rng);
        let r = rng.gen_range(0.0..SIDE);
        let t = RTree::bulk_load(w.clone());
        let c = Circle::new(q, r);
        assert_eq!(ids(&t.range(&c)), ids(&bruteforce::range(w.clone(), &c)));
    });
}

/// A world drawn from a coarse lattice, so duplicate positions (exact
/// distance ties) are common.
fn lattice_world(rng: &mut Rng, max: usize) -> Vec<(ObjectId, Point)> {
    let n = rng.gen_range(0usize..max);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(0u32..6) as f64 * 100.0;
            let y = rng.gen_range(0u32..6) as f64 * 100.0;
            (ObjectId(i as u32), Point::new(x, y))
        })
        .collect()
}

/// Full-precision comparison (ids *and* distances): the byte-identity
/// contract the snapshot oracle relies on, stricter than id equality.
fn assert_same(got: &[mknn_index::Neighbor], want: &[mknn_index::Neighbor], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (a, b) in got.iter().zip(want) {
        assert_eq!(a.id, b.id, "{ctx}: id");
        assert_eq!(a.dist_sq, b.dist_sq, "{ctx}: dist_sq");
    }
}

/// kd-tree and grid agree with brute force under heavy duplicate-position
/// ties — the `(distance², id)` tie-break must be identical in all three.
#[test]
fn knn_tie_semantics_survive_duplicate_positions() {
    forall(CASES, |rng| {
        let w = lattice_world(rng, 120);
        let q = if rng.gen_bool(0.5) {
            // Query from the same lattice: exact zero/tied distances.
            Point::new(
                rng.gen_range(0u32..6) as f64 * 100.0,
                rng.gen_range(0u32..6) as f64 * 100.0,
            )
        } else {
            pt(rng)
        };
        let k = rng.gen_range(0usize..30);
        let want = bruteforce::knn(w.clone(), q, k);
        let kd = KdTree::build(w.clone());
        assert_same(&kd.knn(q, k), &want, "kdtree");
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        assert_same(&g.knn(q, k), &want, "grid");
    });
}

/// `k ≥ population` returns every point, still in canonical order.
#[test]
fn knn_with_k_at_least_population_returns_everyone() {
    forall(CASES, |rng| {
        let w = world(rng, 60);
        let q = pt(rng);
        let k = w.len() + rng.gen_range(0usize..5);
        let want = bruteforce::knn(w.clone(), q, k);
        assert_eq!(want.len(), w.len());
        let kd = KdTree::build(w.clone());
        assert_same(&kd.knn(q, k), &want, "kdtree");
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        assert_same(&g.knn(q, k), &want, "grid");
    });
}

/// Focal exclusion by over-fetching: querying `k + 1` and filtering one id
/// equals brute force over the filtered population — the identity the
/// snapshot oracle and `ServerHalf::init` both rely on. Exercised with
/// duplicate positions so the focal can tie exactly with real candidates.
#[test]
fn focal_exclusion_by_overfetch_equals_filtered_bruteforce() {
    forall(CASES, |rng| {
        let w = if rng.gen_bool(0.5) {
            lattice_world(rng, 120)
        } else {
            world(rng, 120)
        };
        if w.is_empty() {
            return;
        }
        let q = pt(rng);
        let k = rng.gen_range(0usize..20);
        let focal = w[rng.gen_range(0usize..w.len())].0;
        let want = bruteforce::knn(w.iter().copied().filter(|&(id, _)| id != focal), q, k);
        let kd = KdTree::build(w.clone());
        let mut got = kd.knn(q, k + 1);
        got.retain(|n| n.id != focal);
        got.truncate(k);
        assert_same(&got, &want, "kdtree overfetch");
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let mut got = g.knn(q, k + 1);
        got.retain(|n| n.id != focal);
        got.truncate(k);
        assert_same(&got, &want, "grid overfetch");
    });
}

#[test]
fn grid_survives_random_moves() {
    forall(CASES, |rng| {
        let w = world(rng, 100);
        let n_moves = rng.gen_range(0usize..200);
        let moves: Vec<(usize, Point)> = (0..n_moves)
            .map(|_| (rng.gen_range(0usize..100), pt(rng)))
            .collect();
        let q = pt(rng);
        let k = rng.gen_range(1usize..8);
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        let mut truth: Vec<(ObjectId, Point)> = w.clone();
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        for (raw, p) in moves {
            if truth.is_empty() {
                break;
            }
            let i = raw % truth.len();
            truth[i].1 = p;
            g.upsert(truth[i].0, p);
        }
        assert_eq!(
            ids(&g.knn(q, k)),
            ids(&bruteforce::knn(truth.clone(), q, k))
        );
    });
}

#[test]
fn rtree_survives_insert_delete_interleaving() {
    forall(CASES, |rng| {
        let w = world(rng, 120);
        let n_ops = rng.gen_range(0usize..120);
        let ops: Vec<bool> = (0..n_ops).map(|_| rng.gen_bool(0.5)).collect();
        let q = pt(rng);
        let mut t = RTree::new();
        let mut live: Vec<(ObjectId, Point)> = Vec::new();
        let mut pending = w.clone();
        for op in ops {
            if op || live.is_empty() {
                if let Some((id, p)) = pending.pop() {
                    t.insert(id, p);
                    live.push((id, p));
                }
            } else {
                let (id, p) = live.swap_remove(live.len() / 2);
                assert!(t.remove(id, p));
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), live.len());
        assert_eq!(ids(&t.knn(q, 5)), ids(&bruteforce::knn(live.clone(), q, 5)));
    });
}

#[test]
fn grid_estimate_radius_covers_k() {
    forall(CASES, |rng| {
        let w = world(rng, 300);
        let q = pt(rng);
        let k = rng.gen_range(1usize..30);
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let r = g.estimate_knn_radius(q, k);
        let kth = bruteforce::kth_dist(w.clone(), q, k);
        if kth.is_finite() {
            assert!(r >= kth, "estimate {r} < true k-th distance {kth}");
        }
    });
}
