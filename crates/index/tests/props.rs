//! Property-based tests: every index agrees with the brute-force oracle.

use mknn_geom::{Circle, ObjectId, Point, Rect};
use mknn_index::{bruteforce, GridIndex, KdTree, RTree};
use proptest::prelude::*;

const SIDE: f64 = 1000.0;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..SIDE, 0.0..SIDE).prop_map(|(x, y)| Point::new(x, y))
}

fn world(max: usize) -> impl Strategy<Value = Vec<(ObjectId, Point)>> {
    prop::collection::vec(pt(), 0..max)
        .prop_map(|ps| ps.into_iter().enumerate().map(|(i, p)| (ObjectId(i as u32), p)).collect())
}

fn ids(nn: &[mknn_index::Neighbor]) -> Vec<u32> {
    nn.iter().map(|n| n.id.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_knn_equals_bruteforce(w in world(200), q in pt(), k in 0usize..20) {
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let got = g.knn(q, k);
        let want = bruteforce::knn(w.clone(), q, k);
        prop_assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn rtree_knn_equals_bruteforce(w in world(200), q in pt(), k in 0usize..20) {
        let t = RTree::bulk_load(w.clone());
        let got = t.knn(q, k);
        let want = bruteforce::knn(w.clone(), q, k);
        prop_assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn rtree_incremental_equals_bulk(w in world(120), q in pt(), k in 1usize..10) {
        let bulk = RTree::bulk_load(w.clone());
        let mut inc = RTree::new();
        for &(id, p) in &w {
            inc.insert(id, p);
        }
        inc.check_invariants().unwrap();
        bulk.check_invariants().unwrap();
        prop_assert_eq!(ids(&bulk.knn(q, k)), ids(&inc.knn(q, k)));
    }

    #[test]
    fn kdtree_knn_equals_bruteforce(w in world(200), q in pt(), k in 0usize..20) {
        let t = KdTree::build(w.clone());
        prop_assert_eq!(ids(&t.knn(q, k)), ids(&bruteforce::knn(w.clone(), q, k)));
    }

    #[test]
    fn kdtree_range_equals_bruteforce(w in world(200), q in pt(), r in 0.0..SIDE) {
        let t = KdTree::build(w.clone());
        let c = Circle::new(q, r);
        prop_assert_eq!(ids(&t.range(&c)), ids(&bruteforce::range(w.clone(), &c)));
    }

    #[test]
    fn three_indexes_agree(w in world(150), q in pt(), k in 1usize..12) {
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let r = RTree::bulk_load(w.clone());
        let kd = KdTree::build(w.clone());
        prop_assert_eq!(ids(&g.knn(q, k)), ids(&r.knn(q, k)));
        prop_assert_eq!(ids(&r.knn(q, k)), ids(&kd.knn(q, k)));
    }

    #[test]
    fn nearest_iter_prefix_equals_knn(w in world(150), q in pt(), k in 0usize..20) {
        let t = RTree::bulk_load(w.clone());
        let prefix: Vec<u32> = t.nearest_iter(q).take(k).map(|n| n.id.0).collect();
        prop_assert_eq!(prefix, ids(&t.knn(q, k)));
    }

    #[test]
    fn grid_range_equals_bruteforce(w in world(200), q in pt(), r in 0.0..SIDE) {
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let c = Circle::new(q, r);
        prop_assert_eq!(ids(&g.range(&c)), ids(&bruteforce::range(w.clone(), &c)));
    }

    #[test]
    fn rtree_range_equals_bruteforce(w in world(200), q in pt(), r in 0.0..SIDE) {
        let t = RTree::bulk_load(w.clone());
        let c = Circle::new(q, r);
        prop_assert_eq!(ids(&t.range(&c)), ids(&bruteforce::range(w.clone(), &c)));
    }

    #[test]
    fn grid_survives_random_moves(w in world(100), moves in prop::collection::vec((0usize..100, pt()), 0..200), q in pt(), k in 1usize..8) {
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        let mut truth: Vec<(ObjectId, Point)> = w.clone();
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        for (raw, p) in moves {
            if truth.is_empty() { break; }
            let i = raw % truth.len();
            truth[i].1 = p;
            g.upsert(truth[i].0, p);
        }
        prop_assert_eq!(ids(&g.knn(q, k)), ids(&bruteforce::knn(truth.clone(), q, k)));
    }

    #[test]
    fn rtree_survives_insert_delete_interleaving(w in world(120), ops in prop::collection::vec(any::<bool>(), 0..120), q in pt()) {
        let mut t = RTree::new();
        let mut live: Vec<(ObjectId, Point)> = Vec::new();
        let mut pending = w.clone();
        for op in ops {
            if op || live.is_empty() {
                if let Some((id, p)) = pending.pop() {
                    t.insert(id, p);
                    live.push((id, p));
                }
            } else {
                let (id, p) = live.swap_remove(live.len() / 2);
                prop_assert!(t.remove(id, p));
            }
        }
        t.check_invariants().unwrap();
        prop_assert_eq!(t.len(), live.len());
        prop_assert_eq!(ids(&t.knn(q, 5)), ids(&bruteforce::knn(live.clone(), q, 5)));
    }

    #[test]
    fn grid_estimate_radius_covers_k(w in world(300), q in pt(), k in 1usize..30) {
        let mut g = GridIndex::new(Rect::square(SIDE), 16, 16);
        for &(id, p) in &w {
            g.upsert(id, p);
        }
        let r = g.estimate_knn_radius(q, k);
        let kth = bruteforce::kth_dist(w.clone(), q, k);
        if kth.is_finite() {
            prop_assert!(r >= kth, "estimate {r} < true k-th distance {kth}");
        }
    }
}
