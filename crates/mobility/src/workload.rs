//! Declarative workload specifications.

use crate::{
    MotionModel, MovingObject, RandomWalk, RandomWaypoint, RoadMotion, RoadNetwork, Stationary,
    World,
};
use mknn_geom::{ObjectId, Point, Rect};
use mknn_util::Rng;

/// How initial positions are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Uniform over the space.
    Uniform,
    /// A mixture of `clusters` Gaussian hotspots with standard deviation
    /// `sigma` (meters), cluster centers uniform; samples are clamped into
    /// the space.
    Gaussian {
        /// Number of hotspots.
        clusters: usize,
        /// Standard deviation of each hotspot, in meters.
        sigma: f64,
    },
}

/// Distribution of per-object maximum speeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedDist {
    /// All objects share one maximum speed.
    Fixed(f64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Slowest per-object maximum, meters/tick.
        min: f64,
        /// Fastest per-object maximum, meters/tick.
        max: f64,
    },
    /// Three classes (the classic slow/medium/fast split used by
    /// moving-object generators), with equal population shares.
    Classes {
        /// Slow-class speed, meters/tick.
        slow: f64,
        /// Medium-class speed, meters/tick.
        medium: f64,
        /// Fast-class speed, meters/tick.
        fast: f64,
    },
}

impl SpeedDist {
    /// Draws one per-object maximum speed.
    pub fn sample(&self, i: usize, rng: &mut Rng) -> f64 {
        match *self {
            SpeedDist::Fixed(v) => v,
            SpeedDist::Uniform { min, max } => {
                if max > min {
                    rng.gen_range(min..=max)
                } else {
                    max
                }
            }
            SpeedDist::Classes { slow, medium, fast } => match i % 3 {
                0 => slow,
                1 => medium,
                _ => fast,
            },
        }
    }

    /// Upper bound of the distribution — the protocols size their slack off
    /// this value.
    pub fn max_speed(&self) -> f64 {
        match *self {
            SpeedDist::Fixed(v) => v,
            SpeedDist::Uniform { max, .. } => max,
            SpeedDist::Classes { slow, medium, fast } => slow.max(medium).max(fast),
        }
    }
}

/// Which motion model drives the objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Motion {
    /// Objects never move.
    Stationary,
    /// Uniform waypoints, straight legs ([`RandomWaypoint`]).
    RandomWaypoint,
    /// Persistent headings with random turns ([`RandomWalk`]).
    RandomWalk,
    /// Shortest-path trips on a synthetic `nx × ny` grid road network with
    /// edge-drop probability `drop_prob` ([`RoadMotion`]).
    RoadNetwork {
        /// Lattice columns.
        nx: u32,
        /// Lattice rows.
        ny: u32,
        /// Probability of removing each interior road segment.
        drop_prob: f64,
    },
}

/// A complete, reproducible description of a moving-object workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of moving objects.
    pub n_objects: usize,
    /// Side length of the square space, in meters.
    pub space_side: f64,
    /// Initial placement of objects.
    pub placement: Placement,
    /// Per-object maximum speed distribution, meters/tick.
    pub speeds: SpeedDist,
    /// Motion model.
    pub motion: Motion,
    /// Probability that any given object moves on any given tick (the
    /// "fraction of objects issuing location updates per timestamp"
    /// parameter of the classic evaluations).
    pub move_prob: f64,
    /// RNG seed; equal specs with equal seeds produce identical worlds.
    pub seed: u64,
    /// Per-object maximum-speed overrides `(object id, max speed)`, applied
    /// after sampling and before motion-model initialization. Used by the
    /// experiments to give query focal objects a speed of their own.
    /// Defaults to empty when absent from a JSON document.
    pub speed_overrides: Vec<(u32, f64)>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_objects: 10_000,
            space_side: 10_000.0,
            placement: Placement::Uniform,
            speeds: SpeedDist::Uniform {
                min: 5.0,
                max: 20.0,
            },
            motion: Motion::RandomWaypoint,
            move_prob: 1.0,
            seed: 42,
            speed_overrides: Vec::new(),
        }
    }
}

impl WorkloadSpec {
    /// The space rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::square(self.space_side)
    }

    /// Materializes the world: draws initial positions and speeds, builds
    /// the motion model, and initializes per-object model state.
    pub fn build(&self) -> World {
        let bounds = self.bounds();
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut objects: Vec<MovingObject> = {
            let positions = self.draw_positions(bounds, &mut rng);
            positions
                .into_iter()
                .enumerate()
                .map(|(i, pos)| {
                    MovingObject::at(ObjectId(i as u32), pos, self.speeds.sample(i, &mut rng))
                })
                .collect()
        };
        for &(id, speed) in &self.speed_overrides {
            if let Some(o) = objects.get_mut(id as usize) {
                o.max_speed = speed;
            }
        }
        let mut model: Box<dyn MotionModel> = match self.motion {
            Motion::Stationary => Box::new(Stationary),
            Motion::RandomWaypoint => Box::new(RandomWaypoint::default()),
            Motion::RandomWalk => Box::new(RandomWalk::default()),
            Motion::RoadNetwork { nx, ny, drop_prob } => {
                let net = RoadNetwork::grid(bounds, nx, ny, drop_prob, &mut rng);
                Box::new(RoadMotion::new(net, 0.25))
            }
        };
        model.init(&mut objects, bounds, &mut rng);
        World::new(bounds, objects, model, self.move_prob, rng)
    }

    fn draw_positions(&self, bounds: Rect, rng: &mut Rng) -> Vec<Point> {
        match self.placement {
            Placement::Uniform => (0..self.n_objects)
                .map(|_| {
                    Point::new(
                        rng.gen_range(bounds.min.x..=bounds.max.x),
                        rng.gen_range(bounds.min.y..=bounds.max.y),
                    )
                })
                .collect(),
            Placement::Gaussian { clusters, sigma } => {
                let clusters = clusters.max(1);
                let centers: Vec<Point> = (0..clusters)
                    .map(|_| {
                        Point::new(
                            rng.gen_range(bounds.min.x..=bounds.max.x),
                            rng.gen_range(bounds.min.y..=bounds.max.y),
                        )
                    })
                    .collect();
                (0..self.n_objects)
                    .map(|i| {
                        let c = centers[i % clusters];
                        let p =
                            Point::new(c.x + rng.normal(0.0, sigma), c.y + rng.normal(0.0, sigma));
                        p.clamp(bounds.min, bounds.max)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds() {
        let spec = WorkloadSpec {
            n_objects: 100,
            ..WorkloadSpec::default()
        };
        let w = spec.build();
        assert_eq!(w.objects().len(), 100);
        for o in w.objects() {
            assert!(w.bounds().contains(o.pos));
            assert!(o.max_speed >= 5.0 && o.max_speed <= 20.0);
        }
    }

    #[test]
    fn same_seed_same_world() {
        let spec = WorkloadSpec {
            n_objects: 50,
            ..WorkloadSpec::default()
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.objects(), b.objects());
    }

    #[test]
    fn different_seed_different_world() {
        let spec = WorkloadSpec {
            n_objects: 50,
            ..WorkloadSpec::default()
        };
        let other = WorkloadSpec {
            seed: 43,
            ..spec.clone()
        };
        assert_ne!(spec.build().objects(), other.build().objects());
    }

    #[test]
    fn gaussian_placement_is_clustered() {
        let spec = WorkloadSpec {
            n_objects: 1000,
            placement: Placement::Gaussian {
                clusters: 2,
                sigma: 100.0,
            },
            ..WorkloadSpec::default()
        };
        let w = spec.build();
        // Average pairwise spread must be far below uniform's (~5200 m).
        let pts: Vec<Point> = w.objects().iter().map(|o| o.pos).collect();
        let centroid = Point::new(
            pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64,
            pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64,
        );
        let mean_dev = pts.iter().map(|p| p.dist(centroid)).sum::<f64>() / pts.len() as f64;
        assert!(mean_dev < 4000.0, "mean deviation {mean_dev} looks uniform");
    }

    #[test]
    fn speed_classes_cycle() {
        let d = SpeedDist::Classes {
            slow: 1.0,
            medium: 2.0,
            fast: 3.0,
        };
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(d.sample(0, &mut rng), 1.0);
        assert_eq!(d.sample(1, &mut rng), 2.0);
        assert_eq!(d.sample(2, &mut rng), 3.0);
        assert_eq!(d.max_speed(), 3.0);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = WorkloadSpec::default();
        let json = mknn_util::to_string(&spec);
        let back: WorkloadSpec = mknn_util::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn speed_overrides_apply_before_model_init() {
        let spec = WorkloadSpec {
            n_objects: 10,
            speeds: SpeedDist::Fixed(5.0),
            speed_overrides: vec![(3, 50.0), (99, 1.0)],
            ..WorkloadSpec::default()
        };
        let w = spec.build();
        assert_eq!(w.objects()[3].max_speed, 50.0);
        assert_eq!(w.objects()[0].max_speed, 5.0);
    }

    #[test]
    fn road_network_spec_builds_on_roads() {
        let spec = WorkloadSpec {
            n_objects: 60,
            motion: Motion::RoadNetwork {
                nx: 6,
                ny: 6,
                drop_prob: 0.1,
            },
            ..WorkloadSpec::default()
        };
        let mut w = spec.build();
        for _ in 0..20 {
            w.step();
        }
        assert!(w.objects().iter().all(|o| w.bounds().contains(o.pos)));
    }
}
