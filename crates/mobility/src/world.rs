//! A steppable world of moving objects.

use crate::{MotionModel, MovingObject};
use mknn_geom::{ObjectId, Point, Rect, Tick};
use mknn_util::Rng;

/// Ground truth for one simulation episode: the object population, the
/// motion model driving it, and the current tick.
///
/// The world is *not* what protocols observe — they only see the messages
/// objects choose to send. The simulation harness reads the world directly
/// only to run client-side logic (each device knows its own position) and to
/// compute oracle answers for verification.
pub struct World {
    bounds: Rect,
    objects: Vec<MovingObject>,
    model: Box<dyn MotionModel>,
    move_prob: f64,
    rng: Rng,
    tick: Tick,
}

impl World {
    /// Assembles a world. Prefer [`crate::WorkloadSpec::build`].
    pub fn new(
        bounds: Rect,
        objects: Vec<MovingObject>,
        model: Box<dyn MotionModel>,
        move_prob: f64,
        rng: Rng,
    ) -> Self {
        debug_assert!((0.0..=1.0).contains(&move_prob));
        World {
            bounds,
            objects,
            model,
            move_prob,
            rng,
            tick: 0,
        }
    }

    /// The space rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Current tick (0 before the first [`World::step`]).
    #[inline]
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// All objects, indexed by `ObjectId::index()`.
    #[inline]
    pub fn objects(&self) -> &[MovingObject] {
        &self.objects
    }

    /// One object by id.
    #[inline]
    pub fn object(&self, id: ObjectId) -> &MovingObject {
        &self.objects[id.index()]
    }

    /// True position of `id` right now.
    #[inline]
    pub fn position(&self, id: ObjectId) -> Point {
        self.objects[id.index()].pos
    }

    /// `(id, position)` pairs for oracle computations.
    pub fn snapshot(&self) -> impl Iterator<Item = (ObjectId, Point)> + '_ {
        self.objects.iter().map(|o| (o.id, o.pos))
    }

    /// Advances every object by one tick. Each object moves with probability
    /// `move_prob` (independently per tick); objects that skip a tick keep
    /// their position and report zero velocity.
    pub fn step(&mut self) {
        self.tick += 1;
        for i in 0..self.objects.len() {
            if self.move_prob >= 1.0 || self.rng.gen_bool(self.move_prob) {
                let mut obj = self.objects[i];
                self.model.step(i, &mut obj, self.bounds, &mut self.rng);
                self.objects[i] = obj;
            } else {
                self.objects[i].vel = mknn_geom::Vector::ZERO;
            }
        }
    }

    /// The motion model's name, for logs.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stationary, WorkloadSpec};

    #[test]
    fn step_advances_tick() {
        let mut w = WorkloadSpec {
            n_objects: 10,
            ..WorkloadSpec::default()
        }
        .build();
        assert_eq!(w.tick(), 0);
        w.step();
        w.step();
        assert_eq!(w.tick(), 2);
    }

    #[test]
    fn move_prob_zero_freezes_world() {
        let spec = WorkloadSpec {
            n_objects: 20,
            move_prob: 0.0,
            ..WorkloadSpec::default()
        };
        let mut w = spec.build();
        let before: Vec<_> = w.objects().to_vec();
        for _ in 0..10 {
            w.step();
        }
        let after: Vec<_> = w.objects().to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.pos, a.pos);
        }
    }

    #[test]
    fn move_prob_half_moves_some() {
        let spec = WorkloadSpec {
            n_objects: 200,
            move_prob: 0.5,
            ..WorkloadSpec::default()
        };
        let mut w = spec.build();
        let before: Vec<_> = w.objects().to_vec();
        w.step();
        let moved = w
            .objects()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.pos != b.pos)
            .count();
        assert!(moved > 40 && moved < 160, "moved = {moved}");
    }

    #[test]
    fn stationary_world_snapshot_is_stable() {
        let objs = vec![
            MovingObject::at(ObjectId(0), Point::new(1.0, 1.0), 0.0),
            MovingObject::at(ObjectId(1), Point::new(2.0, 2.0), 0.0),
        ];
        let mut w = World::new(
            Rect::square(10.0),
            objs,
            Box::new(Stationary),
            1.0,
            Rng::seed_from_u64(0),
        );
        w.step();
        assert_eq!(w.position(ObjectId(0)), Point::new(1.0, 1.0));
        assert_eq!(w.snapshot().count(), 2);
        assert_eq!(w.model_name(), "stationary");
    }
}
