//! A steppable world of moving objects, stored struct-of-arrays.

use crate::{MotionModel, MovingObject};
use mknn_geom::{ObjectId, Point, Rect, Tick, Vector};
use mknn_util::Rng;

/// Ground truth for one simulation episode: the object population, the
/// motion model driving it, and the current tick.
///
/// The world is *not* what protocols observe — they only see the messages
/// objects choose to send. The simulation harness reads the world directly
/// only to run client-side logic (each device knows its own position) and to
/// compute oracle answers for verification.
///
/// # Layout
///
/// Positions, velocities and speed caps live in parallel arrays indexed by
/// [`ObjectId::index`] (ids are dense: index `i` *is* `ObjectId(i)`, which
/// [`World::new`] asserts). The struct-of-arrays layout is what the engine
/// hot loop wants at N = 10⁶: the per-tick index update walks only
/// [`World::moved`], and the parallel client phase hands the position slice
/// to every worker without materializing a million `MovingObject`s per
/// tick. [`World::objects`] still materializes the array-of-structs view
/// for tests and diagnostics.
pub struct World {
    bounds: Rect,
    pos: Vec<Point>,
    vel: Vec<Vector>,
    max_speed: Vec<f64>,
    /// Indices whose *position* changed in the most recent [`World::step`]
    /// (ascending). Empty before the first step.
    moved: Vec<u32>,
    model: Box<dyn MotionModel>,
    move_prob: f64,
    rng: Rng,
    tick: Tick,
}

impl World {
    /// Assembles a world. Prefer [`crate::WorkloadSpec::build`].
    ///
    /// Object ids must be dense: `objects[i].id == ObjectId(i)`.
    pub fn new(
        bounds: Rect,
        objects: Vec<MovingObject>,
        model: Box<dyn MotionModel>,
        move_prob: f64,
        rng: Rng,
    ) -> Self {
        debug_assert!((0.0..=1.0).contains(&move_prob));
        debug_assert!(
            objects.iter().enumerate().all(|(i, o)| o.id.index() == i),
            "object ids must be dense (id i at index i)"
        );
        World {
            bounds,
            pos: objects.iter().map(|o| o.pos).collect(),
            vel: objects.iter().map(|o| o.vel).collect(),
            max_speed: objects.iter().map(|o| o.max_speed).collect(),
            moved: Vec::new(),
            model,
            move_prob,
            rng,
            tick: 0,
        }
    }

    /// The space rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Current tick (0 before the first [`World::step`]).
    #[inline]
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` for an empty population.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Per-object positions, indexed by `ObjectId::index()`.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.pos
    }

    /// Per-object velocities this tick.
    #[inline]
    pub fn velocities(&self) -> &[Vector] {
        &self.vel
    }

    /// Per-object speed caps.
    #[inline]
    pub fn max_speeds(&self) -> &[f64] {
        &self.max_speed
    }

    /// Indices of objects whose position changed in the most recent
    /// [`World::step`], ascending. Empty before the first step. The
    /// engine's per-tick index maintenance walks exactly this list: an
    /// object that did not move cannot change any spatial structure.
    #[inline]
    pub fn moved(&self) -> &[u32] {
        &self.moved
    }

    /// The array-of-structs view of the population, materialized fresh on
    /// every call (test and diagnostic API — hot paths use the slice
    /// accessors instead).
    pub fn objects(&self) -> Vec<MovingObject> {
        (0..self.pos.len()).map(|i| self.object_at(i)).collect()
    }

    /// One object by id, materialized by value.
    #[inline]
    pub fn object(&self, id: ObjectId) -> MovingObject {
        self.object_at(id.index())
    }

    #[inline]
    fn object_at(&self, i: usize) -> MovingObject {
        MovingObject {
            id: ObjectId(i as u32),
            pos: self.pos[i],
            vel: self.vel[i],
            max_speed: self.max_speed[i],
        }
    }

    /// True position of `id` right now.
    #[inline]
    pub fn position(&self, id: ObjectId) -> Point {
        self.pos[id.index()]
    }

    /// `(id, position)` pairs for oracle computations and index bulk loads.
    /// `Clone` so two-pass consumers (`GridIndex::bulk_load`-style counting
    /// then attaching) can walk it twice without materializing.
    pub fn snapshot(&self) -> impl Iterator<Item = (ObjectId, Point)> + Clone + '_ {
        self.pos
            .iter()
            .enumerate()
            .map(|(i, &p)| (ObjectId(i as u32), p))
    }

    /// Advances every object by one tick. Each object moves with probability
    /// `move_prob` (independently per tick); objects that skip a tick keep
    /// their position and report zero velocity.
    ///
    /// The loop is sequential by design: all objects share one RNG stream,
    /// and the per-object draw order is part of the golden-file contract.
    /// The parallelism lives downstream, in the consumers of the arrays
    /// this fills.
    pub fn step(&mut self) {
        self.tick += 1;
        self.moved.clear();
        for i in 0..self.pos.len() {
            if self.move_prob >= 1.0 || self.rng.gen_bool(self.move_prob) {
                let mut obj = self.object_at(i);
                let before = obj.pos;
                self.model.step(i, &mut obj, self.bounds, &mut self.rng);
                self.pos[i] = obj.pos;
                self.vel[i] = obj.vel;
                self.max_speed[i] = obj.max_speed;
                if obj.pos != before {
                    self.moved.push(i as u32);
                }
            } else {
                self.vel[i] = Vector::ZERO;
            }
        }
    }

    /// The motion model's name, for logs.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stationary, WorkloadSpec};

    #[test]
    fn step_advances_tick() {
        let mut w = WorkloadSpec {
            n_objects: 10,
            ..WorkloadSpec::default()
        }
        .build();
        assert_eq!(w.tick(), 0);
        w.step();
        w.step();
        assert_eq!(w.tick(), 2);
    }

    #[test]
    fn move_prob_zero_freezes_world() {
        let spec = WorkloadSpec {
            n_objects: 20,
            move_prob: 0.0,
            ..WorkloadSpec::default()
        };
        let mut w = spec.build();
        let before: Vec<_> = w.objects();
        for _ in 0..10 {
            w.step();
            assert!(w.moved().is_empty());
        }
        let after: Vec<_> = w.objects();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.pos, a.pos);
        }
    }

    #[test]
    fn move_prob_half_moves_some() {
        let spec = WorkloadSpec {
            n_objects: 200,
            move_prob: 0.5,
            ..WorkloadSpec::default()
        };
        let mut w = spec.build();
        let before: Vec<_> = w.objects();
        w.step();
        let moved = w
            .objects()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.pos != b.pos)
            .count();
        assert!(moved > 40 && moved < 160, "moved = {moved}");
        assert_eq!(w.moved().len(), moved, "moved() tracks position changes");
    }

    #[test]
    fn moved_lists_exactly_the_changed_indices_in_ascending_order() {
        let spec = WorkloadSpec {
            n_objects: 300,
            move_prob: 0.7,
            ..WorkloadSpec::default()
        };
        let mut w = spec.build();
        for _ in 0..5 {
            let before = w.objects();
            w.step();
            let after = w.objects();
            let expect: Vec<u32> = before
                .iter()
                .zip(&after)
                .enumerate()
                .filter(|(_, (b, a))| b.pos != a.pos)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(w.moved(), expect.as_slice());
        }
    }

    #[test]
    fn soa_accessors_agree_with_the_materialized_view() {
        let mut w = WorkloadSpec {
            n_objects: 50,
            ..WorkloadSpec::default()
        }
        .build();
        w.step();
        let objs = w.objects();
        assert_eq!(objs.len(), w.len());
        for (i, o) in objs.iter().enumerate() {
            assert_eq!(o.id, ObjectId(i as u32));
            assert_eq!(o.pos, w.positions()[i]);
            assert_eq!(o.vel, w.velocities()[i]);
            assert_eq!(o.max_speed, w.max_speeds()[i]);
            assert_eq!(*o, w.object(o.id));
        }
    }

    #[test]
    fn stationary_world_snapshot_is_stable() {
        let objs = vec![
            MovingObject::at(ObjectId(0), Point::new(1.0, 1.0), 0.0),
            MovingObject::at(ObjectId(1), Point::new(2.0, 2.0), 0.0),
        ];
        let mut w = World::new(
            Rect::square(10.0),
            objs,
            Box::new(Stationary),
            1.0,
            Rng::seed_from_u64(0),
        );
        w.step();
        assert_eq!(w.position(ObjectId(0)), Point::new(1.0, 1.0));
        assert_eq!(w.snapshot().count(), 2);
        assert_eq!(w.model_name(), "stationary");
    }
}
