//! Moving-object mobility models and workload generators.
//!
//! The target paper evaluates on synthetic moving-object workloads
//! (Brinkhoff-style network-based generators and uniform/skewed free-space
//! generators were the norm for the ICDE 2005–2007 kNN-monitoring
//! literature). No proprietary GPS traces are available, so this crate
//! implements the closest synthetic equivalents, all fully deterministic
//! under a seed:
//!
//! * [`RandomWaypoint`] — each object repeatedly picks a uniform waypoint
//!   and travels to it at a per-leg speed,
//! * [`RandomWalk`] — persistent headings with random turns, reflecting at
//!   the space boundary,
//! * [`RoadNetwork`] + [`RoadMotion`] — objects move along the edges of a
//!   synthetic grid road network, routed via shortest paths to random
//!   destinations,
//! * [`Placement`] — uniform or Gaussian-cluster (hotspot) initial
//!   positions,
//! * [`WorkloadSpec`] → [`World`] — a reproducible, steppable world used by
//!   the simulation harness.

#![deny(missing_docs)]

mod json;
mod model;
mod object;
mod roadnet;
mod workload;
mod world;

pub use model::{MotionModel, RandomWalk, RandomWaypoint, Stationary};
pub use object::MovingObject;
pub use roadnet::{RoadMotion, RoadNetwork};
pub use workload::{Motion, Placement, SpeedDist, WorkloadSpec};
pub use world::World;
