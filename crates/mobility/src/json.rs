//! JSON conversions for workload and object types.
//!
//! Enum encodings follow the external-tagging convention the former `serde`
//! derives used: unit variants are bare strings, data-carrying variants are
//! single-key objects (`{"Gaussian": {...}}`, `{"Fixed": 12.5}`).

use crate::{Motion, MovingObject, Placement, SpeedDist, WorkloadSpec};
use mknn_util::impl_json_struct;
use mknn_util::json::{FromJson, Json, JsonError, ToJson};

impl_json_struct!(MovingObject {
    id,
    pos,
    vel,
    max_speed
});
impl_json_struct!(WorkloadSpec {
    n_objects,
    space_side,
    placement,
    speeds,
    motion,
    move_prob,
    seed,
} default {
    speed_overrides,
});

impl ToJson for Placement {
    fn to_json(&self) -> Json {
        match *self {
            Placement::Uniform => Json::Str("Uniform".into()),
            Placement::Gaussian { clusters, sigma } => Json::object([(
                "Gaussian",
                Json::object([("clusters", clusters.to_json()), ("sigma", sigma.to_json())]),
            )]),
        }
    }
}

impl FromJson for Placement {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "Uniform" => Ok(Placement::Uniform),
            other => {
                let body = other
                    .field("Gaussian")
                    .map_err(|_| JsonError::new("expected \"Uniform\" or {\"Gaussian\": {...}}"))?;
                Ok(Placement::Gaussian {
                    clusters: body.parse_field("clusters")?,
                    sigma: body.parse_field("sigma")?,
                })
            }
        }
    }
}

impl ToJson for SpeedDist {
    fn to_json(&self) -> Json {
        match *self {
            SpeedDist::Fixed(v) => Json::object([("Fixed", v.to_json())]),
            SpeedDist::Uniform { min, max } => Json::object([(
                "Uniform",
                Json::object([("min", min.to_json()), ("max", max.to_json())]),
            )]),
            SpeedDist::Classes { slow, medium, fast } => Json::object([(
                "Classes",
                Json::object([
                    ("slow", slow.to_json()),
                    ("medium", medium.to_json()),
                    ("fast", fast.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for SpeedDist {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(val) = v.get("Fixed") {
            return Ok(SpeedDist::Fixed(f64::from_json(val)?));
        }
        if let Some(body) = v.get("Uniform") {
            return Ok(SpeedDist::Uniform {
                min: body.parse_field("min")?,
                max: body.parse_field("max")?,
            });
        }
        if let Some(body) = v.get("Classes") {
            return Ok(SpeedDist::Classes {
                slow: body.parse_field("slow")?,
                medium: body.parse_field("medium")?,
                fast: body.parse_field("fast")?,
            });
        }
        Err(JsonError::new(
            "expected a SpeedDist variant (Fixed/Uniform/Classes)",
        ))
    }
}

impl ToJson for Motion {
    fn to_json(&self) -> Json {
        match *self {
            Motion::Stationary => Json::Str("Stationary".into()),
            Motion::RandomWaypoint => Json::Str("RandomWaypoint".into()),
            Motion::RandomWalk => Json::Str("RandomWalk".into()),
            Motion::RoadNetwork { nx, ny, drop_prob } => Json::object([(
                "RoadNetwork",
                Json::object([
                    ("nx", nx.to_json()),
                    ("ny", ny.to_json()),
                    ("drop_prob", drop_prob.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for Motion {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => match s.as_str() {
                "Stationary" => Ok(Motion::Stationary),
                "RandomWaypoint" => Ok(Motion::RandomWaypoint),
                "RandomWalk" => Ok(Motion::RandomWalk),
                other => Err(JsonError::new(format!("unknown Motion variant `{other}`"))),
            },
            other => {
                let body = other.field("RoadNetwork").map_err(|_| {
                    JsonError::new("expected a Motion variant string or {\"RoadNetwork\": {...}}")
                })?;
                Ok(Motion::RoadNetwork {
                    nx: body.parse_field("nx")?,
                    ny: body.parse_field("ny")?,
                    drop_prob: body.parse_field("drop_prob")?,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::{ObjectId, Point, Vector};
    use mknn_util::{from_str, to_string};

    fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let s = to_string(v);
        let back: T = from_str(&s).unwrap_or_else(|e| panic!("parse of {s}: {e}"));
        assert_eq!(&back, v, "round trip through {s}");
    }

    #[test]
    fn placement_variants_round_trip() {
        roundtrip(&Placement::Uniform);
        roundtrip(&Placement::Gaussian {
            clusters: 4,
            sigma: 150.0,
        });
    }

    #[test]
    fn speed_dist_variants_round_trip() {
        roundtrip(&SpeedDist::Fixed(12.5));
        roundtrip(&SpeedDist::Uniform { min: 1.0, max: 9.0 });
        roundtrip(&SpeedDist::Classes {
            slow: 1.0,
            medium: 5.0,
            fast: 20.0,
        });
    }

    #[test]
    fn motion_variants_round_trip() {
        roundtrip(&Motion::Stationary);
        roundtrip(&Motion::RandomWaypoint);
        roundtrip(&Motion::RandomWalk);
        roundtrip(&Motion::RoadNetwork {
            nx: 6,
            ny: 7,
            drop_prob: 0.15,
        });
    }

    #[test]
    fn moving_object_round_trips() {
        let o = MovingObject {
            id: ObjectId(9),
            pos: Point::new(1.0, 2.0),
            vel: Vector::new(-0.5, 0.25),
            max_speed: 17.5,
        };
        roundtrip(&o);
    }

    #[test]
    fn workload_spec_with_overrides_round_trips() {
        let spec = WorkloadSpec {
            speed_overrides: vec![(3, 40.0), (7, 2.5)],
            placement: Placement::Gaussian {
                clusters: 3,
                sigma: 200.0,
            },
            motion: Motion::RoadNetwork {
                nx: 8,
                ny: 8,
                drop_prob: 0.2,
            },
            ..WorkloadSpec::default()
        };
        roundtrip(&spec);
    }

    #[test]
    fn missing_speed_overrides_defaults_to_empty() {
        let spec = WorkloadSpec::default();
        let json = to_string(&spec);
        // Simulate an older document without the field.
        let trimmed = json.replace(",\"speed_overrides\":[]", "");
        assert_ne!(json, trimmed, "test must actually remove the field");
        let back: WorkloadSpec = from_str(&trimmed).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_variants_are_rejected() {
        assert!(from_str::<Motion>("\"Teleport\"").is_err());
        assert!(from_str::<Placement>("{\"Ring\":{}}").is_err());
        assert!(from_str::<SpeedDist>("{\"Pareto\":{}}").is_err());
    }
}
