//! A synthetic road network and network-constrained motion.
//!
//! Stands in for the Brinkhoff generator over real city maps: a grid of
//! bidirectional roads (optionally with randomly removed edges to break the
//! symmetry), objects routed along shortest paths to random destinations.
//! Distances remain Euclidean — the target paper's query semantics are
//! Euclidean; the network only shapes the *movement*, which is what gives
//! network workloads their characteristic locality and anisotropy.

use crate::{MotionModel, MovingObject};
use mknn_geom::{Point, Rect, Vector};
use mknn_util::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A node index into a [`RoadNetwork`].
pub type NodeId = u32;

/// An undirected road network embedded in the plane.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    adj: Vec<Vec<NodeId>>,
}

impl RoadNetwork {
    /// Builds an `nx × ny` lattice of roads covering `bounds`, then removes
    /// each interior edge independently with probability `drop_prob`
    /// (connectivity is preserved by keeping the full boundary ring and by
    /// never disconnecting a node's last edge).
    pub fn grid(bounds: Rect, nx: u32, ny: u32, drop_prob: f64, rng: &mut Rng) -> Self {
        assert!(nx >= 2 && ny >= 2, "need at least a 2×2 lattice");
        let n = (nx * ny) as usize;
        let mut nodes = Vec::with_capacity(n);
        for j in 0..ny {
            for i in 0..nx {
                // Compute the lattice fractions first: `(w * i) / (n-1)`
                // rounds differently from `w * (i / (n-1))` and can land one
                // ulp outside the bounds at the far edge.
                let fx = i as f64 / (nx - 1) as f64;
                let fy = j as f64 / (ny - 1) as f64;
                nodes.push(
                    Point::new(
                        bounds.min.x + bounds.width() * fx,
                        bounds.min.y + bounds.height() * fy,
                    )
                    .clamp(bounds.min, bounds.max),
                );
            }
        }
        let id = |i: u32, j: u32| (j * nx + i) as NodeId;
        let mut net = RoadNetwork {
            nodes,
            adj: vec![Vec::new(); n],
        };
        for j in 0..ny {
            for i in 0..nx {
                if i + 1 < nx {
                    net.try_add_edge(
                        id(i, j),
                        id(i + 1, j),
                        j == 0 || j == ny - 1,
                        drop_prob,
                        rng,
                    );
                }
                if j + 1 < ny {
                    net.try_add_edge(
                        id(i, j),
                        id(i, j + 1),
                        i == 0 || i == nx - 1,
                        drop_prob,
                        rng,
                    );
                }
            }
        }
        net
    }

    fn try_add_edge(&mut self, a: NodeId, b: NodeId, keep: bool, drop_prob: f64, rng: &mut Rng) {
        let endangered = self.adj[a as usize].is_empty() || self.adj[b as usize].is_empty();
        if keep || endangered || !rng.gen_bool(drop_prob) {
            self.adj[a as usize].push(b);
            self.adj[b as usize].push(a);
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Position of node `n`.
    #[inline]
    pub fn position(&self, n: NodeId) -> Point {
        self.nodes[n as usize]
    }

    /// Neighbors of node `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n as usize]
    }

    /// The node nearest to `p` (linear scan; networks are small relative to
    /// object populations).
    pub fn nearest_node(&self, p: Point) -> NodeId {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, &q) in self.nodes.iter().enumerate() {
            let d = p.dist_sq(q);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best as NodeId
    }

    /// Shortest path (by Euclidean edge length) from `from` to `to`,
    /// returned as the node sequence *excluding* `from`. Empty when
    /// `from == to`; `None` when unreachable.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from as usize] = 0.0;
        heap.push(Reverse((OrdKey(0.0), from)));
        while let Some(Reverse((OrdKey(d), u))) = heap.pop() {
            if u == to {
                break;
            }
            if d > dist[u as usize] {
                continue;
            }
            let up = self.nodes[u as usize];
            for &v in &self.adj[u as usize] {
                let nd = d + up.dist(self.nodes[v as usize]);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    prev[v as usize] = u;
                    heap.push(Reverse((OrdKey(nd), v)));
                }
            }
        }
        if dist[to as usize].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while prev[cur as usize] != from {
            cur = prev[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// A uniformly random node.
    pub fn random_node(&self, rng: &mut Rng) -> NodeId {
        rng.gen_range(0..self.nodes.len() as u32)
    }
}

/// Total-order key for Dijkstra's heap (finite distances only).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdKey(f64);
impl Eq for OrdKey {}
impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Network-constrained motion: each object follows shortest paths between
/// successive random destination nodes at a per-object cruise speed.
#[derive(Debug, Clone)]
pub struct RoadMotion {
    net: RoadNetwork,
    /// Fraction of `max_speed` used as the per-object minimum cruise speed.
    pub min_speed_frac: f64,
    routes: Vec<Route>,
}

#[derive(Debug, Clone)]
struct Route {
    /// Remaining nodes to visit, in travel order (reversed storage: the next
    /// node is `path.last()`).
    path: Vec<NodeId>,
    speed: f64,
}

impl RoadMotion {
    /// Creates the model over `net`.
    pub fn new(net: RoadNetwork, min_speed_frac: f64) -> Self {
        RoadMotion {
            net,
            min_speed_frac,
            routes: Vec::new(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    fn fresh_route(&self, from: NodeId, speed: f64, rng: &mut Rng) -> Route {
        // Retry a few times in case a random destination is unreachable
        // (cannot happen on the generated grids, but stay robust).
        for _ in 0..8 {
            let dest = self.net.random_node(rng);
            if let Some(mut path) = self.net.shortest_path(from, dest) {
                if !path.is_empty() {
                    path.reverse(); // travel order = pop from the back
                    return Route { path, speed };
                }
            }
        }
        // Degenerate fallback: wander to any neighbor.
        let next = self.net.neighbors(from).first().copied().unwrap_or(from);
        Route {
            path: vec![next],
            speed,
        }
    }
}

impl MotionModel for RoadMotion {
    fn init(&mut self, objects: &mut [MovingObject], _bounds: Rect, rng: &mut Rng) {
        self.routes = objects
            .iter_mut()
            .map(|o| {
                // Snap the object onto the network.
                let node = self.net.nearest_node(o.pos);
                o.pos = self.net.position(node);
                let lo = self.min_speed_frac * o.max_speed;
                let speed = if o.max_speed > 0.0 && lo < o.max_speed {
                    rng.gen_range(lo..=o.max_speed)
                } else {
                    o.max_speed
                };
                self.fresh_route(node, speed, rng)
            })
            .collect();
    }

    fn step(&mut self, idx: usize, obj: &mut MovingObject, _bounds: Rect, rng: &mut Rng) {
        let mut route = std::mem::replace(
            &mut self.routes[idx],
            Route {
                path: Vec::new(),
                speed: 0.0,
            },
        );
        let mut budget = route.speed;
        obj.vel = Vector::ZERO;
        let start = obj.pos;
        while budget > 0.0 {
            let Some(&next) = route.path.last() else {
                // Destination reached: plan the next trip.
                let here = self.net.nearest_node(obj.pos);
                let speed = route.speed;
                route = self.fresh_route(here, speed, rng);
                continue;
            };
            let target = self.net.position(next);
            let to_target = obj.pos.vector_to(target);
            let dist = to_target.norm();
            if dist <= budget {
                obj.pos = target;
                budget -= dist;
                route.path.pop();
                if route.path.is_empty() {
                    break; // arrive; replan next tick
                }
            } else {
                obj.pos += to_target * (budget / dist);
                budget = 0.0;
            }
        }
        // Road nodes lie inside the bounds, but edge interpolation can
        // overshoot by an ulp; keep the position/velocity contract intact.
        obj.pos = obj.pos.clamp(_bounds.min, _bounds.max);
        obj.vel = obj.pos - start;
        self.routes[idx] = route;
    }

    fn name(&self) -> &'static str {
        "road-network"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::ObjectId;

    fn net() -> RoadNetwork {
        let mut rng = Rng::seed_from_u64(5);
        RoadNetwork::grid(Rect::square(100.0), 5, 5, 0.2, &mut rng)
    }

    #[test]
    fn grid_has_expected_shape() {
        let mut rng = Rng::seed_from_u64(0);
        let full = RoadNetwork::grid(Rect::square(100.0), 4, 3, 0.0, &mut rng);
        assert_eq!(full.node_count(), 12);
        // 3 rows × 3 horizontal + 4 cols × 2 vertical = 9 + 8 = 17 edges.
        assert_eq!(full.edge_count(), 17);
        assert_eq!(full.position(0), Point::new(0.0, 0.0));
        assert_eq!(full.position(11), Point::new(100.0, 100.0));
    }

    #[test]
    fn dropped_edges_keep_connectivity() {
        let n = net();
        for target in 0..n.node_count() as u32 {
            assert!(
                n.shortest_path(0, target).is_some(),
                "node {target} unreachable"
            );
        }
    }

    #[test]
    fn shortest_path_on_full_grid_is_manhattan() {
        let mut rng = Rng::seed_from_u64(0);
        let full = RoadNetwork::grid(Rect::square(100.0), 5, 5, 0.0, &mut rng);
        // From corner (0) to opposite corner (24): length 8 edges of 25 each.
        let path = full.shortest_path(0, 24).unwrap();
        assert_eq!(path.len(), 8);
        let mut len = 0.0;
        let mut prev = full.position(0);
        for &n in &path {
            len += prev.dist(full.position(n));
            prev = full.position(n);
        }
        assert!((len - 200.0).abs() < 1e-9);
    }

    #[test]
    fn nearest_node_snaps() {
        let mut rng = Rng::seed_from_u64(0);
        let full = RoadNetwork::grid(Rect::square(100.0), 5, 5, 0.0, &mut rng);
        assert_eq!(full.nearest_node(Point::new(1.0, 2.0)), 0);
        assert_eq!(full.nearest_node(Point::new(99.0, 99.0)), 24);
    }

    #[test]
    fn objects_travel_along_roads() {
        let mut model = RoadMotion::new(net(), 0.5);
        let bounds = Rect::square(100.0);
        let mut rng = Rng::seed_from_u64(11);
        let mut objs: Vec<MovingObject> = (0..10)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(i as f64 * 9.0, 40.0), 8.0))
            .collect();
        model.init(&mut objs, bounds, &mut rng);
        for _ in 0..200 {
            #[allow(clippy::needless_range_loop)] // the model API is index-based
            for i in 0..objs.len() {
                let mut o = objs[i];
                model.step(i, &mut o, bounds, &mut rng);
                assert!(o.speed() <= o.max_speed + 1e-9);
                assert!(bounds.contains(o.pos));
                objs[i] = o;
            }
        }
        // Positions should lie on grid lines (x or y a multiple of 25).
        for o in &objs {
            let on_x = (o.pos.x / 25.0 - (o.pos.x / 25.0).round()).abs() < 1e-6;
            let on_y = (o.pos.y / 25.0 - (o.pos.y / 25.0).round()).abs() < 1e-6;
            assert!(on_x || on_y, "{:?} is off-road", o.pos);
        }
    }

    #[test]
    fn shortest_path_same_node_is_empty() {
        assert_eq!(net().shortest_path(3, 3), Some(vec![]));
    }
}
