//! The state of one moving object.

use mknn_geom::{ObjectId, Point, Vector};

/// Ground-truth state of one moving object (the device's own knowledge of
/// itself — protocols only ever see what the object chooses to report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingObject {
    /// Identity of the object.
    pub id: ObjectId,
    /// Current true position.
    pub pos: Point,
    /// Displacement applied on the last tick the object moved (its current
    /// velocity estimate, in meters per tick).
    pub vel: Vector,
    /// The object's maximum speed, in meters per tick. Mobility models never
    /// exceed it; protocols may use it to bound future displacement.
    pub max_speed: f64,
}

impl MovingObject {
    /// Creates an object at rest.
    pub fn at(id: ObjectId, pos: Point, max_speed: f64) -> Self {
        debug_assert!(max_speed >= 0.0);
        MovingObject {
            id,
            pos,
            vel: Vector::ZERO,
            max_speed,
        }
    }

    /// Current speed (norm of the velocity), in meters per tick.
    #[inline]
    pub fn speed(&self) -> f64 {
        self.vel.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_rest_has_zero_speed() {
        let o = MovingObject::at(ObjectId(1), Point::new(2.0, 3.0), 10.0);
        assert_eq!(o.speed(), 0.0);
        assert_eq!(o.pos, Point::new(2.0, 3.0));
    }
}
