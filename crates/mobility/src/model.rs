//! Free-space motion models.

use crate::MovingObject;
use mknn_geom::{Point, Rect, Vector};
use mknn_util::Rng;

/// A motion model advances objects one tick at a time.
///
/// Models may keep per-object auxiliary state (waypoints, route progress)
/// indexed by the object's position in the world's object vector; `init` is
/// called exactly once with the full population before the first step.
pub trait MotionModel {
    /// Prepares per-object state. Default: nothing.
    fn init(&mut self, _objects: &mut [MovingObject], _bounds: Rect, _rng: &mut Rng) {}

    /// Advances object `idx` by one tick. Implementations must keep
    /// `obj.pos` inside `bounds` and `obj.vel.norm() ≤ obj.max_speed`.
    fn step(&mut self, idx: usize, obj: &mut MovingObject, bounds: Rect, rng: &mut Rng);

    /// Human-readable model name (for experiment logs).
    fn name(&self) -> &'static str;
}

/// Objects that never move. Useful for landmark datasets and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stationary;

impl MotionModel for Stationary {
    fn step(&mut self, _idx: usize, obj: &mut MovingObject, _bounds: Rect, _rng: &mut Rng) {
        obj.vel = Vector::ZERO;
    }

    fn name(&self) -> &'static str {
        "stationary"
    }
}

/// The classic random-waypoint model: each object repeatedly picks a
/// uniformly random waypoint in the space and travels toward it in a
/// straight line at a per-leg speed drawn from `[min_speed_frac·v_max,
/// v_max]`, pausing `pause_ticks` on arrival.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    /// Fraction of the object's `max_speed` used as the per-leg minimum.
    pub min_speed_frac: f64,
    /// Ticks to wait at each waypoint before departing again.
    pub pause_ticks: u32,
    legs: Vec<Leg>,
}

#[derive(Debug, Clone, Copy)]
struct Leg {
    target: Point,
    speed: f64,
    pause_left: u32,
}

impl RandomWaypoint {
    /// Creates the model with the given per-leg minimum-speed fraction and
    /// pause duration.
    pub fn new(min_speed_frac: f64, pause_ticks: u32) -> Self {
        debug_assert!((0.0..=1.0).contains(&min_speed_frac));
        RandomWaypoint {
            min_speed_frac,
            pause_ticks,
            legs: Vec::new(),
        }
    }

    fn fresh_leg(&self, obj: &MovingObject, bounds: Rect, rng: &mut Rng) -> Leg {
        let target = Point::new(
            rng.gen_range(bounds.min.x..=bounds.max.x),
            rng.gen_range(bounds.min.y..=bounds.max.y),
        );
        let lo = self.min_speed_frac * obj.max_speed;
        let speed = if obj.max_speed > 0.0 && lo < obj.max_speed {
            rng.gen_range(lo..=obj.max_speed)
        } else {
            obj.max_speed
        };
        Leg {
            target,
            speed,
            pause_left: 0,
        }
    }
}

impl Default for RandomWaypoint {
    fn default() -> Self {
        RandomWaypoint::new(0.25, 0)
    }
}

impl MotionModel for RandomWaypoint {
    fn init(&mut self, objects: &mut [MovingObject], bounds: Rect, rng: &mut Rng) {
        self.legs = objects
            .iter()
            .map(|o| self.fresh_leg(o, bounds, rng))
            .collect();
    }

    fn step(&mut self, idx: usize, obj: &mut MovingObject, bounds: Rect, rng: &mut Rng) {
        let mut leg = self.legs[idx];
        if leg.pause_left > 0 {
            leg.pause_left -= 1;
            obj.vel = Vector::ZERO;
            self.legs[idx] = leg;
            return;
        }
        let to_target = obj.pos.vector_to(leg.target);
        let dist = to_target.norm();
        if dist <= leg.speed || dist == 0.0 {
            // Arrive this tick, then schedule the next leg.
            obj.vel = to_target;
            obj.pos = leg.target;
            leg = self.fresh_leg(obj, bounds, rng);
            leg.pause_left = self.pause_ticks;
        } else {
            // Clamp against 1-ulp overshoot when the target sits exactly on
            // the space boundary; `vel` must stay equal to the applied
            // displacement.
            let next = (obj.pos + to_target * (leg.speed / dist)).clamp(bounds.min, bounds.max);
            obj.vel = next - obj.pos;
            obj.pos = next;
        }
        self.legs[idx] = leg;
        debug_assert!(bounds.contains(obj.pos));
    }

    fn name(&self) -> &'static str {
        "random-waypoint"
    }
}

/// A random walk with persistent headings: each tick the object turns with
/// probability `turn_prob` to a fresh uniform heading, moves at its
/// per-object cruise speed, and reflects off the space boundary.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    /// Probability of choosing a new heading on any given tick.
    pub turn_prob: f64,
    /// Fraction of `max_speed` used as the per-object minimum cruise speed.
    pub min_speed_frac: f64,
    cruise: Vec<f64>,
    /// Persistent per-object heading vectors (kept apart from the reported
    /// velocity, which must equal the applied displacement).
    heading: Vec<Vector>,
}

impl RandomWalk {
    /// Creates the model.
    pub fn new(turn_prob: f64, min_speed_frac: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&turn_prob));
        RandomWalk {
            turn_prob,
            min_speed_frac,
            cruise: Vec::new(),
            heading: Vec::new(),
        }
    }
}

impl Default for RandomWalk {
    fn default() -> Self {
        RandomWalk::new(0.1, 0.25)
    }
}

impl MotionModel for RandomWalk {
    fn init(&mut self, objects: &mut [MovingObject], _bounds: Rect, rng: &mut Rng) {
        self.cruise.clear();
        self.heading.clear();
        for o in objects.iter_mut() {
            let lo = self.min_speed_frac * o.max_speed;
            let speed = if o.max_speed > 0.0 && lo < o.max_speed {
                rng.gen_range(lo..=o.max_speed)
            } else {
                o.max_speed
            };
            let heading = Vector::from_heading(rng.gen_range(0.0..std::f64::consts::TAU)) * speed;
            o.vel = heading;
            self.cruise.push(speed);
            self.heading.push(heading);
        }
    }

    fn step(&mut self, idx: usize, obj: &mut MovingObject, bounds: Rect, rng: &mut Rng) {
        let speed = self.cruise[idx];
        let mut heading = if rng.gen_bool(self.turn_prob) || obj.vel == Vector::ZERO {
            Vector::from_heading(rng.gen_range(0.0..std::f64::consts::TAU)) * speed
        } else {
            self.heading[idx]
        };
        let mut next = obj.pos + heading;
        // Reflect at the boundary (component-wise mirror). The clamped step
        // may be shorter than the cruise speed; `obj.vel` must report the
        // displacement actually applied (the protocols reconstruct the
        // previous position as `pos − vel`), so the mirrored heading is kept
        // separately for the next tick.
        if next.x < bounds.min.x || next.x > bounds.max.x {
            heading.x = -heading.x;
            next.x = next.x.clamp(bounds.min.x, bounds.max.x);
        }
        if next.y < bounds.min.y || next.y > bounds.max.y {
            heading.y = -heading.y;
            next.y = next.y.clamp(bounds.min.y, bounds.max.y);
        }
        self.heading[idx] = heading;
        obj.vel = next - obj.pos;
        obj.pos = next;
        debug_assert!(bounds.contains(obj.pos));
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_geom::ObjectId;

    fn run_model(mut model: impl MotionModel, ticks: usize) -> Vec<MovingObject> {
        let bounds = Rect::square(100.0);
        let mut rng = Rng::seed_from_u64(7);
        let mut objs: Vec<MovingObject> = (0..20)
            .map(|i| MovingObject::at(ObjectId(i), Point::new(50.0, 50.0), 5.0))
            .collect();
        model.init(&mut objs, bounds, &mut rng);
        for _ in 0..ticks {
            #[allow(clippy::needless_range_loop)] // the model API is index-based
            for i in 0..objs.len() {
                let mut o = objs[i];
                model.step(i, &mut o, bounds, &mut rng);
                objs[i] = o;
            }
        }
        objs
    }

    fn assert_in_bounds_and_speed_capped(objs: &[MovingObject]) {
        let bounds = Rect::square(100.0);
        for o in objs {
            assert!(bounds.contains(o.pos), "{:?} escaped", o);
            assert!(o.speed() <= o.max_speed + 1e-9, "{:?} too fast", o);
        }
    }

    #[test]
    fn stationary_never_moves() {
        let objs = run_model(Stationary, 50);
        assert!(objs.iter().all(|o| o.pos == Point::new(50.0, 50.0)));
    }

    #[test]
    fn random_waypoint_stays_in_bounds() {
        let objs = run_model(RandomWaypoint::default(), 500);
        assert_in_bounds_and_speed_capped(&objs);
        // After 500 ticks at speed ≥ 1.25, objects must have dispersed.
        let moved = objs
            .iter()
            .filter(|o| o.pos != Point::new(50.0, 50.0))
            .count();
        assert!(moved > 15);
    }

    #[test]
    fn random_waypoint_pauses_at_waypoints() {
        let mut model = RandomWaypoint::new(1.0, 3);
        let bounds = Rect::square(10.0);
        let mut rng = Rng::seed_from_u64(1);
        let mut objs = vec![MovingObject::at(ObjectId(0), Point::new(5.0, 5.0), 100.0)];
        model.init(&mut objs, bounds, &mut rng);
        // Speed 100 in a 10×10 world: every step arrives, then pauses 3.
        let mut o = objs[0];
        model.step(0, &mut o, bounds, &mut rng); // arrival tick
        let arrived_at = o.pos;
        for _ in 0..3 {
            model.step(0, &mut o, bounds, &mut rng);
            assert_eq!(o.pos, arrived_at, "should pause");
            assert_eq!(o.vel, Vector::ZERO);
        }
        model.step(0, &mut o, bounds, &mut rng);
        assert_ne!(o.pos, arrived_at, "should depart after pause");
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let objs = run_model(RandomWalk::default(), 500);
        assert_in_bounds_and_speed_capped(&objs);
    }

    #[test]
    fn random_walk_reflects_instead_of_sticking() {
        let mut model = RandomWalk::new(0.0, 1.0); // never turn, full speed
        let bounds = Rect::square(100.0);
        let mut rng = Rng::seed_from_u64(3);
        let mut objs = vec![MovingObject::at(ObjectId(0), Point::new(99.0, 50.0), 4.0)];
        model.init(&mut objs, bounds, &mut rng);
        let mut o = objs[0];
        o.vel = Vector::new(4.0, 0.0); // force a wall hit
        let mut xs = Vec::new();
        for _ in 0..10 {
            model.step(0, &mut o, bounds, &mut rng);
            xs.push(o.pos.x);
        }
        assert!(xs.iter().any(|&x| x < 99.0), "should bounce back: {xs:?}");
        assert!(xs.iter().all(|&x| x <= 100.0));
    }
}
