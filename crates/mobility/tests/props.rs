//! Property tests for the mobility substrate: physical invariants hold for
//! every model under every seed.

use mknn_geom::Point;
use mknn_mobility::{Motion, Placement, SpeedDist, WorkloadSpec};
use proptest::prelude::*;

fn spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        (5usize..150),
        (200.0..2_000.0f64),
        prop_oneof![
            Just(Motion::Stationary),
            Just(Motion::RandomWaypoint),
            Just(Motion::RandomWalk),
            Just(Motion::RoadNetwork { nx: 4, ny: 4, drop_prob: 0.2 }),
        ],
        prop_oneof![
            (0.1..40.0f64).prop_map(SpeedDist::Fixed),
            (0.1..10.0f64, 10.0..40.0f64).prop_map(|(min, max)| SpeedDist::Uniform { min, max }),
            Just(SpeedDist::Classes { slow: 2.0, medium: 10.0, fast: 30.0 }),
        ],
        prop_oneof![
            Just(Placement::Uniform),
            (1usize..5, 10.0..300.0f64)
                .prop_map(|(clusters, sigma)| Placement::Gaussian { clusters, sigma }),
        ],
        (0.0..=1.0f64),
        any::<u64>(),
    )
        .prop_map(|(n_objects, space_side, motion, speeds, placement, move_prob, seed)| {
            WorkloadSpec {
                n_objects,
                space_side,
                motion,
                speeds,
                placement,
                move_prob,
                seed,
                speed_overrides: Vec::new(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn objects_never_escape_nor_speed(spec in spec()) {
        let mut w = spec.build();
        let bounds = w.bounds();
        for _ in 0..40 {
            let before: Vec<Point> = w.objects().iter().map(|o| o.pos).collect();
            w.step();
            for (o, prev) in w.objects().iter().zip(&before) {
                prop_assert!(bounds.contains(o.pos), "{:?} escaped {:?}", o, bounds);
                // The tick displacement respects the per-object speed bound.
                let moved = o.pos.dist(*prev);
                prop_assert!(
                    moved <= o.max_speed + 1e-6,
                    "object {} moved {moved} > cap {}",
                    o.id, o.max_speed
                );
                // The advertised velocity equals the actual displacement.
                prop_assert!((o.vel.norm() - moved).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn replay_is_bit_identical(spec in spec()) {
        let mut a = spec.build();
        let mut b = spec.build();
        for _ in 0..25 {
            a.step();
            b.step();
        }
        prop_assert_eq!(a.objects(), b.objects());
    }

    #[test]
    fn speed_distribution_respects_bounds(spec in spec()) {
        let w = spec.build();
        let cap = spec.speeds.max_speed();
        for o in w.objects() {
            prop_assert!(o.max_speed <= cap + 1e-9);
            prop_assert!(o.max_speed >= 0.0);
        }
    }

    #[test]
    fn move_prob_zero_is_a_freeze_frame(mut spec in spec()) {
        spec.move_prob = 0.0;
        let mut w = spec.build();
        let before: Vec<Point> = w.objects().iter().map(|o| o.pos).collect();
        for _ in 0..10 {
            w.step();
        }
        for (o, prev) in w.objects().iter().zip(&before) {
            prop_assert_eq!(o.pos, *prev);
        }
    }
}
