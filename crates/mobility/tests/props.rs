//! Property tests for the mobility substrate: physical invariants hold for
//! every model under every seed (mknn-util `check` harness).

use mknn_geom::Point;
use mknn_mobility::{Motion, Placement, SpeedDist, WorkloadSpec};
use mknn_util::check::forall;
use mknn_util::Rng;

/// Cases per property (matches the former proptest config of 48).
const CASES: u64 = 48;

fn spec(rng: &mut Rng) -> WorkloadSpec {
    let n_objects = rng.gen_range(5usize..150);
    let space_side = rng.gen_range(200.0..2_000.0);
    let motion = match rng.gen_range(0u32..4) {
        0 => Motion::Stationary,
        1 => Motion::RandomWaypoint,
        2 => Motion::RandomWalk,
        _ => Motion::RoadNetwork {
            nx: 4,
            ny: 4,
            drop_prob: 0.2,
        },
    };
    let speeds = match rng.gen_range(0u32..3) {
        0 => SpeedDist::Fixed(rng.gen_range(0.1..40.0)),
        1 => SpeedDist::Uniform {
            min: rng.gen_range(0.1..10.0),
            max: rng.gen_range(10.0..40.0),
        },
        _ => SpeedDist::Classes {
            slow: 2.0,
            medium: 10.0,
            fast: 30.0,
        },
    };
    let placement = if rng.gen_bool(0.5) {
        Placement::Uniform
    } else {
        Placement::Gaussian {
            clusters: rng.gen_range(1usize..5),
            sigma: rng.gen_range(10.0..300.0),
        }
    };
    WorkloadSpec {
        n_objects,
        space_side,
        motion,
        speeds,
        placement,
        move_prob: rng.gen_range(0.0..=1.0),
        seed: rng.next_u64(),
        speed_overrides: Vec::new(),
    }
}

#[test]
fn objects_never_escape_nor_speed() {
    forall(CASES, |rng| {
        let spec = spec(rng);
        let mut w = spec.build();
        let bounds = w.bounds();
        for _ in 0..40 {
            let before: Vec<Point> = w.objects().iter().map(|o| o.pos).collect();
            w.step();
            for (o, prev) in w.objects().iter().zip(&before) {
                assert!(bounds.contains(o.pos), "{:?} escaped {:?}", o, bounds);
                // The tick displacement respects the per-object speed bound.
                let moved = o.pos.dist(*prev);
                assert!(
                    moved <= o.max_speed + 1e-6,
                    "object {} moved {moved} > cap {}",
                    o.id,
                    o.max_speed
                );
                // The advertised velocity equals the actual displacement.
                assert!((o.vel.norm() - moved).abs() < 1e-6);
            }
        }
    });
}

#[test]
fn replay_is_bit_identical() {
    forall(CASES, |rng| {
        let spec = spec(rng);
        let mut a = spec.build();
        let mut b = spec.build();
        for _ in 0..25 {
            a.step();
            b.step();
        }
        assert_eq!(a.objects(), b.objects());
    });
}

#[test]
fn speed_distribution_respects_bounds() {
    forall(CASES, |rng| {
        let spec = spec(rng);
        let w = spec.build();
        let cap = spec.speeds.max_speed();
        for o in w.objects() {
            assert!(o.max_speed <= cap + 1e-9);
            assert!(o.max_speed >= 0.0);
        }
    });
}

#[test]
fn move_prob_zero_is_a_freeze_frame() {
    forall(CASES, |rng| {
        let mut spec = spec(rng);
        spec.move_prob = 0.0;
        let mut w = spec.build();
        let before: Vec<Point> = w.objects().iter().map(|o| o.pos).collect();
        for _ in 0..10 {
            w.step();
        }
        for (o, prev) in w.objects().iter().zip(&before) {
            assert_eq!(o.pos, *prev);
        }
    });
}
