//! Property tests for the snapshot oracle: the indexed (kd-tree) backend
//! must agree with the brute-force reference on every query — same
//! neighbors, same distances, same `AnswerCheck` — under random worlds,
//! duplicate positions, focal exclusion, and `k ≥ population`.

use mknn_geom::{ObjectId, Point, Rect};
use mknn_mobility::{MovingObject, Stationary, World};
use mknn_sim::{check_answer, SnapshotOracle};
use mknn_util::check::forall;
use mknn_util::Rng;

const CASES: u64 = 64;
const SIDE: f64 = 1000.0;

/// A stationary world with `n` objects; when `lattice` is set, positions
/// come from a coarse grid so duplicate positions (exact ties) are common.
fn make_world(rng: &mut Rng, n: usize, lattice: bool) -> World {
    let objects = (0..n)
        .map(|i| {
            let (x, y) = if lattice {
                (
                    rng.gen_range(0u32..6) as f64 * 100.0,
                    rng.gen_range(0u32..6) as f64 * 100.0,
                )
            } else {
                (rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE))
            };
            MovingObject::at(ObjectId(i as u32), Point::new(x, y), 10.0)
        })
        .collect();
    World::new(
        Rect::square(SIDE),
        objects,
        Box::new(Stationary),
        1.0,
        Rng::seed_from_u64(7),
    )
}

/// Indexed and brute-force backends return identical neighbor lists
/// (ids *and* squared distances) for `knn_excluding`.
#[test]
fn indexed_oracle_equals_bruteforce_oracle() {
    forall(CASES, |rng| {
        let n = rng.gen_range(1usize..150);
        let lattice = rng.gen_bool(0.5);
        let world = make_world(rng, n, lattice);
        let indexed = SnapshotOracle::build(&world);
        let brute = SnapshotOracle::build_bruteforce(&world);
        let center = Point::new(rng.gen_range(0.0..SIDE), rng.gen_range(0.0..SIDE));
        let k = rng.gen_range(0usize..(n + 4)); // sometimes k ≥ population
        let focal = ObjectId(rng.gen_range(0u32..n as u32));
        let a = indexed.knn_excluding(center, k, focal);
        let b = brute.knn_excluding(center, k, focal);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.dist_sq, y.dist_sq);
        }
    });
}

/// `check_answer` produces an identical `AnswerCheck` from either backend,
/// for arbitrary (including wrong, short, and shuffled) answers.
#[test]
fn check_answer_is_backend_independent() {
    forall(CASES, |rng| {
        let n = rng.gen_range(1usize..100);
        let lattice = rng.gen_bool(0.5);
        let world = make_world(rng, n, lattice);
        let indexed = SnapshotOracle::build(&world);
        let brute = SnapshotOracle::build_bruteforce(&world);
        let focal = ObjectId(rng.gen_range(0u32..n as u32));
        let k = rng.gen_range(0usize..12);
        let center = world.position(focal);
        // Random answer: a subset of random ids of random length (may omit
        // members, include the focal, repeat, or be empty).
        let len = rng.gen_range(0usize..(k + 2));
        let answer: Vec<ObjectId> = (0..len)
            .map(|_| ObjectId(rng.gen_range(0u32..n as u32)))
            .collect();
        let ordered = rng.gen_bool(0.5);
        let a = check_answer(&world, &indexed, focal, k, &answer, center, center, ordered);
        let b = check_answer(&world, &brute, focal, k, &answer, center, center, ordered);
        assert_eq!(a, b, "backends disagree on an AnswerCheck");
    });
}

/// The correct answer (as computed by the brute-force backend) always
/// scores exact against the indexed backend — the tentpole's core claim.
#[test]
fn true_answer_scores_exact_under_the_indexed_oracle() {
    forall(CASES, |rng| {
        let n = rng.gen_range(1usize..100);
        let lattice = rng.gen_bool(0.5);
        let world = make_world(rng, n, lattice);
        let indexed = SnapshotOracle::build(&world);
        let brute = SnapshotOracle::build_bruteforce(&world);
        let focal = ObjectId(rng.gen_range(0u32..n as u32));
        let k = rng.gen_range(0usize..12);
        let center = world.position(focal);
        let truth: Vec<ObjectId> = brute
            .knn_excluding(center, k, focal)
            .into_iter()
            .map(|nb| nb.id)
            .collect();
        let c = check_answer(&world, &indexed, focal, k, &truth, center, center, true);
        assert!(c.exact, "true answer must verify exact");
        assert_eq!(c.recall_vs_true, 1.0);
        assert_eq!(c.dist_error, 0.0);
    });
}
