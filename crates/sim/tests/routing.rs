//! Harness routing and charging semantics, observed through a purpose-built
//! inspection protocol: geocast delivery is zone-membership-based, every
//! transmission is charged, probes are never free.

use mknn_geom::{Circle, ObjectId, Point, QueryId, Rect, Tick, Vector};
use mknn_mobility::{Motion, SpeedDist, WorkloadSpec};
use mknn_net::{
    DownlinkMsg, MsgKind, OpCounters, Outbox, ProbeService, Protocol, QuerySpec, Recipient,
    UplinkMsg, Uplinks,
};
use mknn_sim::{DownlinkMode, SimConfig, Simulation, VerifyMode};
use std::cell::RefCell;
use std::rc::Rc;

/// A protocol whose server sends a scripted downlink each tick and whose
/// clients record everything they receive.
struct Inspector {
    /// (tick, device, kind) for every delivered downlink.
    received: Rc<RefCell<Vec<(Tick, u32, MsgKind)>>>,
    /// What to send each tick.
    script: fn(Tick, &mut Outbox),
    /// Probe zone to fire at tick 3 (None = never).
    probe_at_3: Option<Circle>,
    probe_replies: Rc<RefCell<usize>>,
    empty: Vec<ObjectId>,
}

impl Protocol for Inspector {
    fn name(&self) -> &'static str {
        "inspector"
    }

    fn init(
        &mut self,
        _bounds: Rect,
        _objects: &[mknn_mobility::MovingObject],
        _queries: &[QuerySpec],
        _probe: &mut dyn ProbeService,
        _outbox: &mut Outbox,
        _ops: &mut OpCounters,
    ) {
    }

    fn client_tick(
        &mut self,
        tick: Tick,
        me: &mknn_mobility::MovingObject,
        inbox: &[DownlinkMsg],
        _up: &mut Uplinks,
        _ops: &mut OpCounters,
    ) {
        for msg in inbox {
            self.received.borrow_mut().push((tick, me.id.0, msg.kind()));
        }
    }

    fn server_tick(
        &mut self,
        tick: Tick,
        _uplinks: &Uplinks,
        probe: &mut dyn ProbeService,
        outbox: &mut Outbox,
        _ops: &mut OpCounters,
    ) {
        (self.script)(tick, outbox);
        if tick == 3 {
            if let Some(zone) = self.probe_at_3 {
                let replies = probe.probe(QueryId(0), zone, ObjectId(u32::MAX));
                *self.probe_replies.borrow_mut() = replies.len();
            }
        }
    }

    fn answer(&self, _query: QueryId) -> &[ObjectId] {
        &self.empty
    }

    fn guarantees_exact(&self) -> bool {
        false
    }
}

fn frozen_world(n: usize) -> SimConfig {
    SimConfig {
        workload: WorkloadSpec {
            n_objects: n,
            space_side: 100.0,
            motion: Motion::Stationary,
            speeds: SpeedDist::Fixed(0.0),
            ..WorkloadSpec::default()
        },
        n_queries: 1,
        k: 1,
        ticks: 5,
        geo_cells: 10, // 10 m cells
        verify: VerifyMode::Off,
        fault: mknn_net::FaultPlan::none(),
        shards: 1,
        client_threads: None,
        downlink: DownlinkMode::Scoped,
    }
}

fn run_inspector(
    cfg: &SimConfig,
    script: fn(Tick, &mut Outbox),
    probe_at_3: Option<Circle>,
) -> (Vec<(Tick, u32, MsgKind)>, usize, mknn_sim::EpisodeMetrics) {
    let received = Rc::new(RefCell::new(Vec::new()));
    let probe_replies = Rc::new(RefCell::new(0usize));
    let proto = Inspector {
        received: received.clone(),
        script,
        probe_at_3,
        probe_replies: probe_replies.clone(),
        empty: Vec::new(),
    };
    let mut sim = Simulation::new(cfg, Box::new(proto));
    for _ in 0..cfg.ticks {
        sim.step();
    }
    let metrics = sim.metrics().clone();
    let r = received.borrow().clone();
    let p = *probe_replies.borrow();
    (r, p, metrics)
}

#[test]
fn unicast_reaches_exactly_one_device_next_tick() {
    let cfg = frozen_world(20);
    let (received, _, metrics) = run_inspector(
        &cfg,
        |tick, outbox| {
            if tick == 1 {
                outbox.send(
                    Recipient::One(ObjectId(7)),
                    DownlinkMsg::ClearBand { query: QueryId(0) },
                );
            }
        },
        None,
    );
    assert_eq!(received, vec![(2, 7, MsgKind::ClearBand)]);
    assert_eq!(metrics.net.downlink_unicast_msgs, 1);
    assert_eq!(metrics.net.downlink_geocast_msgs, 0);
}

#[test]
fn broadcast_reaches_every_device_once() {
    let cfg = frozen_world(15);
    let (received, _, metrics) = run_inspector(
        &cfg,
        |tick, outbox| {
            if tick == 1 {
                outbox.send(
                    Recipient::Broadcast,
                    DownlinkMsg::RemoveRegion { query: QueryId(0) },
                );
            }
        },
        None,
    );
    assert_eq!(received.len(), 15);
    assert!(received
        .iter()
        .all(|&(tick, _, kind)| tick == 2 && kind == MsgKind::RemoveRegion));
    let mut ids: Vec<u32> = received.iter().map(|&(_, id, _)| id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 15, "each device exactly once");
    assert_eq!(metrics.net.downlink_broadcast_msgs, 1);
}

#[test]
fn geocast_delivers_by_zone_membership_and_charges_cells() {
    // Deterministic world: devices on a line thanks to the fixed seed; use
    // the known uniform placement and check membership against the zone.
    let cfg = frozen_world(60);
    let zone = Circle::new(Point::new(50.0, 50.0), 25.0);
    let (received, _, metrics) = run_inspector(
        &cfg,
        |tick, outbox| {
            if tick == 1 {
                outbox.send(
                    Recipient::Geocast(Circle::new(Point::new(50.0, 50.0), 25.0)),
                    DownlinkMsg::RemoveRegion { query: QueryId(0) },
                );
            }
        },
        None,
    );
    // Recompute who should have heard it from the workload itself.
    let world = cfg.workload.build();
    let expected: Vec<u32> = world
        .objects()
        .iter()
        .filter(|o| zone.contains(o.pos))
        .map(|o| o.id.0)
        .collect();
    let mut got: Vec<u32> = received.iter().map(|&(_, id, _)| id).collect();
    got.sort_unstable();
    let mut want = expected.clone();
    want.sort_unstable();
    assert_eq!(got, want, "geocast must reach exactly the zone population");
    // Cell charge: a radius-25 circle over 10 m cells overlaps > 20 cells
    // and ≤ the bounding-box worst case.
    assert!(metrics.net.downlink_geocast_msgs >= 20);
    assert!(metrics.net.downlink_geocast_msgs <= 36);
}

#[test]
fn probes_are_charged_and_answered_from_true_positions() {
    let cfg = frozen_world(40);
    let zone = Circle::new(Point::new(50.0, 50.0), 30.0);
    let (_, replies, metrics) = run_inspector(&cfg, |_, _| {}, Some(zone));
    let world = cfg.workload.build();
    let expected = world
        .objects()
        .iter()
        .filter(|o| zone.contains(o.pos))
        .count();
    assert_eq!(replies, expected);
    // One geocast probe (many cells) + one uplink reply per device inside.
    assert_eq!(metrics.net.uplink_msgs, expected as u64);
    assert_eq!(
        metrics.net.by_kind.get(&MsgKind::ProbeReply),
        Some(&(expected as u64))
    );
    assert!(
        metrics.net.downlink_geocast_msgs > 0,
        "the probe geocast must be charged"
    );
}

#[test]
fn messages_to_out_of_range_ids_are_dropped_not_fatal() {
    let cfg = frozen_world(5);
    let (received, _, metrics) = run_inspector(
        &cfg,
        |tick, outbox| {
            if tick == 1 {
                outbox.send(
                    Recipient::One(ObjectId(999)),
                    DownlinkMsg::ClearBand { query: QueryId(0) },
                );
            }
        },
        None,
    );
    assert!(received.is_empty());
    // Still charged: the transmission happened even if nobody listened.
    assert_eq!(metrics.net.downlink_unicast_msgs, 1);
}

#[test]
fn uplinks_are_charged_per_message_with_the_byte_model() {
    // A protocol whose clients send one Position each tick, tallying what
    // the wire model says each send should cost (sizes are now
    // content-dependent, so the expectation is built from the actual
    // positions sent).
    struct Chatty {
        empty: Vec<ObjectId>,
        expected_bytes: Rc<RefCell<u64>>,
    }
    impl Protocol for Chatty {
        fn name(&self) -> &'static str {
            "chatty"
        }
        fn init(
            &mut self,
            _b: Rect,
            _o: &[mknn_mobility::MovingObject],
            _q: &[QuerySpec],
            _p: &mut dyn ProbeService,
            _out: &mut Outbox,
            _ops: &mut OpCounters,
        ) {
        }
        fn client_tick(
            &mut self,
            _t: Tick,
            me: &mknn_mobility::MovingObject,
            _i: &[DownlinkMsg],
            up: &mut Uplinks,
            _ops: &mut OpCounters,
        ) {
            let msg = UplinkMsg::Position {
                pos: me.pos,
                vel: Vector::ZERO,
            };
            *self.expected_bytes.borrow_mut() += msg.size_bytes() as u64;
            up.send(me.id, msg);
        }
        fn server_tick(
            &mut self,
            _t: Tick,
            _u: &Uplinks,
            _p: &mut dyn ProbeService,
            _o: &mut Outbox,
            _ops: &mut OpCounters,
        ) {
        }
        fn answer(&self, _q: QueryId) -> &[ObjectId] {
            &self.empty
        }
        fn guarantees_exact(&self) -> bool {
            false
        }
    }
    let cfg = frozen_world(30);
    let expected_bytes = Rc::new(RefCell::new(0u64));
    let mut sim = Simulation::new(
        &cfg,
        Box::new(Chatty {
            empty: Vec::new(),
            expected_bytes: Rc::clone(&expected_bytes),
        }),
    );
    for _ in 0..cfg.ticks {
        sim.step();
    }
    let m = sim.metrics();
    assert_eq!(m.net.uplink_msgs, 30 * cfg.ticks);
    // The harness charged exactly what the wire model says each message
    // cost — no more, no less.
    assert_eq!(m.net.uplink_bytes, *expected_bytes.borrow());
    let floor = UplinkMsg::Position {
        pos: Point::ORIGIN,
        vel: Vector::ZERO,
    }
    .size_bytes() as u64;
    assert!(m.net.uplink_bytes >= 30 * cfg.ticks * floor);
}
