//! Per-tick metric time series.
//!
//! Episode totals hide transients — the burst after init, refresh storms
//! when a hotspot forms, quiet stretches where the protocol is fully
//! silent. A [`TickSeries`] records the per-tick deltas of the headline
//! counters so experiments (and the plotting pipeline behind the paper-style
//! figures) can look at traffic *over time*, not just its mean.

use crate::EpisodeMetrics;
use mknn_geom::Tick;

/// One tick's snapshot of the headline counters (deltas, not cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TickSample {
    /// Tick number (1-based; init traffic is not part of the series).
    pub tick: Tick,
    /// Uplink messages this tick.
    pub uplink: u64,
    /// Downlink transmissions (unicast + geocast cells + broadcast) this
    /// tick.
    pub downlink: u64,
    /// Bytes both directions this tick.
    pub bytes: u64,
    /// Server ops this tick.
    pub server_ops: u64,
    /// Queries whose answer was exact this tick (only populated when the
    /// episode verifies).
    pub exact_queries: u64,
    /// Queries checked this tick.
    pub checked_queries: u64,
}

/// A recorded episode timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickSeries {
    samples: Vec<TickSample>,
}

impl TickSeries {
    /// Rebuilds a series from already-ordered samples (used by the JSON
    /// decoder; crate-private because `push` is the public construction
    /// path).
    pub(crate) fn from_samples(samples: Vec<TickSample>) -> Self {
        TickSeries { samples }
    }
}

impl TickSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample (called by the engine each tick when recording is
    /// on).
    pub fn push(&mut self, sample: TickSample) {
        debug_assert!(
            self.samples
                .last()
                .is_none_or(|last| last.tick < sample.tick),
            "samples must arrive in tick order"
        );
        self.samples.push(sample);
    }

    /// All samples in tick order.
    pub fn samples(&self) -> &[TickSample] {
        &self.samples
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The tick with the highest total message count (burst detection), or
    /// `None` when empty.
    pub fn peak_msgs(&self) -> Option<TickSample> {
        self.samples
            .iter()
            .copied()
            .max_by_key(|s| s.uplink + s.downlink)
    }

    /// Mean total messages per tick over the recorded window.
    pub fn mean_msgs(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let total: u64 = self.samples.iter().map(|s| s.uplink + s.downlink).sum();
        total as f64 / self.samples.len() as f64
    }

    /// Peak-to-mean ratio of total messages — 1.0 means perfectly smooth
    /// traffic, large values mean bursts. NaN when empty.
    ///
    /// An all-silent recorded window (zero messages in every tick) is
    /// defined as perfectly smooth, 1.0: every tick equals the mean, and
    /// the raw 0/0 ratio would otherwise surface as NaN.
    pub fn burstiness(&self) -> f64 {
        match self.peak_msgs() {
            Some(peak) => {
                let peak_total = (peak.uplink + peak.downlink) as f64;
                if peak_total == 0.0 {
                    1.0
                } else {
                    peak_total / self.mean_msgs()
                }
            }
            None => f64::NAN,
        }
    }

    /// Rows for [`crate::write_csv`] (header + one row per tick).
    pub fn to_rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![vec![
            "tick".to_string(),
            "uplink".into(),
            "downlink".into(),
            "bytes".into(),
            "server_ops".into(),
            "exact_queries".into(),
            "checked_queries".into(),
        ]];
        for s in &self.samples {
            rows.push(vec![
                s.tick.to_string(),
                s.uplink.to_string(),
                s.downlink.to_string(),
                s.bytes.to_string(),
                s.server_ops.to_string(),
                s.exact_queries.to_string(),
                s.checked_queries.to_string(),
            ]);
        }
        rows
    }
}

/// Computes the per-tick delta sample between two cumulative metric
/// snapshots (engine-internal helper, public for tests).
pub fn delta_sample(tick: Tick, before: &EpisodeMetrics, after: &EpisodeMetrics) -> TickSample {
    let down = |m: &EpisodeMetrics| {
        m.net.downlink_unicast_msgs + m.net.downlink_geocast_msgs + m.net.downlink_broadcast_msgs
    };
    TickSample {
        tick,
        uplink: after.net.uplink_msgs - before.net.uplink_msgs,
        downlink: down(after) - down(before),
        bytes: after.net.total_bytes() - before.net.total_bytes(),
        server_ops: after.ops.server_ops - before.ops.server_ops,
        exact_queries: after.exact_ok - before.exact_ok,
        checked_queries: after.exact_checks - before.exact_checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: Tick, up: u64, down: u64) -> TickSample {
        TickSample {
            tick,
            uplink: up,
            downlink: down,
            ..Default::default()
        }
    }

    #[test]
    fn push_and_stats() {
        let mut s = TickSeries::new();
        assert!(s.is_empty());
        assert!(s.mean_msgs().is_nan());
        s.push(sample(1, 10, 0));
        s.push(sample(2, 0, 0));
        s.push(sample(3, 50, 30));
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean_msgs(), 30.0);
        assert_eq!(s.peak_msgs().unwrap().tick, 3);
        assert!((s.burstiness() - 80.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn burstiness_of_a_silent_window_is_smooth() {
        let mut s = TickSeries::new();
        assert!(s.burstiness().is_nan(), "empty series stays NaN");
        s.push(sample(1, 0, 0));
        s.push(sample(2, 0, 0));
        assert_eq!(s.burstiness(), 1.0, "all-silent window is perfectly smooth");
    }

    #[test]
    fn csv_rows_round_numbers() {
        let mut s = TickSeries::new();
        s.push(sample(1, 3, 4));
        let rows = s.to_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "tick");
        assert_eq!(rows[1][..3], ["1".to_string(), "3".into(), "4".into()]);
    }

    #[test]
    fn delta_sample_subtracts() {
        let mut before = EpisodeMetrics::default();
        before.net.uplink_msgs = 10;
        before.ops.server_ops = 100;
        let mut after = before.clone();
        after.net.uplink_msgs = 17;
        after.net.downlink_unicast_msgs = 2;
        after.net.uplink_bytes = 44;
        after.ops.server_ops = 130;
        after.exact_checks = 5;
        after.exact_ok = 4;
        let d = delta_sample(9, &before, &after);
        assert_eq!(d.tick, 9);
        assert_eq!(d.uplink, 7);
        assert_eq!(d.downlink, 2);
        assert_eq!(d.bytes, 44);
        assert_eq!(d.server_ops, 30);
        assert_eq!(d.exact_queries, 4);
        assert_eq!(d.checked_queries, 5);
    }
}
