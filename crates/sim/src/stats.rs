//! Small-sample summary statistics for multi-seed experiment runs.
//!
//! Single-seed numbers are fine for shapes, but publication-grade tables
//! average several seeded repetitions and report dispersion. This module
//! provides the (tiny) statistics toolkit the experiment harness uses:
//! mean, sample standard deviation, min/max, and percentiles, plus a
//! convenience aggregator over [`EpisodeMetrics`].

use crate::EpisodeMetrics;

/// Summary of one metric across repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples` (NaNs are ignored; empty input yields NaNs).
    pub fn of(samples: &[f64]) -> Summary {
        let clean: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        let n = clean.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mean = clean.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = clean.iter().copied().fold(f64::INFINITY, f64::min);
        let max = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Relative dispersion `std_dev / |mean|` (NaN when the mean is 0).
    ///
    /// The magnitude of the mean is what scales the dispersion, so a
    /// negative-mean sample set still gets a non-negative coefficient of
    /// variation (dividing by a signed mean would flip its sign).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            f64::NAN
        } else {
            self.std_dev / self.mean.abs()
        }
    }

    /// Renders as `mean ± std` with sensible precision.
    pub fn display(&self) -> String {
        if self.n == 0 || self.mean.is_nan() {
            return "-".to_string();
        }
        if self.n == 1 {
            return format_sig(self.mean);
        }
        format!("{} ± {}", format_sig(self.mean), format_sig(self.std_dev))
    }
}

fn format_sig(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of `samples`.
/// Returns NaN for empty input.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut clean: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        return f64::NAN;
    }
    clean.sort_unstable_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (clean.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        clean[lo]
    } else {
        let frac = idx - lo as f64;
        clean[lo] * (1.0 - frac) + clean[hi] * frac
    }
}

/// Aggregated view over several seeded repetitions of one (config, method)
/// cell.
#[derive(Debug, Clone)]
pub struct MetricsSummary {
    /// Method name (identical across repetitions).
    pub method: String,
    /// Total messages per tick.
    pub msgs_per_tick: Summary,
    /// Uplink messages per tick.
    pub uplink_per_tick: Summary,
    /// Downlink transmissions per tick.
    pub downlink_per_tick: Summary,
    /// Bytes per tick.
    pub bytes_per_tick: Summary,
    /// Server ops per tick.
    pub server_ops_per_tick: Summary,
    /// Client ops per object per tick.
    pub client_ops: Summary,
    /// Oracle exactness (NaN when verification was off).
    pub exactness: Summary,
}

impl MetricsSummary {
    /// Aggregates repetitions (panics on an empty slice or mixed methods).
    pub fn of(runs: &[EpisodeMetrics]) -> MetricsSummary {
        assert!(!runs.is_empty(), "need at least one repetition");
        assert!(
            runs.iter().all(|r| r.method == runs[0].method),
            "cannot aggregate across methods"
        );
        let pull = |f: &dyn Fn(&EpisodeMetrics) -> f64| {
            Summary::of(&runs.iter().map(f).collect::<Vec<_>>())
        };
        MetricsSummary {
            method: runs[0].method.clone(),
            msgs_per_tick: pull(&|m| m.msgs_per_tick()),
            uplink_per_tick: pull(&|m| m.uplink_per_tick()),
            downlink_per_tick: pull(&|m| m.downlink_per_tick()),
            bytes_per_tick: pull(&|m| m.bytes_per_tick()),
            server_ops_per_tick: pull(&|m| m.server_ops_per_tick()),
            client_ops: pull(&|m| m.client_ops_per_object_tick()),
            exactness: pull(&|m| m.exactness()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_handles_edge_cases() {
        let empty = Summary::of(&[]);
        assert!(empty.mean.is_nan());
        let single = Summary::of(&[3.0]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.display(), "3.000");
        let with_nan = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(with_nan.n, 2);
        assert_eq!(with_nan.mean, 2.0);
    }

    #[test]
    fn cv_is_non_negative_for_negative_means() {
        let s = Summary::of(&[-2.0, -4.0, -6.0]);
        assert!(s.mean < 0.0);
        assert!(s.cv() > 0.0, "cv must not inherit the mean's sign");
        assert_eq!(s.cv(), Summary::of(&[2.0, 4.0, 6.0]).cv());
        assert!(Summary::of(&[0.0, 0.0]).cv().is_nan());
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn metrics_summary_aggregates() {
        let mut a = EpisodeMetrics {
            method: "x".into(),
            ticks: 10,
            n_objects: 10,
            ..Default::default()
        };
        a.net.uplink_msgs = 100;
        let mut b = a.clone();
        b.net.uplink_msgs = 200;
        let s = MetricsSummary::of(&[a, b]);
        assert_eq!(s.uplink_per_tick.mean, 15.0);
        assert_eq!(s.uplink_per_tick.n, 2);
        assert!(s.uplink_per_tick.std_dev > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot aggregate across methods")]
    fn mixed_methods_rejected() {
        let a = EpisodeMetrics {
            method: "x".into(),
            ..Default::default()
        };
        let b = EpisodeMetrics {
            method: "y".into(),
            ..Default::default()
        };
        MetricsSummary::of(&[a, b]);
    }
}
