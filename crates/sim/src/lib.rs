//! Simulation harness: drives any [`mknn_net::Protocol`] over a
//! [`mknn_mobility::World`], routes and charges every message, verifies
//! answers against a brute-force oracle, and aggregates the metrics the
//! experiments report.
//!
//! The harness is the "physical world + network infrastructure" of the
//! evaluation: it alone sees true positions. Protocols observe nothing but
//! their own messages.

#![deny(missing_docs)]

mod config;
mod engine;
mod json;
mod metrics;
mod oracle;
mod runner;
mod series;
mod stats;
mod table;

pub use config::{SimConfig, VerifyMode};
pub use engine::Simulation;
pub use metrics::EpisodeMetrics;
pub use oracle::{check_answer, AnswerCheck};
pub use runner::{params_for, run_episode, run_episodes_seeded, Method};
pub use series::{delta_sample, TickSample, TickSeries};
pub use stats::{percentile, MetricsSummary, Summary};
pub use table::{render_table, write_csv};
