//! Simulation harness: drives any [`mknn_net::Protocol`] over a
//! [`mknn_mobility::World`], routes and charges every message, verifies
//! answers against a brute-force oracle, and aggregates the metrics the
//! experiments report.
//!
//! The harness is the "physical world + network infrastructure" of the
//! evaluation: it alone sees true positions. Protocols observe nothing but
//! their own messages.

#![deny(missing_docs)]

mod config;
mod engine;
mod json;
mod method;
mod metrics;
mod oracle;
mod series;
mod stats;
mod sweep;
mod table;

pub use config::{ConfigError, DownlinkMode, SimConfig, VerifyMode};
pub use engine::Simulation;
pub use method::Method;
pub use metrics::EpisodeMetrics;
pub use oracle::{check_answer, AnswerCheck, SnapshotOracle, DIST_ERROR_MAX};
pub use series::{delta_sample, TickSample, TickSeries};
pub use stats::{percentile, MetricsSummary, Summary};
pub use sweep::{EpisodeRun, PlannedEpisode, Sweep};
pub use table::{render_table, write_csv};
