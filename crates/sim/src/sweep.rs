//! The sweep runner: plans a `configuration × method × seed` episode grid
//! and executes it on a worker pool, deterministically.
//!
//! Every experiment in the suite has the same shape — a list of labeled
//! configurations, a set of methods per configuration, optionally several
//! seeded repetitions — and every episode in that grid is independent (it
//! owns its world, its transport, and its seed-derived RNG stream). The
//! [`Sweep`] builder captures the shape once, *plans* the full grid up
//! front, and fans the episodes out over [`mknn_util::Pool`].
//!
//! # Determinism
//!
//! Parallel output is byte-identical to a sequential run because both
//! nondeterminism channels are closed at the plan:
//!
//! * every planned episode carries its own seed, derived from the plan
//!   position (`base_seed + seed_index`), never from execution order;
//! * results are collected **in plan order** by
//!   [`Pool::map_indexed`](mknn_util::Pool::map_indexed), so thread count
//!   and scheduling cannot reorder them.
//!
//! The only fields that still vary run-to-run are the wall-clock timings
//! ([`EpisodeMetrics::proto_seconds`], [`EpisodeRun::wall_seconds`]), which
//! are measured per episode *inside* the worker — parallel runs report
//! honest per-episode timings — and zeroed by the determinism gates via
//! [`EpisodeMetrics::with_clock_zeroed`].

use crate::{EpisodeMetrics, Method, SimConfig, Simulation};
use mknn_util::Pool;
use std::time::Instant;

/// One episode of the planned grid: a labeled configuration (seed already
/// applied) and the method to run on it.
#[derive(Debug, Clone)]
pub struct PlannedEpisode {
    /// The sweep point's label (the experiment's x-value).
    pub label: String,
    /// The episode configuration, with the repetition seed applied.
    pub config: SimConfig,
    /// The method to instantiate.
    pub method: Method,
    /// Which seeded repetition this is (0-based).
    pub seed_index: u64,
}

/// One executed episode: the planned coordinates plus the measured metrics.
#[derive(Debug, Clone)]
pub struct EpisodeRun {
    /// The sweep point's label.
    pub label: String,
    /// The method that ran.
    pub method: Method,
    /// Which seeded repetition this was (0-based).
    pub seed_index: u64,
    /// The episode's metrics.
    pub metrics: EpisodeMetrics,
    /// Wall-clock seconds the whole episode took (world building, stepping,
    /// verification — everything), measured inside the worker so the value
    /// stays honest under parallel execution.
    pub wall_seconds: f64,
}

/// Which methods run at a sweep point.
#[derive(Debug, Clone)]
enum MethodSel {
    /// [`Method::standard_suite`] under the configuration's derived
    /// [`SimConfig::dknn_params`].
    Standard,
    /// An explicit list.
    List(Vec<Method>),
}

#[derive(Debug, Clone)]
struct SweepPoint {
    label: String,
    config: SimConfig,
    methods: MethodSel,
}

/// A fluent builder for a `configuration × method × seed` episode grid.
///
/// ```
/// use mknn_sim::{Method, SimConfig, Sweep};
///
/// let mut small = SimConfig::small();
/// small.ticks = 10;
/// let runs = Sweep::over([("base", small.clone())])
///     .methods([Method::Centralized { res: 16 }])
///     .seeds(2)
///     .run();
/// assert_eq!(runs.len(), 2);
/// assert_eq!(runs[0].label, "base");
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    points: Vec<SweepPoint>,
    seeds: u64,
    threads: Option<usize>,
}

impl Sweep {
    /// Starts a sweep over labeled configurations; each point defaults to
    /// the standard method suite (see [`Sweep::methods`] to override).
    pub fn over<L: Into<String>>(points: impl IntoIterator<Item = (L, SimConfig)>) -> Sweep {
        Sweep {
            points: points
                .into_iter()
                .map(|(label, config)| SweepPoint {
                    label: label.into(),
                    config,
                    methods: MethodSel::Standard,
                })
                .collect(),
            seeds: 1,
            threads: None,
        }
    }

    /// Starts a sweep from an explicit `(label, config, method)` grid, for
    /// experiments whose method set varies per point (parameter ablations).
    pub fn grid<L: Into<String>>(items: impl IntoIterator<Item = (L, SimConfig, Method)>) -> Sweep {
        Sweep {
            points: items
                .into_iter()
                .map(|(label, config, method)| SweepPoint {
                    label: label.into(),
                    config,
                    methods: MethodSel::List(vec![method]),
                })
                .collect(),
            seeds: 1,
            threads: None,
        }
    }

    /// Runs this explicit method list at every sweep point.
    pub fn methods(mut self, methods: impl IntoIterator<Item = Method>) -> Sweep {
        let list: Vec<Method> = methods.into_iter().collect();
        for point in &mut self.points {
            point.methods = MethodSel::List(list.clone());
        }
        self
    }

    /// Derives each point's method list from its configuration (e.g. a
    /// suite sized by the point's workload speed bounds).
    pub fn methods_for(mut self, f: impl Fn(&SimConfig) -> Vec<Method>) -> Sweep {
        for point in &mut self.points {
            point.methods = MethodSel::List(f(&point.config));
        }
        self
    }

    /// Runs `n` seeded repetitions of every `(point, method)` cell: the
    /// workload seeds are `base`, `base + 1`, …, `base + n − 1` (wrapping),
    /// where `base` is the point's configured seed. Clamped to at least 1.
    pub fn seeds(mut self, n: u64) -> Sweep {
        self.seeds = n.max(1);
        self
    }

    /// Overrides the worker count for this sweep. Without this, the count
    /// comes from `MKNN_THREADS`, defaulting to the machine's available
    /// parallelism ([`Pool::from_env`]).
    pub fn threads(mut self, n: usize) -> Sweep {
        self.threads = Some(n);
        self
    }

    /// The fully expanded episode grid, in execution-independent plan
    /// order: points → methods → seeds.
    pub fn plan(&self) -> Vec<PlannedEpisode> {
        let mut plan = Vec::new();
        for point in &self.points {
            let methods = match &point.methods {
                MethodSel::Standard => Method::standard_suite(point.config.dknn_params()),
                MethodSel::List(list) => list.clone(),
            };
            for &method in &methods {
                for seed_index in 0..self.seeds {
                    let mut config = point.config.clone();
                    config.workload.seed = point.config.workload.seed.wrapping_add(seed_index);
                    plan.push(PlannedEpisode {
                        label: point.label.clone(),
                        config,
                        method,
                        seed_index,
                    });
                }
            }
        }
        plan
    }

    /// Executes the plan on the worker pool and returns the results **in
    /// plan order**, regardless of thread count or scheduling.
    pub fn run(&self) -> Vec<EpisodeRun> {
        let pool = match self.threads {
            Some(n) => Pool::new(n),
            None => Pool::from_env(),
        };
        pool.map_indexed(self.plan(), |_, ep| {
            let started = Instant::now();
            let metrics = Simulation::new(&ep.config, ep.method.build()).run();
            EpisodeRun {
                label: ep.label,
                method: ep.method,
                seed_index: ep.seed_index,
                metrics,
                wall_seconds: started.elapsed().as_secs_f64(),
            }
        })
    }

    /// Runs one episode of `method` under `config` — the single-cell sweep,
    /// for tests and examples that inspect one run.
    pub fn episode(config: &SimConfig, method: Method) -> EpisodeMetrics {
        Simulation::new(config, method.build()).run()
    }

    /// Runs `seeds` independent repetitions (seed, seed+1, …) of `method`
    /// in parallel and returns the per-seed metrics in seed order, for
    /// aggregation with [`crate::MetricsSummary`].
    pub fn episodes_seeded(config: &SimConfig, method: Method, seeds: u64) -> Vec<EpisodeMetrics> {
        Sweep::over([("", config.clone())])
            .methods([method])
            .seeds(seeds)
            .run()
            .into_iter()
            .map(|r| r.metrics)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_mobility::SpeedDist;

    fn tiny() -> SimConfig {
        let mut cfg = SimConfig::small();
        cfg.ticks = 10;
        cfg.workload.n_objects = 120;
        cfg.n_queries = 2;
        cfg
    }

    #[test]
    fn plan_order_is_points_methods_seeds() {
        let sweep = Sweep::over([("a", tiny()), ("b", tiny())])
            .methods([
                Method::Centralized { res: 8 },
                Method::Naive { headroom: 1.5 },
            ])
            .seeds(2);
        let plan = sweep.plan();
        let coords: Vec<(String, &'static str, u64)> = plan
            .iter()
            .map(|e| (e.label.clone(), e.method.name(), e.seed_index))
            .collect();
        assert_eq!(
            coords,
            [
                ("a".into(), "centralized", 0),
                ("a".into(), "centralized", 1),
                ("a".into(), "naive-probe", 0),
                ("a".into(), "naive-probe", 1),
                ("b".into(), "centralized", 0),
                ("b".into(), "centralized", 1),
                ("b".into(), "naive-probe", 0),
                ("b".into(), "naive-probe", 1),
            ]
        );
    }

    #[test]
    fn seeds_advance_the_workload_seed_in_plan_order() {
        let mut cfg = tiny();
        cfg.workload.seed = 100;
        let plan = Sweep::over([("x", cfg)])
            .methods([Method::Centralized { res: 8 }])
            .seeds(3)
            .plan();
        let seeds: Vec<u64> = plan.iter().map(|e| e.config.workload.seed).collect();
        assert_eq!(seeds, [100, 101, 102]);
    }

    #[test]
    fn default_methods_are_the_standard_suite() {
        let plan = Sweep::over([("x", tiny())]).plan();
        let names: Vec<&str> = plan.iter().map(|e| e.method.name()).collect();
        let suite: Vec<&str> = Method::standard_suite(tiny().dknn_params())
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(names, suite);
    }

    #[test]
    fn every_standard_method_builds_and_runs() {
        let mut cfg = SimConfig::small();
        cfg.ticks = 15;
        cfg.workload.n_objects = 150;
        for method in Method::standard_suite(cfg.dknn_params()) {
            let m = Sweep::episode(&cfg, method);
            assert_eq!(m.ticks, 15, "{}", method.name());
            assert_eq!(m.method, method.name());
            assert!(m.net.total_msgs() > 0, "{} sent nothing", method.name());
        }
    }

    #[test]
    fn parallel_run_equals_sequential_run() {
        let sweep = Sweep::over([("a", tiny()), ("b", tiny())]).seeds(2);
        let seq = sweep.clone().threads(1).run();
        let par = sweep.threads(4).run();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.method, p.method);
            assert_eq!(s.seed_index, p.seed_index);
            assert_eq!(
                s.metrics.clone().with_clock_zeroed(),
                p.metrics.clone().with_clock_zeroed(),
                "{} at {} diverged across thread counts",
                s.metrics.method,
                s.label
            );
        }
    }

    #[test]
    fn episodes_seeded_matches_manual_seed_bumps() {
        let cfg = tiny();
        let runs = Sweep::episodes_seeded(&cfg, Method::Centralized { res: 8 }, 3);
        assert_eq!(runs.len(), 3);
        for (i, run) in runs.iter().enumerate() {
            let mut c = cfg.clone();
            c.workload.seed = cfg.workload.seed.wrapping_add(i as u64);
            let direct = Sweep::episode(&c, Method::Centralized { res: 8 });
            assert_eq!(
                run.clone().with_clock_zeroed(),
                direct.with_clock_zeroed(),
                "repetition {i}"
            );
        }
    }

    #[test]
    fn derived_params_scale_with_workload_speed() {
        let mut cfg = SimConfig::small();
        cfg.workload.speeds = SpeedDist::Fixed(7.0);
        let p = cfg.dknn_params();
        assert_eq!(p.v_max_obj, 7.0);
        assert_eq!(p.v_max_q, 7.0);
        assert_eq!(p.query_drift, 14.0);
    }

    #[test]
    fn derived_params_stay_valid_for_a_frozen_workload() {
        let mut cfg = SimConfig::small();
        cfg.workload.speeds = SpeedDist::Fixed(0.0);
        cfg.dknn_params().validate().unwrap();
    }
}
