//! The simulation engine: world + infrastructure + protocol driver.

use crate::{check_answer, EpisodeMetrics, SimConfig, VerifyMode};
use mknn_geom::{ObjectId, QueryId, Tick};
use mknn_index::GridIndex;
use mknn_mobility::World;
use mknn_net::{
    DownlinkMsg, MsgKind, NetStats, ObjReport, OpCounters, Outbox, ProbeService, Protocol,
    QuerySpec, Recipient, UplinkMsg, Uplinks,
};
use std::time::Instant;

/// The harness's synchronous probe channel: answers from true positions,
/// charging every probe geocast/unicast and every reply before returning.
struct EngineProbe<'a> {
    infra: &'a GridIndex,
    world: &'a World,
    stats: &'a mut NetStats,
}

impl ProbeService for EngineProbe<'_> {
    fn probe(
        &mut self,
        query: QueryId,
        zone: mknn_geom::Circle,
        exclude: ObjectId,
    ) -> Vec<ObjReport> {
        let msg = DownlinkMsg::Probe { query, zone };
        let cells = self.infra.cells_overlapping(&zone);
        self.stats
            .count_geocast(MsgKind::Probe, msg.size_bytes(), cells);
        let mut out = Vec::new();
        for n in self.infra.range(&zone) {
            if n.id == exclude {
                continue;
            }
            let o = self.world.object(n.id);
            let reply = UplinkMsg::ProbeReply {
                query,
                pos: o.pos,
                vel: o.vel,
            };
            self.stats
                .count_uplink(MsgKind::ProbeReply, reply.size_bytes());
            out.push(ObjReport {
                id: n.id,
                pos: o.pos,
                vel: o.vel,
            });
        }
        out
    }

    fn poll(&mut self, query: QueryId, id: ObjectId) -> Option<ObjReport> {
        if id.index() >= self.world.objects().len() {
            return None;
        }
        let o = self.world.object(id);
        let ask = DownlinkMsg::Probe {
            query,
            zone: mknn_geom::Circle::new(o.pos, 0.0),
        };
        self.stats.count_unicast(MsgKind::Probe, ask.size_bytes());
        let reply = UplinkMsg::ProbeReply {
            query,
            pos: o.pos,
            vel: o.vel,
        };
        self.stats
            .count_uplink(MsgKind::ProbeReply, reply.size_bytes());
        Some(ObjReport {
            id,
            pos: o.pos,
            vel: o.vel,
        })
    }
}

/// A running episode: steps the world, drives the protocol, routes and
/// charges all traffic, and verifies answers.
pub struct Simulation {
    world: World,
    proto: Box<dyn Protocol>,
    specs: Vec<QuerySpec>,
    infra: GridIndex,
    inboxes: Vec<Vec<DownlinkMsg>>,
    verify: VerifyMode,
    metrics: EpisodeMetrics,
    tick: Tick,
    planned_ticks: u64,
    series: Option<crate::TickSeries>,
}

impl Simulation {
    /// Builds the world from `config`, registers the queries, and runs the
    /// protocol's init handshake (its traffic is charged like any other).
    pub fn new(config: &SimConfig, mut proto: Box<dyn Protocol>) -> Self {
        let world = config.workload.build();
        let bounds = world.bounds();
        let specs: Vec<QuerySpec> = config
            .focal_ids()
            .iter()
            .enumerate()
            .map(|(i, &focal)| QuerySpec {
                id: QueryId(i as u32),
                focal: ObjectId(focal),
                k: config.k,
            })
            .collect();
        let mut infra = GridIndex::new(bounds, config.geo_cells, config.geo_cells);
        for o in world.objects() {
            infra.upsert(o.id, o.pos);
        }
        let mut metrics = EpisodeMetrics {
            method: proto.name().to_string(),
            ticks: 0,
            n_objects: config.workload.n_objects,
            n_queries: config.n_queries,
            k: config.k,
            ..EpisodeMetrics::default()
        };
        let mut inboxes: Vec<Vec<DownlinkMsg>> = vec![Vec::new(); world.objects().len()];

        // Init handshake at tick 0.
        let mut outbox = Outbox::new();
        let mut ops = OpCounters::default();
        let t0 = Instant::now();
        {
            let mut probe = EngineProbe {
                infra: &infra,
                world: &world,
                stats: &mut metrics.net,
            };
            proto.init(
                bounds,
                world.objects(),
                &specs,
                &mut probe,
                &mut outbox,
                &mut ops,
            );
        }
        metrics.proto_seconds += t0.elapsed().as_secs_f64();
        metrics.ops += ops;
        route(&outbox, &infra, &mut inboxes, &mut metrics.net);

        Simulation {
            world,
            proto,
            specs,
            infra,
            inboxes,
            verify: config.verify,
            metrics,
            tick: 0,
            planned_ticks: config.ticks,
            series: None,
        }
    }

    /// Turns on per-tick time-series recording (see [`crate::TickSeries`]).
    /// Call before stepping; recording an already-running episode starts
    /// from the current tick.
    pub fn record_series(&mut self) {
        if self.series.is_none() {
            self.series = Some(crate::TickSeries::new());
        }
    }

    /// The recorded time series, when [`Simulation::record_series`] was
    /// called.
    pub fn series(&self) -> Option<&crate::TickSeries> {
        self.series.as_ref()
    }

    /// The registered query specs.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// The maintained answer of `query` right now.
    pub fn answer(&self, query: QueryId) -> &[ObjectId] {
        self.proto.answer(query)
    }

    /// Immutable access to the ground-truth world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &EpisodeMetrics {
        &self.metrics
    }

    /// Advances the episode by one tick.
    pub fn step(&mut self) {
        let before = self.series.is_some().then(|| self.metrics.clone());
        self.tick += 1;
        self.metrics.ticks = self.tick;
        self.world.step();
        for o in self.world.objects() {
            self.infra.upsert(o.id, o.pos);
        }

        let mut ops = OpCounters::default();
        let mut uplinks = Uplinks::new();
        let t0 = Instant::now();

        // Client phase: each device acts on its own state + inbox.
        for i in 0..self.world.objects().len() {
            let inbox = std::mem::take(&mut self.inboxes[i]);
            let me = self.world.objects()[i];
            self.proto
                .client_tick(self.tick, &me, &inbox, &mut uplinks, &mut ops);
        }
        for (_, msg) in uplinks.iter() {
            self.metrics.net.count_uplink(msg.kind(), msg.size_bytes());
        }

        // Server phase.
        let mut outbox = Outbox::new();
        {
            let mut probe = EngineProbe {
                infra: &self.infra,
                world: &self.world,
                stats: &mut self.metrics.net,
            };
            self.proto
                .server_tick(self.tick, &uplinks, &mut probe, &mut outbox, &mut ops);
        }
        self.metrics.proto_seconds += t0.elapsed().as_secs_f64();
        self.metrics.ops += ops;

        route(
            &outbox,
            &self.infra,
            &mut self.inboxes,
            &mut self.metrics.net,
        );

        if self.verify != VerifyMode::Off {
            self.verify_answers();
        }

        if let (Some(series), Some(before)) = (self.series.as_mut(), before) {
            series.push(crate::delta_sample(self.tick, &before, &self.metrics));
        }
    }

    fn verify_answers(&mut self) {
        for spec in &self.specs {
            let answer = self.proto.answer(spec.id);
            let true_center = self.world.position(spec.focal);
            let effective = self.proto.effective_center(spec.id).unwrap_or(true_center);
            let ck = check_answer(
                &self.world,
                spec.focal,
                spec.k,
                answer,
                effective,
                true_center,
                self.proto.ordered_answers(),
            );
            self.metrics.exact_checks += 1;
            self.metrics.exact_ok += u64::from(ck.exact);
            self.metrics.recall_sum += ck.recall_vs_true;
            self.metrics.dist_error_sum += ck.dist_error;
            if self.verify == VerifyMode::Assert && self.proto.guarantees_exact() && !ck.exact {
                let oracle: Vec<_> = mknn_index::bruteforce::knn(
                    self.world.snapshot().filter(|&(id, _)| id != spec.focal),
                    effective,
                    spec.k,
                )
                .iter()
                .map(|n| (n.id, n.dist()))
                .collect();
                panic!(
                    "{}: inexact answer for {} at tick {}: got {:?}, oracle {:?} (effective {:?})",
                    self.proto.name(),
                    spec.id,
                    self.tick,
                    answer,
                    oracle,
                    effective,
                );
            }
        }
    }

    /// Runs the configured number of ticks and returns the final metrics.
    pub fn run(mut self) -> EpisodeMetrics {
        for _ in 0..self.planned_ticks {
            self.step();
        }
        self.metrics
    }
}

/// Routes an outbox: charges every transmission and fills device inboxes.
fn route(
    outbox: &Outbox,
    infra: &GridIndex,
    inboxes: &mut [Vec<DownlinkMsg>],
    stats: &mut NetStats,
) {
    for (recipient, msg) in outbox.iter() {
        match *recipient {
            Recipient::One(id) => {
                stats.count_unicast(msg.kind(), msg.size_bytes());
                if let Some(inbox) = inboxes.get_mut(id.index()) {
                    inbox.push(*msg);
                }
            }
            Recipient::Geocast(zone) => {
                let cells = infra.cells_overlapping(&zone);
                stats.count_geocast(msg.kind(), msg.size_bytes(), cells);
                for n in infra.range(&zone) {
                    inboxes[n.id.index()].push(*msg);
                }
            }
            Recipient::Broadcast => {
                stats.count_broadcast(msg.kind(), msg.size_bytes());
                for inbox in inboxes.iter_mut() {
                    inbox.push(*msg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mknn_baselines::Centralized;
    use mknn_core::{Dknn, DknnParams};

    #[test]
    fn centralized_runs_exactly() {
        let cfg = SimConfig::small();
        let sim = Simulation::new(&cfg, Box::new(Centralized::new(16)));
        let m = sim.run();
        assert_eq!(m.exactness(), 1.0);
        assert_eq!(m.recall(), 1.0);
        // The firehose: roughly one uplink per moving object per tick.
        assert!(m.uplink_per_tick() > cfg.workload.n_objects as f64 * 0.5);
    }

    #[test]
    fn dknn_set_is_exact_and_cheaper() {
        let cfg = SimConfig::small();
        let params = DknnParams {
            v_max_obj: 20.0,
            v_max_q: 20.0,
            ..DknnParams::default()
        };
        let m = Simulation::new(&cfg, Box::new(Dknn::set(params))).run();
        assert_eq!(m.exactness(), 1.0, "set protocol must be exact: {m:?}");
        let c = Simulation::new(&cfg, Box::new(Centralized::new(16))).run();
        assert!(
            m.net.uplink_msgs < c.net.uplink_msgs,
            "distributed uplink {} should undercut centralized {}",
            m.net.uplink_msgs,
            c.net.uplink_msgs
        );
    }

    #[test]
    fn dknn_ordered_is_exact() {
        let cfg = SimConfig::small();
        let m = Simulation::new(&cfg, Box::new(Dknn::ordered(DknnParams::default()))).run();
        assert_eq!(m.exactness(), 1.0, "{m:?}");
    }

    #[test]
    fn dknn_buffered_is_exact() {
        let cfg = SimConfig::small();
        let m = Simulation::new(
            &cfg,
            Box::new(mknn_core::DknnBuffered::new(DknnParams::default(), 4)),
        )
        .run();
        assert_eq!(m.exactness(), 1.0, "{m:?}");
    }

    #[test]
    fn series_recording_matches_totals() {
        let cfg = SimConfig::small();
        let mut sim = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default())));
        sim.record_series();
        for _ in 0..cfg.ticks {
            sim.step();
        }
        let series = sim.series().unwrap();
        assert_eq!(series.len(), cfg.ticks as usize);
        // Per-tick deltas must sum back to the episode totals minus the
        // init traffic (recording starts after init).
        let up_sum: u64 = series.samples().iter().map(|s| s.uplink).sum();
        assert_eq!(up_sum, sim.metrics().net.uplink_msgs);
        let checked: u64 = series.samples().iter().map(|s| s.checked_queries).sum();
        assert_eq!(checked, sim.metrics().exact_checks);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let cfg = SimConfig::small();
        let a = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        let b = Simulation::new(&cfg, Box::new(Dknn::set(DknnParams::default()))).run();
        assert_eq!(a.net, b.net);
        assert_eq!(a.ops, b.ops);
    }
}
